#!/usr/bin/env python3
"""Run the SPMD lint over the repository's source trees.

Thin wrapper around ``repro lint --strict`` that works without an
installed package (it prepends ``src/`` to ``sys.path``), so CI and
pre-commit hooks can call it from a bare checkout:

    python tools/lint_repo.py            # lint src/ and examples/
    python tools/lint_repo.py tests      # lint additional trees too

Exits non-zero when any finding is reported; see docs/sanitizer.md for
the rule catalogue and the ``# repro-lint:`` suppression pragmas.
"""

from __future__ import annotations

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    roots = sys.argv[1:] or [
        os.path.join(REPO, "src"),
        os.path.join(REPO, "examples"),
    ]
    sys.exit(main(["lint", "--strict", *roots]))
