#!/usr/bin/env python3
"""Run both static tiers — lint and whole-program verify — over the repo.

Thin wrapper around ``repro lint --strict`` and ``repro verify
--strict`` that works without an installed package (it prepends
``src/`` to ``sys.path``), so CI and pre-commit hooks can call it from
a bare checkout:

    python tools/lint_repo.py                 # both tiers, src/ + examples/
    python tools/lint_repo.py --lint-only     # the per-function tier alone
    python tools/lint_repo.py tests/foo.py    # extra trees too

The verify tier subtracts the committed findings baseline
(``tools/verify_baseline.json``, a JSON list of ``{kind, file, line}``
records — empty while the repo self-verifies clean) so a deliberate,
reviewed exception never blocks CI while any *new* finding still does.

Exits non-zero when either tier reports a finding; see
docs/sanitizer.md for the lint rules and docs/static-analysis.md for
the verifier's analysis model and the ``# repro-lint:`` pragmas.
"""

from __future__ import annotations

import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.cli import main  # noqa: E402

BASELINE = os.path.join(REPO, "tools", "verify_baseline.json")


def run(argv: list[str]) -> int:
    lint_only = "--lint-only" in argv
    argv = [a for a in argv if a != "--lint-only"]
    roots = argv or [
        os.path.join(REPO, "src"),
        os.path.join(REPO, "examples"),
    ]
    rc = main(["lint", "--strict", *roots])
    if rc == 0 and not lint_only:
        verify_args = ["verify", "--strict"]
        if os.path.exists(BASELINE):
            verify_args += ["--baseline", BASELINE]
        rc = main([*verify_args, *roots])
    return rc


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
