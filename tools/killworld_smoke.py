"""Kill-world -> restart-from-disk smoke for the durable checkpoint tier.

Two phases over one checkpoint directory, run as separate invocations:

``crash DIR``
    Launches a 4-rank fault-tolerant ST-HOSVD on the sockets backend
    with ``ckpt_dir=DIR``, then SIGKILLs its *entire process group* the
    moment the first manifest commits — master and every worker die
    with no chance to flush or hand over.  Run it under ``setsid -w``
    so the kill stays inside the smoke and the exit code propagates
    (137 = killed as planned; without ``-w`` setsid may fork, detach,
    and report 0 before the run even starts).

``resume DIR``
    A brand-new invocation pointed at the same directory.  Must resume
    from the newest committed manifest (a ``disk_resume`` event) and
    finish with factors bitwise-identical to an uninterrupted run.

CI wires this into the chaos-smoke job; locally::

    setsid -w env PYTHONPATH=src python tools/killworld_smoke.py crash /tmp/kw
    PYTHONPATH=src python tools/killworld_smoke.py resume /tmp/kw
"""

from __future__ import annotations

import glob
import os
import signal
import sys
import threading
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core.ft import sthosvd_fault_tolerant  # noqa: E402
from repro.mpi import run_spmd  # noqa: E402

SHAPE = (16, 14, 12)
RANKS = (6, 5, 4)
FULL = np.asfortranarray(np.random.default_rng(11).standard_normal(SHAPE))


def _prog_factory(ckpt_dir):
    def prog(comm):
        res = sthosvd_fault_tolerant(
            comm, FULL if comm.rank == 0 else None, ranks=RANKS,
            method="qr", recover="replace", ckpt_dir=ckpt_dir,
        )
        return (
            [e[0] for e in res.events],
            [np.asarray(f).copy() for f in res.result.factors],
        )
    return prog


def crash(ckpt_dir: str) -> None:
    os.makedirs(ckpt_dir, exist_ok=True)

    def reaper() -> None:
        # The manifest is the commit point and is written last, so the
        # instant one exists there is a complete, resumable checkpoint
        # on disk — the harshest possible moment to lose the world.
        while not glob.glob(os.path.join(ckpt_dir, "*-manifest-*.json")):
            time.sleep(0.01)
        os.killpg(os.getpgid(0), signal.SIGKILL)

    threading.Thread(target=reaper, daemon=True).start()
    run_spmd(_prog_factory(ckpt_dir), 4, backend="sockets")
    sys.exit("the reaper never fired: no manifest was ever committed")


def resume(ckpt_dir: str) -> None:
    manifests = glob.glob(os.path.join(ckpt_dir, "*-manifest-*.json"))
    if not manifests:
        sys.exit(f"{ckpt_dir}: no committed manifest survived the kill")
    res = run_spmd(_prog_factory(ckpt_dir), 4, backend="sockets")
    vals = [v for v in res.values if v is not None]
    assert len(vals) == 4, res.values
    assert all("disk_resume" in v[0] for v in vals), [v[0] for v in vals]
    base = run_spmd(_prog_factory(None), 4, backend="sockets")
    for a, b in zip(base.values[0][1], vals[0][1]):
        assert np.array_equal(a, b), "restart-from-disk factors differ"
    print(f"kill-world restart ok: resumed from {len(manifests)} "
          f"manifest(s), factors bitwise-identical to the clean run")


def main() -> int:
    if len(sys.argv) != 3 or sys.argv[1] not in ("crash", "resume"):
        print(__doc__, file=sys.stderr)
        return 2
    {"crash": crash, "resume": resume}[sys.argv[1]](sys.argv[2])
    return 0


if __name__ == "__main__":
    sys.exit(main())
