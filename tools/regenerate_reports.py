#!/usr/bin/env python3
"""Regenerate every paper table/figure report in one command.

Runs the benchmark harness (which writes `benchmarks/reports/*.txt`) and
prints a summary index mapping each paper artifact to its report file.

    python tools/regenerate_reports.py [--quick]

``--quick`` skips the timing-only benchmark cases and runs just the
report-producing tests (a ~3x faster sweep; the tables are identical).
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
REPORTS = os.path.join(ROOT, "benchmarks", "reports")

INDEX = [
    ("Fig. 1", "fig1_svd_accuracy.txt"),
    ("Fig. 2a", "fig2a_cascade_lake_breakdown.txt"),
    ("Fig. 2b", "fig2b_andes_breakdown.txt"),
    ("Fig. 3", "fig3_weak_scaling.txt"),
    ("Fig. 4 / Tab. 1", "fig4_strong_scaling.txt"),
    ("Fig. 4 accuracy", "fig4_accuracy_check.txt"),
    ("Fig. 5", "fig5_hcci_singular_values.txt"),
    ("Fig. 6", "fig6_sp_singular_values.txt"),
    ("Fig. 7", "fig7_video_singular_values.txt"),
    ("Tab. 2 / Fig. 8a", "tab2_hcci_compression.txt"),
    ("Fig. 8b", "fig8b_hcci_breakdown.txt"),
    ("Tab. 3 / Fig. 9a", "tab3_sp_compression.txt"),
    ("Fig. 9b", "fig9b_sp_breakdown.txt"),
    ("Fig. 10", "fig10_video.txt"),
]


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true",
                    help="run only the report-producing tests")
    args = ap.parse_args()

    cmd = [sys.executable, "-m", "pytest", "benchmarks/", "--benchmark-only", "-q"]
    if args.quick:
        cmd += ["-k", "report"]
    print("running:", " ".join(cmd))
    rc = subprocess.call(cmd, cwd=ROOT)
    if rc != 0:
        print("benchmark run failed", file=sys.stderr)
        return rc

    print("\n=== paper artifact -> report file ===")
    missing = 0
    for label, fname in INDEX:
        path = os.path.join(REPORTS, fname)
        status = "ok" if os.path.exists(path) else "MISSING"
        if status == "MISSING":
            missing += 1
        print(f"{label:<18} benchmarks/reports/{fname:<36} {status}")
    extra = sorted(
        f for f in os.listdir(REPORTS)
        if f.endswith(".txt") and f not in {f for _, f in INDEX}
    )
    if extra:
        print("\nablation / extension / feature reports:")
        for f in extra:
            print(f"  benchmarks/reports/{f}")
    return 1 if missing else 0


if __name__ == "__main__":
    sys.exit(main())
