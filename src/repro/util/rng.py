"""Seeded random-number helpers.

Every stochastic routine in the package takes either a seed or a
``numpy.random.Generator``; these helpers normalize the two and provide
per-rank independent streams for SPMD code (each simulated MPI rank gets
its own child stream so results do not depend on rank scheduling order).
"""

from __future__ import annotations

import numpy as np

__all__ = ["default_rng", "spawn_rngs"]


def default_rng(seed=None) -> np.random.Generator:
    """Return ``seed`` if it is already a Generator, else ``np.random.default_rng(seed)``."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from one seed.

    Uses ``SeedSequence.spawn`` so the streams are reproducible given the
    seed and index, independent of how many other streams exist.
    """
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator's own stream so that
        # repeated calls advance deterministically.
        seed = int(seed.integers(0, 2**63 - 1))
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
