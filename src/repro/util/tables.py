"""Plain-text table formatting for benchmark reports.

The benchmark harness prints the same rows/series the paper's tables and
figures report; this formatter keeps those reports aligned and readable
without pulling in any plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table"]


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        a = abs(value)
        if 1e-3 <= a < 1e5:
            return f"{value:.4g}"
        return f"{value:.3e}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    *,
    title: str | None = None,
    align_right: bool = True,
) -> str:
    """Render rows as a fixed-width text table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of row sequences; cells are formatted with a compact
        numeric format (4 significant digits, scientific when extreme).
    title:
        Optional title line printed above the table.
    align_right:
        Right-align data cells (natural for numbers).
    """
    str_rows = [[_fmt_cell(c) for c in row] for row in rows]
    ncols = len(headers)
    for r in str_rows:
        if len(r) != ncols:
            raise ValueError(f"row has {len(r)} cells, expected {ncols}")
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(ncols)
    ]
    sep = "-+-".join("-" * w for w in widths)

    def fmt_row(cells: Sequence[str]) -> str:
        if align_right:
            return " | ".join(c.rjust(w) for c, w in zip(cells, widths))
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append(sep)
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)
