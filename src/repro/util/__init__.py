"""Shared utilities: validation helpers, seeded RNG, and table formatting."""

from .validation import (
    check_axis,
    check_positive_int,
    check_shape_match,
    ensure_ndarray,
    require,
)
from .rng import default_rng, spawn_rngs
from .tables import format_table

__all__ = [
    "check_axis",
    "check_positive_int",
    "check_shape_match",
    "ensure_ndarray",
    "require",
    "default_rng",
    "spawn_rngs",
    "format_table",
]
