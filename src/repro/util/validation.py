"""Argument validation helpers used across the package.

These are small and boring on purpose: every public entry point validates
its inputs with these helpers so error messages are uniform and tests can
assert on the exception types from :mod:`repro.errors`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ShapeError, ConfigurationError

__all__ = [
    "require",
    "check_positive_int",
    "check_axis",
    "check_shape_match",
    "ensure_ndarray",
]


def require(condition: bool, message: str, exc: type = ConfigurationError) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def check_positive_int(value, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {type(value).__name__}")
    value = int(value)
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def check_axis(axis, ndim: int, name: str = "mode") -> int:
    """Validate a mode/axis index against a tensor of ``ndim`` modes.

    Negative indices are supported with the usual Python convention.
    """
    if isinstance(axis, bool) or not isinstance(axis, (int, np.integer)):
        raise ConfigurationError(f"{name} must be an integer, got {type(axis).__name__}")
    axis = int(axis)
    if not -ndim <= axis < ndim:
        raise ShapeError(f"{name} {axis} out of range for {ndim}-mode tensor")
    return axis % ndim


def check_shape_match(shape_a: Sequence[int], shape_b: Sequence[int], what: str) -> None:
    """Raise :class:`ShapeError` unless the two shapes are equal."""
    if tuple(shape_a) != tuple(shape_b):
        raise ShapeError(f"{what}: shape mismatch {tuple(shape_a)} vs {tuple(shape_b)}")


def ensure_ndarray(a, name: str, *, ndim: int | None = None, dtype=None) -> np.ndarray:
    """Convert ``a`` to an ndarray, optionally checking rank and casting dtype.

    Unlike ``np.asarray`` this gives a package-specific error message when
    the rank is wrong, and never silently downcasts: if ``dtype`` is given
    the conversion uses ``same_kind`` casting.
    """
    arr = np.asarray(a) if dtype is None else np.asarray(a, dtype=dtype)
    if ndim is not None and arr.ndim != ndim:
        raise ShapeError(f"{name} must have {ndim} dimensions, got {arr.ndim}")
    return arr
