"""Unfolding layout arithmetic (Sec. 2.1 and 3.3 of the paper).

A tensor with dimensions ``I_0 x ... x I_{N-1}`` is stored with mode 0
fastest in memory (TuckerMPI's "natural" / Fortran-style order).  For a
mode ``n`` the paper defines

* ``I_n^circ``  — product of *all* dimensions (written ``prod_all``),
* ``I_n^otimes`` — product of dimensions *before* ``n`` (``prod_before``),
* ``I_n^oslash`` — product of dimensions *after*  ``n`` (``prod_after``).

The mode-``n`` unfolding is the ``I_n x prod_before*prod_after`` matrix
whose columns are the mode-``n`` fibers.  In natural storage order it is
a sequence of ``prod_after`` contiguous blocks, each an ``I_n x
prod_before`` **row-major** matrix (Sec. 3.3 "Data Layout").  Two special
cases fall out of the formulas: mode 0 is one contiguous column-major
matrix, and mode N-1 is one contiguous row-major matrix.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..util.validation import check_axis

__all__ = [
    "prod_all",
    "prod_before",
    "prod_after",
    "unfolding_shape",
    "num_column_blocks",
    "block_shape",
    "column_of_multi_index",
    "multi_index_of_column",
]


def prod_all(shape: Sequence[int]) -> int:
    """Product of all dimensions, ``I^circ``."""
    return math.prod(shape)


def prod_before(shape: Sequence[int], n: int) -> int:
    """Product of dimensions strictly before mode ``n``, ``I_n^otimes``."""
    n = check_axis(n, len(shape))
    return math.prod(shape[:n])


def prod_after(shape: Sequence[int], n: int) -> int:
    """Product of dimensions strictly after mode ``n``, ``I_n^oslash``."""
    n = check_axis(n, len(shape))
    return math.prod(shape[n + 1 :])


def unfolding_shape(shape: Sequence[int], n: int) -> tuple[int, int]:
    """Shape ``(rows, cols)`` of the mode-``n`` unfolding."""
    n = check_axis(n, len(shape))
    return shape[n], prod_before(shape, n) * prod_after(shape, n)


def num_column_blocks(shape: Sequence[int], n: int) -> int:
    """Number of contiguous row-major column blocks of the mode-``n`` unfolding."""
    return prod_after(shape, n)


def block_shape(shape: Sequence[int], n: int) -> tuple[int, int]:
    """Shape of each contiguous column block: ``(I_n, prod_before)``."""
    n = check_axis(n, len(shape))
    return shape[n], prod_before(shape, n)


def column_of_multi_index(shape: Sequence[int], n: int, index: Sequence[int]) -> int:
    """Column of the mode-``n`` unfolding holding tensor element ``index``.

    Columns are ordered with mode 0 varying fastest among the non-``n``
    modes (the natural-layout convention used throughout the paper).
    """
    n = check_axis(n, len(shape))
    if len(index) != len(shape):
        raise ValueError(f"index has {len(index)} entries for {len(shape)}-mode tensor")
    col = 0
    stride = 1
    for k, (i_k, d_k) in enumerate(zip(index, shape)):
        if k == n:
            continue
        if not 0 <= i_k < d_k:
            raise ValueError(f"index {i_k} out of range for mode {k} of size {d_k}")
        col += i_k * stride
        stride *= d_k
    return col


def multi_index_of_column(shape: Sequence[int], n: int, col: int) -> tuple[int, ...]:
    """Inverse of :func:`column_of_multi_index`; the mode-``n`` entry is 0."""
    n = check_axis(n, len(shape))
    rows, cols = unfolding_shape(shape, n)
    if not 0 <= col < cols:
        raise ValueError(f"column {col} out of range for unfolding with {cols} columns")
    index = [0] * len(shape)
    rem = col
    for k, d_k in enumerate(shape):
        if k == n:
            continue
        index[k] = rem % d_k
        rem //= d_k
    return tuple(index)
