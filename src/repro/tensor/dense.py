"""Dense tensor container with TuckerMPI's natural (mode-0-fastest) layout.

:class:`DenseTensor` wraps a Fortran-contiguous NumPy array so that the
column-block structure of every unfolding (see :mod:`repro.tensor.layout`)
is available as zero-copy views.  All numerical kernels in
:mod:`repro.linalg` operate on these views, which is what lets the
sequential TensorLQ algorithm (paper Alg. 2) stream through the tensor
once without any transposition.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ShapeError
from ..precision import Precision, resolve_precision
from ..util.validation import check_axis
from . import layout

__all__ = ["DenseTensor"]


class DenseTensor:
    """An N-mode dense tensor stored mode-0-fastest (Fortran order).

    Parameters
    ----------
    data:
        Array of shape ``(I_0, ..., I_{N-1})``.  Copied/converted to a
        Fortran-contiguous array of a supported working precision
        (float32 or float64) unless it already is one.

    Notes
    -----
    The class is deliberately *not* an ndarray subclass: the few
    operations ST-HOSVD needs (unfoldings, column-block views, norms,
    TTM) are explicit methods, which keeps layout guarantees airtight.
    """

    __slots__ = ("_data",)

    def __init__(self, data) -> None:
        if np.ndim(data) == 0:
            raise ShapeError("a tensor must have at least one mode")
        arr = np.asfortranarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = np.asfortranarray(arr, dtype=np.float64)
        self._data = arr

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def data(self) -> np.ndarray:
        """The underlying Fortran-contiguous ndarray (do not reorder it)."""
        return self._data

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return self._data.size

    @property
    def dtype(self) -> np.dtype:
        return self._data.dtype

    @property
    def precision(self) -> Precision:
        return resolve_precision(self._data.dtype)

    @property
    def nbytes(self) -> int:
        return self._data.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DenseTensor(shape={self.shape}, dtype={self.dtype.name})"

    # ------------------------------------------------------------------
    # Creation helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(cls, shape: Sequence[int], dtype=np.float64) -> "DenseTensor":
        """All-zero tensor of the given shape and working precision."""
        prec = resolve_precision(dtype)
        return cls(np.zeros(shape, dtype=prec.dtype, order="F"))

    @classmethod
    def from_flat(cls, flat: np.ndarray, shape: Sequence[int]) -> "DenseTensor":
        """Build from a 1-D buffer laid out in natural (mode-0-fastest) order."""
        flat = np.asarray(flat)
        if flat.ndim != 1:
            raise ShapeError("from_flat expects a 1-D buffer")
        if flat.size != layout.prod_all(shape):
            raise ShapeError(
                f"buffer of {flat.size} elements cannot fill shape {tuple(shape)}"
            )
        return cls(flat.reshape(shape, order="F"))

    def copy(self) -> "DenseTensor":
        """Deep copy (fresh Fortran-contiguous buffer)."""
        return DenseTensor(self._data.copy(order="F"))

    def astype(self, dtype) -> "DenseTensor":
        """Convert to another working precision (no-op copy if same)."""
        prec = resolve_precision(dtype)
        return DenseTensor(np.asfortranarray(self._data, dtype=prec.dtype))

    # ------------------------------------------------------------------
    # Layout views
    # ------------------------------------------------------------------
    def flat_view(self) -> np.ndarray:
        """1-D zero-copy view of the buffer in natural order."""
        return self._data.reshape(-1, order="F")

    def unfold(self, n: int) -> np.ndarray:
        """Mode-``n`` unfolding ``X_(n)`` with columns ordered mode-0-fastest.

        Zero-copy for ``n == 0``; other modes require a transposition
        copy (which is exactly why Alg. 2 works block-wise instead).
        """
        n = check_axis(n, self.ndim)
        rows = self.shape[n]
        moved = np.moveaxis(self._data, n, 0)
        return moved.reshape(rows, -1, order="F")

    def num_column_blocks(self, n: int) -> int:
        """Number of contiguous row-major column blocks of unfolding ``n``."""
        return layout.num_column_blocks(self.shape, n)

    def column_block(self, n: int, j: int) -> np.ndarray:
        """Zero-copy view of the ``j``-th column block of unfolding ``n``.

        The returned array has shape ``(I_n, prod_before(n))`` and is
        row-major (C-contiguous) as described in Sec. 3.3.
        """
        n = check_axis(n, self.ndim)
        nblocks = layout.num_column_blocks(self.shape, n)
        if not 0 <= j < nblocks:
            raise ShapeError(f"block {j} out of range (mode {n} has {nblocks} blocks)")
        rows, bcols = layout.block_shape(self.shape, n)
        blk = rows * bcols
        flat = self.flat_view()[j * blk : (j + 1) * blk]
        # A contiguous chunk where mode-n varies with stride prod_before:
        # that is an (I_n x prod_before) row-major matrix.
        return flat.reshape(rows, bcols)

    def column_block_range(self, n: int, j0: int, j1: int) -> np.ndarray:
        """Row-major view spanning column blocks ``j0..j1-1`` concatenated.

        Because consecutive blocks are contiguous in memory, any run of
        blocks is itself a valid ``(I_n, (j1-j0)*prod_before)``... only
        when ``I_n`` is the slowest-varying index *within the run*, which
        holds only for a single block.  For multiple blocks the run is a
        3-D view ``(j1-j0, I_n, prod_before)``; callers that need a 2-D
        short-fat matrix should hstack the blocks (copy).  This method
        returns the zero-copy 3-D view.
        """
        n = check_axis(n, self.ndim)
        nblocks = layout.num_column_blocks(self.shape, n)
        if not (0 <= j0 <= j1 <= nblocks):
            raise ShapeError(f"block range [{j0},{j1}) invalid for {nblocks} blocks")
        rows, bcols = layout.block_shape(self.shape, n)
        blk = rows * bcols
        flat = self.flat_view()[j0 * blk : j1 * blk]
        return flat.reshape(j1 - j0, rows, bcols)

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def norm(self) -> float:
        """Frobenius norm; accumulation always in float64 for reliability."""
        flat = self.flat_view()
        return float(np.linalg.norm(flat.astype(np.float64, copy=False)))

    def norm_squared(self) -> float:
        """Squared Frobenius norm (float64 accumulation)."""
        v = self.norm()
        return v * v

    def allclose(self, other: "DenseTensor", rtol: float = 1e-5, atol: float = 1e-8) -> bool:
        """Shape equality plus elementwise ``np.allclose``."""
        return self.shape == other.shape and bool(
            np.allclose(self._data, other._data, rtol=rtol, atol=atol)
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, DenseTensor):
            return NotImplemented
        return self.shape == other.shape and bool(np.array_equal(self._data, other._data))

    __hash__ = None  # mutable container

    # ------------------------------------------------------------------
    # Elementwise arithmetic (shape- and precision-checked)
    # ------------------------------------------------------------------
    def _binary(self, other, op) -> "DenseTensor":
        if isinstance(other, DenseTensor):
            if other.shape != self.shape:
                raise ShapeError(
                    f"shape mismatch {self.shape} vs {other.shape}"
                )
            other = other._data
        return DenseTensor(np.asfortranarray(op(self._data, other)))

    def __add__(self, other) -> "DenseTensor":
        return self._binary(other, np.add)

    def __sub__(self, other) -> "DenseTensor":
        return self._binary(other, np.subtract)

    def __mul__(self, scalar) -> "DenseTensor":
        if isinstance(scalar, DenseTensor):
            raise ShapeError("use elementwise ops on .data for tensor*tensor")
        return DenseTensor(np.asfortranarray(self._data * self.dtype.type(scalar)))

    __rmul__ = __mul__

    def __neg__(self) -> "DenseTensor":
        return DenseTensor(np.asfortranarray(-self._data))
