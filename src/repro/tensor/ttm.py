"""Tensor-times-matrix (TTM) kernels.

``ttm(X, U, n)`` computes ``Y = X x_n U`` defined by ``Y_(n) = U @ X_(n)``
(Sec. 2.1).  In ST-HOSVD the factor is applied transposed
(``Y = X x_n U^T`` with ``U`` tall), shrinking mode ``n`` from ``I_n`` to
``R_n``; :func:`ttm` takes a ``transpose`` flag for that case, matching
TuckerMPI's kernel ([6, Alg. 3]).

Layout-aware implementation: the mode-``n`` unfolding is a sequence of
contiguous row-major column blocks, so the product is computed block by
block without materializing the full (transposed) unfolding.  Each block
product ``U @ B_j`` writes directly into the corresponding block view of
the output tensor, which keeps the operation single-pass and
allocation-minimal, as the paper's implementation does.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ShapeError
from ..util.validation import check_axis
from .dense import DenseTensor

__all__ = ["ttm", "multi_ttm", "ttm_flops"]


def ttm(tensor: DenseTensor, matrix: np.ndarray, n: int, *, transpose: bool = False) -> DenseTensor:
    """Mode-``n`` product ``X x_n U`` (or ``X x_n U^T`` when ``transpose``).

    Parameters
    ----------
    tensor:
        Input tensor with mode-``n`` dimension ``I_n``.
    matrix:
        ``(K, I_n)`` matrix (``(I_n, K)`` when ``transpose=True``).
    n:
        Contraction mode.
    transpose:
        Apply ``U^T`` instead of ``U`` — the ST-HOSVD truncation case.

    Returns
    -------
    DenseTensor
        Result with mode-``n`` dimension ``K``, same working precision
        as the input tensor.
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    n = check_axis(n, tensor.ndim)
    U = np.asarray(matrix)
    if U.ndim != 2:
        raise ShapeError("TTM factor must be a matrix")
    in_dim = tensor.shape[n]
    op = U.T if transpose else U
    if op.shape[1] != in_dim:
        raise ShapeError(
            f"TTM factor contracts {op.shape[1]} indices but mode {n} has {in_dim}"
        )
    if op.dtype != tensor.dtype:
        op = op.astype(tensor.dtype)
    out_dim = op.shape[0]
    out_shape = tensor.shape[:n] + (out_dim,) + tensor.shape[n + 1 :]
    out = DenseTensor.zeros(out_shape, dtype=tensor.dtype)

    if n == 0:
        # Mode-0 unfoldings of input and output are both zero-copy
        # column-major views: one matmul does the whole product.
        np.matmul(op, tensor.unfold(0), out=out.unfold(0))
        return out

    nblocks = tensor.num_column_blocks(n)
    rows = tensor.shape[n]
    bcols = tensor.size // (rows * nblocks)
    # Each input block is (I_n x prod_before) row-major; the matching
    # output block is (out_dim x prod_before).  Blocks are batched into
    # chunks and handled by one broadcasted matmul writing straight into
    # the output views, keeping Python-level iteration off the critical
    # path for the many-small-blocks modes.
    chunk = max(1, (1 << 20) // max(rows * bcols, 1))
    j = 0
    while j < nblocks:
        j1 = min(j + chunk, nblocks)
        src = tensor.column_block_range(n, j, j1)  # (k, rows, bcols)
        dst = out.column_block_range(n, j, j1)  # (k, out_dim, bcols)
        np.matmul(op, src, out=dst)
        j = j1
    return out


def multi_ttm(
    tensor: DenseTensor,
    matrices: Sequence[np.ndarray | None],
    *,
    transpose: bool = False,
) -> DenseTensor:
    """Apply a TTM in every mode with a non-``None`` factor.

    Used for reconstructing a Tucker approximation
    (``G x_0 U_0 ... x_{N-1} U_{N-1}``).  Modes are processed in
    increasing order of the intermediate result size growth, i.e. simply
    ascending, which is adequate for the reconstruction use case.
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    if len(matrices) != tensor.ndim:
        raise ShapeError(
            f"need one factor slot per mode ({tensor.ndim}), got {len(matrices)}"
        )
    result = tensor
    for mode, mat in enumerate(matrices):
        if mat is not None:
            result = ttm(result, mat, mode, transpose=transpose)
    return result


def ttm_flops(shape: Sequence[int], n: int, out_dim: int) -> int:
    """Flop count of a mode-``n`` TTM producing mode dimension ``out_dim``.

    A matrix product ``(out_dim x I_n) @ (I_n x cols)`` costs
    ``2 * out_dim * I_n * cols`` flops.
    """
    cols = 1
    for k, d in enumerate(shape):
        if k != n:
            cols *= d
    return 2 * out_dim * shape[n] * cols
