"""Dense tensor substrate: natural-layout tensors, unfoldings, and TTM."""

from .dense import DenseTensor
from .unfold import unfold, fold
from .ttm import ttm, multi_ttm, ttm_flops
from .manipulate import permute_modes, concatenate_mode, subtensor
from . import layout

__all__ = [
    "DenseTensor",
    "unfold",
    "fold",
    "ttm",
    "multi_ttm",
    "ttm_flops",
    "permute_modes",
    "concatenate_mode",
    "subtensor",
    "layout",
]
