"""Tensor manipulation: mode permutation, concatenation, subtensors.

The paper considers data "in the mode order used to store it on disk"
(Sec. 4.2.3); when a different processing order is profitable it can pay
to physically permute the modes once so the hot unfolding becomes the
contiguous one.  ``permute_modes`` performs that relayout.
``concatenate_mode`` appends along a mode — the standard way simulation
time steps accumulate into the last mode — and ``subtensor`` extracts a
contiguous region.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ShapeError
from ..util.validation import check_axis
from .dense import DenseTensor

__all__ = ["permute_modes", "concatenate_mode", "subtensor"]


def permute_modes(tensor: DenseTensor, perm: Sequence[int]) -> DenseTensor:
    """Physically reorder modes so ``out.shape[i] == in.shape[perm[i]]``.

    The result is a fresh natural-layout tensor: its mode 0 (the new
    fastest-varying axis) is the input's mode ``perm[0]``.  Use before a
    run whose first-processed mode is not mode 0 and is large enough
    that the layout-tailored driver (gelq on contiguous data) matters.
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    perm = tuple(int(p) for p in perm)
    if sorted(perm) != list(range(tensor.ndim)):
        raise ShapeError(f"{perm} is not a permutation of 0..{tensor.ndim - 1}")
    return DenseTensor(np.asfortranarray(np.transpose(tensor.data, perm)))


def concatenate_mode(
    tensors: Sequence[DenseTensor], mode: int
) -> DenseTensor:
    """Concatenate tensors along ``mode`` (all other dims must match).

    Typical use: assembling time steps into the last mode, which is how
    the combustion datasets are built from per-step dumps.
    """
    if not tensors:
        raise ShapeError("need at least one tensor")
    tensors = [t if isinstance(t, DenseTensor) else DenseTensor(t) for t in tensors]
    ndim = tensors[0].ndim
    mode = check_axis(mode, ndim)
    base = list(tensors[0].shape)
    for t in tensors[1:]:
        if t.ndim != ndim:
            raise ShapeError("all tensors must have the same number of modes")
        other = list(t.shape)
        if [d for i, d in enumerate(other) if i != mode] != [
            d for i, d in enumerate(base) if i != mode
        ]:
            raise ShapeError(
                f"shape {t.shape} incompatible with {tensors[0].shape} along mode {mode}"
            )
        if t.dtype != tensors[0].dtype:
            raise ShapeError("all tensors must share a working precision")
    out = np.concatenate([t.data for t in tensors], axis=mode)
    return DenseTensor(np.asfortranarray(out))


def subtensor(tensor: DenseTensor, slices: Sequence[slice]) -> DenseTensor:
    """Contiguous subtensor copy (natural layout preserved)."""
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    if len(slices) != tensor.ndim:
        raise ShapeError(f"need one slice per mode ({tensor.ndim})")
    return DenseTensor(np.asfortranarray(tensor.data[tuple(slices)]))
