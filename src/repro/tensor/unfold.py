"""Standalone unfold/fold between tensors and matricizations.

These complement the view-based accessors on :class:`DenseTensor` for
cases where an explicit matrix (possibly produced by a kernel) must be
reshaped back into a tensor, e.g. after a TTM computed as a matrix
product on the unfolding.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ShapeError
from ..util.validation import check_axis
from . import layout
from .dense import DenseTensor

__all__ = ["unfold", "fold"]


def unfold(tensor, n: int) -> np.ndarray:
    """Mode-``n`` unfolding of a :class:`DenseTensor` or array-like.

    Columns are ordered mode-0-fastest among the remaining modes, the
    natural-layout convention.
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    return tensor.unfold(n)


def fold(matrix: np.ndarray, n: int, shape: Sequence[int]) -> DenseTensor:
    """Inverse of :func:`unfold`: rebuild the tensor of ``shape`` from ``X_(n)``.

    Parameters
    ----------
    matrix:
        ``(shape[n], prod of other dims)`` array whose columns follow the
        mode-0-fastest ordering.
    n:
        The unfolded mode.
    shape:
        Target tensor dimensions.
    """
    shape = tuple(int(s) for s in shape)
    n = check_axis(n, len(shape))
    matrix = np.asarray(matrix)
    expected = layout.unfolding_shape(shape, n)
    if matrix.shape != expected:
        raise ShapeError(
            f"mode-{n} unfolding of shape {tuple(shape)} must be {expected}, "
            f"got {matrix.shape}"
        )
    moved_shape = (shape[n],) + shape[:n] + shape[n + 1 :]
    moved = matrix.reshape(moved_shape, order="F")
    return DenseTensor(np.moveaxis(moved, 0, n))
