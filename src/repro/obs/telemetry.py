"""Mid-run telemetry: live snapshots of a running SPMD world.

A :class:`TelemetryHub` is attached by the launcher when passed via
``run_spmd(..., telemetry=hub)``.  While the world runs, any thread may
call :meth:`TelemetryHub.snapshot` to get a JSON-friendly view of the
world — per-rank status, heartbeat age, flight-recorder activity, open
span stacks, and communication totals — or :meth:`TelemetryHub.render`
for the ``repro top`` text table.

Heartbeats: on the process backend each worker ships periodic deltas to
the master (see ``repro.mpi.transport.procs``) and the master calls
:meth:`beat`; on the thread backend ranks share the master's address
space, so the last flight-recorder event timestamp doubles as the
heartbeat.  ``heartbeat_age_s`` is the freshest of the two signals.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

__all__ = ["TelemetryHub"]


class TelemetryHub:
    """Thread-safe mid-run snapshot API over a live SPMD world."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._context = None
        self._recorder = None
        self._backend: Optional[str] = None
        self._started: Optional[float] = None
        self._beats: Dict[int, float] = {}

    # -- wiring (called by the launcher / transports) -------------------

    def attach(self, context, recorder=None, backend: Optional[str] = None) -> None:
        """Bind this hub to a world about to execute."""
        with self._lock:
            self._context = context
            self._recorder = recorder
            self._backend = backend
            self._started = time.time()
            self._beats = {}

    def beat(self, rank: int, ts: Optional[float] = None) -> None:
        """Record a heartbeat from ``rank`` (procs master ingest path)."""
        with self._lock:
            self._beats[rank] = time.time() if ts is None else ts

    @property
    def attached(self) -> bool:
        return self._context is not None

    @property
    def backend(self) -> Optional[str]:
        return self._backend

    # -- queries --------------------------------------------------------

    def heartbeat_ages(self, now: Optional[float] = None) -> Dict[int, Optional[float]]:
        """Seconds since each rank was last heard from (None = never)."""
        with self._lock:
            context = self._context
            recorder = self._recorder
            beats = dict(self._beats)
        if context is None:
            return {}
        if now is None:
            now = time.time()
        ages: Dict[int, Optional[float]] = {}
        for rank in range(context.world_size):
            ts = beats.get(rank, 0.0)
            if recorder is not None:
                ts = max(ts, recorder.last_event_ts(rank))
            ages[rank] = max(0.0, now - ts) if ts else None
        return ages

    def snapshot(self) -> Dict[str, Any]:
        """One consistent-enough view of the world, safe to call mid-run."""
        with self._lock:
            context = self._context
            recorder = self._recorder
            backend = self._backend
            started = self._started
        if context is None:
            return {"attached": False}
        now = time.time()
        ages = self.heartbeat_ages(now)
        per_rank: Dict[str, Any] = {}
        comm_ranks: Dict[int, Dict[str, Any]] = {}
        comm_trace = getattr(context, "comm_trace", None)
        if comm_trace is not None:
            try:
                comm_ranks = {
                    int(r): dict(row)
                    for r, row in comm_trace.to_dict().get("ranks", {}).items()
                }
            except Exception:
                comm_ranks = {}
        incarnations = getattr(context, "rank_incarnations", None)
        for rank in range(context.world_size):
            entry: Dict[str, Any] = {
                "status": context.rank_status(rank),
                "heartbeat_age_s": ages.get(rank),
            }
            if incarnations is not None:
                entry["incarnation"] = int(incarnations[rank])
            if recorder is not None:
                entry["events_recorded"] = recorder.recorded(rank)
                entry["open_spans"] = recorder.open_spans(rank)
            if rank in comm_ranks:
                entry["comm"] = comm_ranks[rank]
            per_rank[str(rank)] = entry
        recovery_events = getattr(context, "recovery_events", None)
        try:
            recovery = recovery_events() if callable(recovery_events) else []
        except Exception:
            recovery = []
        snap: Dict[str, Any] = {
            "attached": True,
            "time_unix": now,
            "uptime_s": max(0.0, now - started) if started else 0.0,
            "backend": backend,
            "world_size": context.world_size,
            "aborted": context.abort_event.is_set(),
            "abort_reason": context.abort_reason,
            "failed_ranks": context.failed_ranks(),
            "recoveries": len(recovery),
            "ranks": per_rank,
        }
        if comm_trace is not None:
            try:
                snap["comm_totals"] = comm_trace.to_dict().get("totals", {})
            except Exception:
                pass
        return snap

    # -- rendering ------------------------------------------------------

    def render(self, snapshot: Optional[Dict[str, Any]] = None) -> str:
        """Format a snapshot as the ``repro top`` text table."""
        snap = snapshot if snapshot is not None else self.snapshot()
        if not snap.get("attached"):
            return "repro top — no world attached"
        from ..util.tables import format_table

        header = (
            f"repro top — backend={snap.get('backend') or '?'}  "
            f"world={snap.get('world_size')}  "
            f"uptime={snap.get('uptime_s', 0.0):.1f}s"
        )
        if snap.get("recoveries"):
            header += f"  recoveries={snap['recoveries']}"
        if snap.get("aborted"):
            header += f"  ABORTED: {snap.get('abort_reason')}"
        rows = []
        for rank_key in sorted(snap.get("ranks", {}), key=int):
            entry = snap["ranks"][rank_key]
            age = entry.get("heartbeat_age_s")
            comm = entry.get("comm", {})
            spans = entry.get("open_spans") or []
            incarnation = entry.get("incarnation", 0)
            rows.append(
                [
                    rank_key,
                    entry.get("status", "?"),
                    str(incarnation + 1) if incarnation else "1",
                    "-" if age is None else f"{age:.2f}s",
                    str(entry.get("events_recorded", "-")),
                    str(comm.get("sent_messages", "-")),
                    str(comm.get("sent_bytes", "-")),
                    str(comm.get("recv_messages", "-")),
                    spans[-1] if spans else "-",
                ]
            )
        table = format_table(
            ["rank", "status", "inc", "hb age", "events", "sent", "sent B",
             "recvd", "where"],
            rows,
        )
        return header + "\n" + table
