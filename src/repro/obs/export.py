"""Exporters for recorded traces: Chrome trace JSON, tables, imbalance.

Three views of one :class:`~repro.obs.tracer.Tracer`:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format consumed by ``chrome://tracing`` and Perfetto.  Every rank gets
  its own track (``tid``), every span becomes a complete (``"X"``)
  event, and metadata events name the tracks so a timeline of an SPMD
  run opens ready to read.
* :func:`phase_table` — per-rank × per-phase seconds, the measured
  counterpart of the paper's stacked-bar breakdowns, via
  :mod:`repro.util.tables`.
* :func:`imbalance_summary` / :func:`imbalance_table` — per-phase
  max/mean/min over ranks, the imbalance ratio, barrier wait time, and
  the critical path (busiest rank), the quantities load-balancing work
  optimises against.
"""

from __future__ import annotations

import json

from ..instrument import PHASE_COMM
from ..util.tables import format_table
from .tracer import Span, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "phase_table",
    "imbalance_summary",
    "imbalance_table",
]

# The subset of the Trace Event Format this exporter emits.
_PROCESS_NAME = "repro SPMD world"


def _span_event(span: Span) -> dict:
    args: dict = {}
    if span.mode is not None:
        args["mode"] = span.mode
    if span.phase is not None:
        args["phase"] = span.phase
    args.update(span.attrs)
    return {
        "name": span.name,
        "cat": span.phase or "span",
        "ph": "X",
        "ts": span.start * 1e6,  # microseconds, per the spec
        "dur": span.duration * 1e6,
        "pid": 0,
        "tid": span.rank,
        "args": args,
    }


def chrome_trace(tracer: Tracer, comm_trace=None, *, metadata=None) -> dict:
    """Trace Event Format document: one track per rank, 'X' span events.

    Load the serialized result in ``chrome://tracing`` or
    https://ui.perfetto.dev — ranks appear as named threads of one
    process, with nested spans stacked exactly as they executed.

    ``comm_trace`` (a :class:`~repro.mpi.tracing.CommTrace`) adds one
    ``comm.reliability`` counter sample per rank that recorded dropped/
    retried/corrupted traffic — fault-tolerance activity shows up next
    to the spans it perturbed.

    The exported document self-identifies via the Trace Event Format's
    ``otherData`` key: commit hash, generation time, and host, merged
    with any caller-supplied ``metadata`` dict (e.g. backend name and
    run start time) — so a trace file found on disk months later still
    says what produced it.
    """
    spans = tracer.spans
    ranks = sorted({s.rank for s in spans})
    events: list[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": 0,
        "tid": 0,
        "args": {"name": _PROCESS_NAME},
    }]
    for rank in ranks:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": rank,
            "args": {"name": f"rank {rank}"},
        })
        # Perfetto sorts tracks by this index; keep rank order.
        events.append({
            "name": "thread_sort_index",
            "ph": "M",
            "pid": 0,
            "tid": rank,
            "args": {"sort_index": rank},
        })
    events.extend(_span_event(s) for s in spans)
    if comm_trace is not None:
        for rank in sorted(set(ranks) | set(comm_trace.ranks())):
            counters = {
                "dropped": comm_trace.dropped_messages(rank),
                "retried": comm_trace.retried_messages(rank),
                "checksum_failures": comm_trace.checksum_failures(rank),
            }
            if any(counters.values()):
                events.append({
                    "name": "comm.reliability",
                    "ph": "C",
                    "ts": 0,
                    "pid": 0,
                    "tid": rank,
                    "args": counters,
                })
    from .postmortem import run_metadata

    other = run_metadata()
    if metadata:
        other.update(metadata)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    tracer: Tracer, path: str, *, indent: int | None = None, comm_trace=None,
    metadata=None,
) -> None:
    """Serialize :func:`chrome_trace` to ``path`` as JSON."""
    with open(path, "w") as f:
        json.dump(
            chrome_trace(tracer, comm_trace=comm_trace, metadata=metadata),
            f, indent=indent,
        )


def _phases_in_order(tracer: Tracer) -> list[str]:
    """Phases present in the trace, canonical breakdown order first."""
    from ..instrument import PHASE_LQ, PHASE_GRAM, PHASE_SVD, PHASE_EVD, PHASE_TTM

    canonical = [PHASE_LQ, PHASE_GRAM, PHASE_SVD, PHASE_EVD, PHASE_TTM, PHASE_COMM]
    present = {phase for (_r, phase) in tracer.by_rank_phase()}
    out = [p for p in canonical if p in present]
    out.extend(sorted(present - set(canonical)))
    return out


def phase_table(tracer: Tracer, *, title: str | None = None) -> str:
    """Per-rank × per-phase seconds table (plus busy-time column).

    The Comm column is cross-cutting — communication spans run *inside*
    the kernel spans — so rows are not sums of their cells; ``busy`` is
    the rank's top-level span time.
    """
    phases = _phases_in_order(tracer)
    per = tracer.by_rank_phase()
    rows = []
    for rank in tracer.ranks():
        row: list = [rank]
        row.extend(per.get((rank, p), 0.0) for p in phases)
        row.append(tracer.total_seconds(rank))
        rows.append(row)
    return format_table(["rank"] + phases + ["busy"], rows, title=title)


def imbalance_summary(tracer: Tracer) -> dict:
    """Load-imbalance quantities computed from the recorded spans.

    Returns a dict with:

    * ``phases`` — per phase: max/mean/min seconds over ranks and the
      imbalance ratio ``max/mean`` (1.0 = perfectly balanced; the
      randomized-HOSVD follow-up work attacks exactly this number);
    * ``barrier_wait`` — per-rank seconds inside ``comm.barrier`` spans
      (waiting at explicit barriers), plus the max;
    * ``comm_wait`` — per-rank seconds inside all Comm-phase spans, an
      upper bound on time not spent computing;
    * ``critical_path_seconds`` — busy time of the busiest rank, the
      wall-clock floor for this schedule;
    * ``mean_busy_seconds`` — mean busy time over ranks.
    """
    ranks = tracer.ranks()
    nranks = max(len(ranks), 1)
    per = tracer.by_rank_phase()
    phases: dict[str, dict] = {}
    for phase in _phases_in_order(tracer):
        vals = [per.get((r, phase), 0.0) for r in ranks]
        mx, mn = max(vals, default=0.0), min(vals, default=0.0)
        mean = sum(vals) / nranks
        phases[phase] = {
            "max": mx,
            "mean": mean,
            "min": mn,
            "imbalance": (mx / mean) if mean > 0 else 1.0,
        }
    barrier = {r: 0.0 for r in ranks}
    comm_wait = {r: 0.0 for r in ranks}
    for s in tracer.spans:
        if s.name == "comm.barrier":
            barrier[s.rank] = barrier.get(s.rank, 0.0) + s.duration
        if s.phase == PHASE_COMM and not s.self_nested:
            comm_wait[s.rank] = comm_wait.get(s.rank, 0.0) + s.duration
    busy = {r: tracer.total_seconds(r) for r in ranks}
    return {
        "phases": phases,
        "barrier_wait": barrier,
        "max_barrier_wait": max(barrier.values(), default=0.0),
        "comm_wait": comm_wait,
        "critical_path_seconds": max(busy.values(), default=0.0),
        "mean_busy_seconds": sum(busy.values()) / nranks,
    }


def imbalance_table(tracer: Tracer, *, title: str | None = None) -> str:
    """Render :func:`imbalance_summary` as a report table."""
    summary = imbalance_summary(tracer)
    rows = []
    for phase, st in summary["phases"].items():
        rows.append([phase, st["max"], st["mean"], st["min"], st["imbalance"]])
    busy = summary["critical_path_seconds"]
    mean_busy = summary["mean_busy_seconds"]
    rows.append([
        "busy", busy, mean_busy, "",
        (busy / mean_busy) if mean_busy > 0 else 1.0,
    ])
    rows.append(["barrier wait", summary["max_barrier_wait"],
                 "", "", ""])
    return format_table(
        ["phase", "max [s]", "mean [s]", "min [s]", "max/mean"],
        rows, title=title,
    )
