"""Crash postmortems: bundle assembly, persistence, and rendering.

When a run launched with ``run_spmd(..., recorder=FlightRecorder(...))``
dies — :class:`~repro.errors.DeadlockError`,
:class:`~repro.errors.RankFailedError`,
:class:`~repro.errors.WorldAbortedError`, a hard worker death
(pipe-EOF), or any other rank exception — the launcher assembles a
single JSON **postmortem bundle** just before re-raising the root
cause:

* the last-N flight-recorder events of every rank,
* each rank's span stack at death (open spans, or the exception-unwind
  stack when the spans were closed by the propagating error),
* in-flight messages still queued in mailboxes, with sender origins
  when the sanitizer recorded them,
* per-rank heartbeat ages and lifecycle status,
* the sanitizer's deadlock report (wait-for-graph edges) when its
  watchdog fired,
* the fired-fault trace, and host/commit metadata.

The bundle is stashed on ``recorder.last_postmortem`` and, when
``FlightRecorder(postmortem_dir=...)`` is set, written to disk
(``recorder.last_postmortem_path``).  ``repro postmortem BUNDLE.json``
renders it for humans.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "POSTMORTEM_SCHEMA",
    "build_postmortem",
    "load_postmortem",
    "render_postmortem",
    "repo_commit",
    "host_metadata",
    "run_metadata",
    "write_postmortem",
]

POSTMORTEM_SCHEMA = "repro-postmortem/1"

# Default number of trailing recorder events included per rank.
DEFAULT_LAST_N = 50


def repo_commit() -> str:
    """Current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
        if out.returncode == 0:
            return out.stdout.strip()
    except Exception:
        pass
    return "unknown"


def host_metadata() -> Dict[str, Any]:
    """Host identification embedded in bundles and benchmark snapshots."""
    return {
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": sys.version.split()[0],
    }


def run_metadata(
    backend: Optional[str] = None, start_unix: Optional[float] = None
) -> Dict[str, Any]:
    """Self-identifying metadata for exported artifacts (traces, bundles)."""
    meta: Dict[str, Any] = {
        "commit": repo_commit(),
        "generated_unix": time.time(),
        "host": host_metadata(),
    }
    if backend is not None:
        meta["backend"] = backend
    if start_unix is not None:
        meta["start_unix"] = start_unix
    return meta


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def _in_flight_messages(context) -> List[Dict[str, Any]]:
    """Snapshot of every queued envelope, with sender origins when known."""
    out: List[Dict[str, Any]] = []
    try:
        boxes = context.mailboxes()
    except Exception:
        return out
    for (comm_id, dest_world), box in boxes:
        try:
            pending = box.pending_envelopes()
        except Exception:
            continue
        for (source, tag), envelopes in sorted(pending.items()):
            for env in envelopes:
                entry: Dict[str, Any] = {
                    "comm_id": comm_id,
                    "dest_world_rank": dest_world,
                    "source_rank": source,
                    "tag": tag,
                    "nbytes": getattr(env, "nbytes", 0),
                    "moved": bool(getattr(env, "moved", False)),
                }
                origin = getattr(env, "origin", None)
                if origin is not None:
                    entry["origin"] = str(origin)
                out.append(entry)
    return out


def build_postmortem(
    context,
    error: Optional[BaseException] = None,
    errors: Optional[List[Optional[BaseException]]] = None,
    recorder=None,
    telemetry=None,
    last_n: int = DEFAULT_LAST_N,
) -> Dict[str, Any]:
    """Assemble the postmortem bundle dict for an aborted world."""
    from .recorder import event_dict

    recorder = recorder if recorder is not None else getattr(context, "recorder", None)
    telemetry = telemetry if telemetry is not None else getattr(context, "telemetry", None)
    bundle: Dict[str, Any] = {
        "schema": POSTMORTEM_SCHEMA,
        "generated_unix": time.time(),
        "commit": repo_commit(),
        "host": host_metadata(),
        "backend": getattr(getattr(context, "transport", None), "name", None),
        "world_size": context.world_size,
        "aborted": context.abort_event.is_set(),
        "abort_reason": context.abort_reason,
        "failed_ranks": context.failed_ranks(),
    }
    if error is not None:
        err_entry: Dict[str, Any] = {
            "type": type(error).__name__,
            "message": str(error),
        }
        if errors:
            for rank, e in enumerate(errors):
                if e is error:
                    err_entry["rank"] = rank
                    break
        bundle["error"] = err_entry
    if errors:
        bundle["rank_errors"] = {
            str(rank): {"type": type(e).__name__, "message": str(e)}
            for rank, e in enumerate(errors)
            if e is not None
        }
    ages: Dict[int, Optional[float]] = {}
    if telemetry is not None:
        try:
            ages = telemetry.heartbeat_ages()
        except Exception:
            ages = {}
    ranks: Dict[str, Any] = {}
    for rank in range(context.world_size):
        entry: Dict[str, Any] = {
            "status": context.rank_status(rank),
            "heartbeat_age_s": ages.get(rank),
        }
        if recorder is not None:
            entry["events_recorded"] = recorder.recorded(rank)
            entry["events_evicted"] = recorder.evicted(rank)
            entry["open_spans"] = recorder.open_spans(rank)
            entry["error_unwind"] = recorder.error_unwind(rank)
            entry["span_stack"] = recorder.span_stack(rank)
            entry["last_events"] = [
                event_dict(e) for e in recorder.last_events(rank, last_n)
            ]
        ranks[str(rank)] = entry
    bundle["ranks"] = ranks
    bundle["in_flight"] = _in_flight_messages(context)
    deadlock = getattr(context, "last_deadlock", None)
    bundle["deadlock"] = _jsonable(deadlock) if deadlock is not None else None
    injector = getattr(context, "faults", None)
    if injector is not None:
        try:
            bundle["fault_trace"] = [list(e.as_tuple()) for e in injector.trace]
        except Exception:
            bundle["fault_trace"] = []
    else:
        bundle["fault_trace"] = []
    # Socket transport: per-rank link health (connect attempts/retries,
    # reconnects, last-frame age, the disconnect that killed the link,
    # injected network faults observed on it).
    net_health = getattr(context, "net_health", None)
    bundle["network"] = _jsonable(net_health) if net_health else None
    # Elastic recovery: respawns and replace-rendezvous commits logged
    # by the context, plus how many incarnations each rank went through.
    recovery_events = getattr(context, "recovery_events", None)
    try:
        bundle["recovery"] = (
            _jsonable(recovery_events()) if callable(recovery_events) else []
        )
    except Exception:
        bundle["recovery"] = []
    incarnations = getattr(context, "rank_incarnations", None)
    bundle["rank_incarnations"] = (
        [int(i) for i in incarnations] if incarnations else None
    )
    return _jsonable(bundle)


def write_postmortem(
    bundle: Dict[str, Any],
    directory: str,
    filename: Optional[str] = None,
) -> str:
    """Write ``bundle`` as JSON under ``directory``; returns the path."""
    os.makedirs(directory, exist_ok=True)
    if filename is None:
        stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
        filename = f"postmortem-{stamp}-{os.getpid()}.json"
    path = os.path.join(directory, filename)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bundle, fh, indent=2, default=str)
        fh.write("\n")
    return path


def load_postmortem(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        bundle = json.load(fh)
    if bundle.get("schema") != POSTMORTEM_SCHEMA:
        raise ValueError(
            f"{path}: not a postmortem bundle "
            f"(schema={bundle.get('schema')!r}, expected {POSTMORTEM_SCHEMA!r})"
        )
    return bundle


def _fmt_age(age: Any) -> str:
    if age is None:
        return "-"
    return f"{float(age):.2f}s"


def render_postmortem(bundle: Dict[str, Any], events: int = 10) -> str:
    """Human-readable report of a postmortem bundle (``repro postmortem``)."""
    from ..util.tables import format_table

    lines: List[str] = []
    when = time.strftime(
        "%Y-%m-%d %H:%M:%S UTC", time.gmtime(bundle.get("generated_unix", 0))
    )
    lines.append(f"postmortem bundle ({bundle.get('schema')})")
    lines.append(
        f"  generated: {when}   commit: {str(bundle.get('commit'))[:12]}   "
        f"backend: {bundle.get('backend')}   world: {bundle.get('world_size')}"
    )
    host = bundle.get("host") or {}
    if host:
        lines.append(
            f"  host: {host.get('hostname')} ({host.get('platform')}, "
            f"python {host.get('python')}, {host.get('cpu_count')} cpus)"
        )
    error = bundle.get("error")
    if error:
        where = f" on rank {error['rank']}" if "rank" in error else ""
        lines.append(f"\nROOT CAUSE{where}: {error.get('type')}: {error.get('message')}")
    if bundle.get("abort_reason"):
        lines.append(f"abort reason: {bundle['abort_reason']}")
    if bundle.get("failed_ranks"):
        lines.append(f"failed ranks: {bundle['failed_ranks']}")

    rank_rows = []
    for rank_key in sorted(bundle.get("ranks", {}), key=int):
        entry = bundle["ranks"][rank_key]
        stack = entry.get("span_stack") or []
        rank_rows.append(
            [
                rank_key,
                entry.get("status", "?"),
                _fmt_age(entry.get("heartbeat_age_s")),
                str(entry.get("events_recorded", "-")),
                " < ".join(reversed(stack)) if stack else "-",
            ]
        )
    if rank_rows:
        lines.append("")
        lines.append(
            format_table(
                ["rank", "status", "hb age", "events", "span stack (innermost first)"],
                rank_rows,
                align_right=False,
            )
        )

    in_flight = bundle.get("in_flight") or []
    lines.append(f"\nin-flight messages: {len(in_flight)}")
    for msg in in_flight[:20]:
        origin = f"  origin: {msg['origin']}" if msg.get("origin") else ""
        lines.append(
            f"  comm {msg.get('comm_id')}: rank {msg.get('source_rank')} -> "
            f"world rank {msg.get('dest_world_rank')} tag={msg.get('tag')} "
            f"({msg.get('nbytes')} B{', moved' if msg.get('moved') else ''})"
            f"{origin}"
        )
    if len(in_flight) > 20:
        lines.append(f"  ... and {len(in_flight) - 20} more")

    deadlock = bundle.get("deadlock")
    if deadlock:
        lines.append(f"\ndeadlock: {deadlock.get('reason', '?')}")
        for wait in deadlock.get("waits", []):
            if isinstance(wait, dict):
                site = f" at {wait['site']}" if wait.get("site") else ""
                lines.append(
                    f"  rank {wait.get('rank')} blocked in "
                    f"recv(source={wait.get('source_comm_rank')}, "
                    f"tag={wait.get('tag')}) on comm {wait.get('comm_id')} "
                    f"awaiting rank {wait.get('awaiting_rank')}{site}"
                )
            else:
                lines.append(f"  {wait}")
        for rank, names in sorted(
            (deadlock.get("open_spans") or {}).items(), key=lambda kv: kv[0]
        ):
            lines.append(f"  rank {rank} open spans: {' > '.join(names)}")

    network = bundle.get("network") or {}
    if network:
        lines.append("\nnetwork links:")
        net_rows = []
        for rank_key in sorted(network, key=int):
            h = network[rank_key]
            faults = ",".join(h.get("faults") or []) or "-"
            net_rows.append(
                [
                    rank_key,
                    str(h.get("connect_attempts", "-")),
                    str(h.get("retries", "-")),
                    str(h.get("reconnects", "-")),
                    _fmt_age(h.get("heartbeat_age")),
                    faults,
                    h.get("disconnect") or "-",
                ]
            )
        lines.append(
            format_table(
                ["rank", "connects", "retries", "reconns", "last rx",
                 "net faults", "disconnect"],
                net_rows,
                align_right=False,
            )
        )

    fault_trace = bundle.get("fault_trace") or []
    if fault_trace:
        lines.append(f"\nfault trace ({len(fault_trace)} fired):")
        for ev in fault_trace[:20]:
            lines.append(f"  {ev}")

    recovery = bundle.get("recovery") or []
    if recovery:
        lines.append(f"\nrecovery ({len(recovery)} actions):")
        for ev in recovery[:20]:
            detail = " ".join(
                f"{k}={v}" for k, v in ev.items()
                if k not in ("action", "time")
            )
            lines.append(f"  {ev.get('action', '?'):<16} {detail}".rstrip())
        if len(recovery) > 20:
            lines.append(f"  ... and {len(recovery) - 20} more")
    incarnations = bundle.get("rank_incarnations") or []
    if any(i > 0 for i in incarnations):
        respawned = {
            r: i for r, i in enumerate(incarnations) if i > 0
        }
        lines.append(
            "rank incarnations: "
            + "  ".join(f"rank {r}: {i + 1}" for r, i in respawned.items())
        )

    if events > 0:
        for rank_key in sorted(bundle.get("ranks", {}), key=int):
            entry = bundle["ranks"][rank_key]
            tail = (entry.get("last_events") or [])[-events:]
            if not tail:
                continue
            lines.append(f"\nrank {rank_key} — last {len(tail)} events:")
            for ev in tail:
                detail = ev.get("detail") or {}
                detail_str = " ".join(f"{k}={v}" for k, v in detail.items())
                name = ev.get("name") or ""
                lines.append(
                    f"  [{ev.get('seq'):>5}] {ev.get('kind'):<11} {name:<28} {detail_str}".rstrip()
                )
    return "\n".join(lines)
