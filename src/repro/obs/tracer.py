"""Per-rank span tracing for the SPMD runtime.

A :class:`Tracer` records *spans* — named, nestable intervals of
wall-clock time tagged with the rank that executed them, an optional
phase (the breakdown categories of :mod:`repro.instrument`), an optional
tensor mode, and free-form attributes.  One tracer serves a whole SPMD
world: :func:`repro.mpi.run_spmd` binds it to every rank thread, and the
instrumentation hooks threaded through the communicator, the distributed
kernels, and the drivers all find it through a thread-local without any
signature plumbing.

Design constraints, in order:

1. **~zero overhead when disabled.**  Every hook goes through
   :func:`trace_span`, which is a single thread-local ``getattr`` plus
   the return of one shared null context manager when no enabled tracer
   is active.  No allocation, no lock, no timestamps.
2. **No cross-rank contention when enabled.**  Each rank thread appends
   finished spans to its own buffer; the tracer-wide lock is taken only
   when a buffer is registered (once per rank) and when spans are read
   back.
3. **Honest nesting.**  Spans track their depth and whether an enclosing
   span already carries the same phase (``self_nested``), so aggregate
   phase totals never double-count — e.g. the ``comm.bcast`` inside a
   ``tree``-algorithm ``comm.allreduce`` is excluded from the Comm
   total, exactly like the inner call of a recursive profiler.

Usage::

    tracer = Tracer()
    res = run_spmd(program, P, tracer=tracer)     # spans from all ranks
    tracer.by_phase(rank=0)                       # {"lq": 0.01, ...}

    with tracer.span("ttm", phase=PHASE_TTM, mode=1):   # explicit
        ...

    with trace_span("custom"):                    # via the active tracer
        ...
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .metrics import MetricsRegistry
from .recorder import (
    note_span_close as _note_span_close,
    note_span_open as _note_span_open,
    recorder_span as _recorder_span,
)

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "deactivate",
    "current_tracer",
    "trace_span",
]


@dataclass(frozen=True)
class Span:
    """One finished span: a named wall-clock interval on one rank.

    ``start`` is seconds since the tracer's epoch (its construction
    time), ``duration`` in seconds.  ``phase`` uses the
    :mod:`repro.instrument` vocabulary (``lq``/``gram``/``svd``/``evd``/
    ``ttm``/``comm``) or ``None`` for uncategorised spans.  ``mode`` is
    the tensor mode, inherited from the enclosing span when not given.
    ``self_nested`` marks spans whose phase already appears on an
    enclosing span (skip them when totalling per-phase time).
    ``enclosing_phase`` is the innermost ancestor's phase, recording
    which breakdown category contains this span.
    """

    name: str
    rank: int
    start: float
    duration: float
    phase: str | None = None
    mode: int | None = None
    depth: int = 0
    self_nested: bool = False
    enclosing_phase: str | None = None
    attrs: dict = field(default_factory=dict)


class _NullSpan:
    """Shared no-op context manager returned while tracing is off."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _OpenSpan:
    """A span being recorded (the object yielded by ``Tracer.span``).

    Mutable on purpose: instrumentation deeper in the call stack may
    attach attributes (``set``) or accumulate message-byte tallies
    (``add_bytes``) before the span closes.
    """

    __slots__ = (
        "_tracer", "name", "phase", "mode", "attrs", "depth",
        "self_nested", "enclosing_phase", "_start",
        "messages", "bytes_sent", "bytes_copied",
    )

    def __init__(self, tracer: "Tracer", name: str, phase: str | None,
                 mode: int | None, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.phase = phase
        self.mode = mode
        self.attrs = attrs
        self.depth = 0
        self.self_nested = False
        self.enclosing_phase: str | None = None
        self._start = 0.0
        self.messages = 0
        self.bytes_sent = 0
        self.bytes_copied = 0

    # -- enrichment hooks (called by instrumentation mid-span) ----------
    def set(self, **attrs) -> "_OpenSpan":
        """Attach attributes (e.g. the dispatched collective algorithm)."""
        self.attrs.update(attrs)
        return self

    def add_bytes(self, nbytes: int, copied: int) -> None:
        """Tally one sent message against this span."""
        self.messages += 1
        self.bytes_sent += nbytes
        self.bytes_copied += copied

    # -- context manager protocol ---------------------------------------
    def __enter__(self) -> "_OpenSpan":
        state = self._tracer._state()
        stack = state.stack
        self.depth = len(stack)
        if stack:
            parent = stack[-1]
            if self.mode is None:
                self.mode = parent.mode if parent.mode is not None else (
                    parent.attrs.get("mode"))
            for anc in reversed(stack):
                if anc.phase is not None:
                    self.enclosing_phase = anc.phase
                    break
            if self.phase is not None:
                self.self_nested = any(a.phase == self.phase for a in stack)
        stack.append(self)
        _note_span_open(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter()
        state = self._tracer._state()
        state.stack.pop()
        _note_span_close(
            self.name, end - self._start, self.attrs,
            exc[0] if exc and exc[0] is not None else None,
        )
        if self.messages:
            self.attrs.setdefault("messages", self.messages)
            self.attrs.setdefault("bytes_sent", self.bytes_sent)
            self.attrs.setdefault("bytes_copied", self.bytes_copied)
            self.attrs.setdefault(
                "bytes_moved", self.bytes_sent - self.bytes_copied)
        state.buffer.append(Span(
            name=self.name,
            rank=state.rank,
            start=self._start - self._tracer._epoch,
            duration=end - self._start,
            phase=self.phase,
            mode=self.mode,
            depth=self.depth,
            self_nested=self.self_nested,
            enclosing_phase=self.enclosing_phase,
            attrs=self.attrs,
        ))
        return False


class _ThreadState:
    """Per-thread recording state: rank, span stack, finished-span buffer."""

    __slots__ = ("rank", "stack", "buffer")

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.stack: list[_OpenSpan] = []
        self.buffer: list[Span] = []


class Tracer:
    """Thread-safe per-rank span recorder with a metrics registry.

    One instance is shared by every rank of an SPMD world.  Rank threads
    are bound with :meth:`bind` (done by ``run_spmd``); unbound threads
    record as rank 0, which is what sequential drivers want.

    ``enabled=False`` constructs a dormant tracer: :func:`trace_span`
    treats it as absent and :meth:`span` returns the shared null
    context, so the hot paths pay only a thread-local read.
    """

    def __init__(self, *, enabled: bool = True,
                 metrics: MetricsRegistry | None = None) -> None:
        self.enabled = enabled
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._epoch = time.perf_counter()
        self._lock = threading.Lock()
        self._states: list[_ThreadState] = []
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # Thread binding
    # ------------------------------------------------------------------
    def bind(self, rank: int) -> None:
        """Bind the calling thread to ``rank`` with a fresh span buffer."""
        state = _ThreadState(int(rank))
        self._tls.state = state
        with self._lock:
            self._states.append(state)

    def _state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            state = _ThreadState(0)
            self._tls.state = state
            with self._lock:
                self._states.append(state)
        return state

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, name: str, *, phase: str | None = None,
             mode: int | None = None, **attrs):
        """Context manager recording one span (no-op when disabled)."""
        if not self.enabled:
            span = _recorder_span(name, attrs)
            return NULL_SPAN if span is None else span
        return _OpenSpan(self, name, phase, mode, attrs)

    def current_span(self) -> _OpenSpan | None:
        """The innermost open span on the calling thread, if any."""
        if not self.enabled:
            return None
        stack = self._state().stack
        return stack[-1] if stack else None

    def add_bytes(self, nbytes: int, copied: int) -> None:
        """Tally one sent message against the innermost open span."""
        sp = self.current_span()
        if sp is not None:
            sp.add_bytes(nbytes, copied)

    # ------------------------------------------------------------------
    # Per-thread queries (used by drivers for phase attribution)
    # ------------------------------------------------------------------
    def local_mark(self) -> int:
        """Position in the calling thread's buffer (pair with since=)."""
        return len(self._state().buffer)

    def local_spans(self, since: int = 0) -> list[Span]:
        """Spans finished by the calling thread from position ``since``."""
        return list(self._state().buffer[since:])

    def local_phase_seconds(self, phase: str, since: int = 0) -> float:
        """Calling-thread seconds in ``phase`` since a mark (no nesting
        double-count: self-nested spans are excluded)."""
        return sum(
            s.duration for s in self._state().buffer[since:]
            if s.phase == phase and not s.self_nested
        )

    def absorb_spans(self, spans) -> None:
        """Merge finished spans recorded elsewhere into this tracer.

        The process transport ships each worker's span shard back to
        the master at finalize and folds it in here.  Each span carries
        its own rank, so the shard lands in an anonymous buffer; all
        global queries see the absorbed spans exactly as if they had
        been recorded locally.
        """
        if not spans:
            return
        state = _ThreadState(-1)
        state.buffer = list(spans)
        with self._lock:
            self._states.append(state)

    # ------------------------------------------------------------------
    # Global queries
    # ------------------------------------------------------------------
    @property
    def spans(self) -> list[Span]:
        """All finished spans, ordered by (rank, start)."""
        with self._lock:
            states = list(self._states)
        out: list[Span] = []
        for state in states:
            out.extend(state.buffer)
        out.sort(key=lambda s: (s.rank, s.start))
        return out

    def ranks(self) -> list[int]:
        """Ranks that recorded at least one span, ascending."""
        return sorted({s.rank for s in self.spans})

    def by_phase(self, rank: int | None = None) -> dict[str, float]:
        """Seconds per phase (self-nested spans excluded), optionally
        restricted to one rank.  Note the Comm phase is cross-cutting:
        communication happens *inside* the LQ/Gram/SVD/TTM spans, so
        phase rows are not disjoint and do not sum to wall time."""
        out: dict[str, float] = {}
        for s in self.spans:
            if s.phase is None or s.self_nested:
                continue
            if rank is not None and s.rank != rank:
                continue
            out[s.phase] = out.get(s.phase, 0.0) + s.duration
        return out

    def by_rank_phase(self) -> dict[tuple[int, str], float]:
        """Seconds per (rank, phase), self-nested spans excluded."""
        out: dict[tuple[int, str], float] = {}
        for s in self.spans:
            if s.phase is None or s.self_nested:
                continue
            key = (s.rank, s.phase)
            out[key] = out.get(key, 0.0) + s.duration
        return out

    def total_seconds(self, rank: int) -> float:
        """Top-level (depth-0) span seconds on one rank — busy time."""
        return sum(s.duration for s in self.spans
                   if s.rank == rank and s.depth == 0)

    def span_names(self) -> set[str]:
        """Distinct span names recorded so far."""
        return {s.name for s in self.spans}

    def open_spans(self) -> dict[int, list[str]]:
        """Each rank's currently-open span names, outermost first.

        A diagnostic snapshot for the sanitizer's deadlock watchdog:
        when the world stalls, this is "where every rank is right now".
        Reading other threads' stacks is inherently racy, which is fine
        for a crash report — the stalled ranks are blocked and not
        mutating theirs.
        """
        with self._lock:
            states = list(self._states)
        out: dict[int, list[str]] = {}
        for state in states:
            if state.stack:
                out[state.rank] = [sp.name for sp in state.stack]
        return out


# ----------------------------------------------------------------------
# Active-tracer plumbing (thread-local, one per rank thread)
# ----------------------------------------------------------------------
_active = threading.local()


def activate(tracer: Tracer, rank: int = 0) -> None:
    """Make ``tracer`` the calling thread's active tracer, bound to ``rank``.

    Called by :func:`repro.mpi.run_spmd` on every rank thread; call it
    manually to trace sequential code paths.
    """
    tracer.bind(rank)
    _active.tracer = tracer


def deactivate() -> None:
    """Clear the calling thread's active tracer."""
    _active.tracer = None


def current_tracer() -> Tracer | None:
    """The calling thread's active tracer, or None when tracing is off.

    A disabled tracer reports as None so hot paths need a single check.
    """
    tracer = getattr(_active, "tracer", None)
    if tracer is None or not tracer.enabled:
        return None
    return tracer


def trace_span(name: str, *, phase: str | None = None,
               mode: int | None = None, **attrs):
    """Span context manager on the active tracer; shared no-op otherwise.

    The disabled path costs one thread-local read and returns the
    module-level :data:`NULL_SPAN` singleton — this is the hook all
    instrumented kernels use, so "tracing off" stays free.  When a
    flight recorder is active without a tracer, a lightweight
    :class:`~repro.obs.recorder.RecorderSpan` stands in so kernel
    entry/exit and collective algorithm choices still reach the rings.
    """
    tracer = getattr(_active, "tracer", None)
    if tracer is None or not tracer.enabled:
        span = _recorder_span(name, attrs)
        return NULL_SPAN if span is None else span
    return _OpenSpan(tracer, name, phase, mode, attrs)
