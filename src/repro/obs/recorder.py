"""Per-rank bounded ring-buffer flight recorder.

The flight recorder is the always-on, ~constant-overhead event log that
survives a dying world: every rank appends small structured events
(p2p sends/recvs, collective span open/close with the chosen algorithm,
linalg kernel entry/exit, fault injections, checkpoint saves) into a
bounded ``collections.deque`` ring keyed by rank.  When a run aborts the
launcher snapshots the rings into a postmortem bundle
(:mod:`repro.obs.postmortem`); while a run is alive the rings back the
mid-run telemetry snapshots (:mod:`repro.obs.telemetry`) and the
ProcessTransport heartbeat deltas.

Enable by passing ``run_spmd(..., recorder=FlightRecorder())``.  When no
recorder is active the hot-path hooks cost a single thread-local
attribute lookup.

Design notes
------------
* Events are plain tuples ``(seq, ts, kind, name, detail)`` where
  ``seq`` is a per-rank monotone counter, ``ts`` is wall-clock
  ``time.time()``, ``kind`` is one of the ``KIND_*`` constants, ``name``
  is a short label (span name, fault kind, checkpoint name) and
  ``detail`` is a small JSON-friendly dict.
* Each rank appends only to its own ring from its own thread, so the
  hot path needs no lock (CPython list/deque ops are atomic); a small
  lock guards only ring creation and cross-rank absorption bookkeeping.
* The recorder tracks two stacks per rank: the *open* span stack
  (pushed/popped by span events) and the *error-unwind* stack (span
  names closed by exception propagation, innermost first).  A rank that
  died mid-span leaves a non-empty open stack; a rank whose spans were
  unwound by the failing exception leaves the unwind stack — the
  postmortem uses whichever is non-empty.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "FlightRecorder",
    "RecorderSpan",
    "activate",
    "current_recorder",
    "current_recorder_rank",
    "deactivate",
    "record_event",
]

KIND_SEND = "send"
KIND_RECV = "recv"
KIND_SPAN_OPEN = "span.open"
KIND_SPAN_CLOSE = "span.close"
KIND_FAULT = "fault"
KIND_CHECKPOINT = "checkpoint"

Event = Tuple[int, float, str, Optional[str], Dict[str, Any]]


class _RankLog:
    """Mutable per-rank recorder state (ring + span bookkeeping)."""

    __slots__ = ("ring", "next_seq", "open_stack", "unwound", "last_ts")

    def __init__(self, capacity: int) -> None:
        self.ring: deque = deque(maxlen=capacity)
        self.next_seq = 0
        self.open_stack: List[str] = []
        self.unwound: List[str] = []
        self.last_ts = 0.0


class FlightRecorder:
    """Bounded per-rank event rings with span-stack reconstruction.

    Parameters
    ----------
    capacity:
        Maximum events retained per rank; older events are evicted.
    heartbeat_interval:
        Period (seconds) at which ProcessTransport workers ship deltas
        to the master; also the suggested sampling period for
        ``repro top``.
    postmortem_dir:
        When set, the launcher writes the postmortem bundle JSON into
        this directory on an aborted run (the in-memory bundle is
        always stashed on :attr:`last_postmortem`).
    """

    def __init__(
        self,
        *,
        capacity: int = 512,
        heartbeat_interval: float = 0.5,
        postmortem_dir: Optional[str] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        self.capacity = int(capacity)
        self.heartbeat_interval = float(heartbeat_interval)
        self.postmortem_dir = postmortem_dir
        self.last_postmortem: Optional[Dict[str, Any]] = None
        self.last_postmortem_path: Optional[str] = None
        self._lock = threading.Lock()
        self._logs: Dict[int, _RankLog] = {}

    # -- recording (rank-local hot path) --------------------------------

    def _log(self, rank: int) -> _RankLog:
        log = self._logs.get(rank)
        if log is None:
            with self._lock:
                log = self._logs.get(rank)
                if log is None:
                    log = _RankLog(self.capacity)
                    self._logs[rank] = log
        return log

    def record(
        self,
        rank: int,
        kind: str,
        name: Optional[str] = None,
        **detail: Any,
    ) -> None:
        """Append one event to ``rank``'s ring (no lock on the hot path)."""
        log = self._log(rank)
        seq = log.next_seq
        log.next_seq = seq + 1
        ts = time.time()
        log.last_ts = ts
        log.ring.append((seq, ts, kind, name, detail))
        if kind == KIND_SPAN_OPEN:
            log.open_stack.append(name or "")
        elif kind == KIND_SPAN_CLOSE:
            self._note_close(log, name or "", detail.get("error"))

    @staticmethod
    def _note_close(log: _RankLog, name: str, error: Optional[str]) -> None:
        if log.open_stack and log.open_stack[-1] == name:
            log.open_stack.pop()
        if error is not None:
            # Exception unwind: remember the stack innermost-first.
            log.unwound.append(name)
        elif log.unwound:
            # A clean close after an unwind means the rank recovered.
            log.unwound.clear()

    # -- queries --------------------------------------------------------

    def ranks(self) -> List[int]:
        """Sorted list of ranks that have recorded at least one event."""
        return sorted(self._logs)

    def events(self, rank: Optional[int] = None) -> List[Event]:
        """All retained events for one rank (or all ranks, seq-interleaved)."""
        if rank is not None:
            log = self._logs.get(rank)
            return list(log.ring) if log is not None else []
        out: List[Event] = []
        for r in self.ranks():
            out.extend(self._logs[r].ring)
        return out

    def last_events(self, rank: int, n: int) -> List[Event]:
        """The newest ``n`` retained events for ``rank``, oldest first."""
        log = self._logs.get(rank)
        if log is None:
            return []
        ring = list(log.ring)
        return ring[-n:] if n < len(ring) else ring

    def events_since(self, rank: int, seq: int) -> List[Event]:
        """Events with ``seq`` at or after the given cursor (delta shipping)."""
        log = self._logs.get(rank)
        if log is None:
            return []
        return [e for e in list(log.ring) if e[0] >= seq]

    def cursor(self, rank: int) -> int:
        """Next unassigned sequence number for ``rank``."""
        log = self._logs.get(rank)
        return log.next_seq if log is not None else 0

    def recorded(self, rank: int) -> int:
        """Total events ever recorded for ``rank`` (including evicted)."""
        return self.cursor(rank)

    def evicted(self, rank: int) -> int:
        """How many old events the ring has dropped for ``rank``."""
        log = self._logs.get(rank)
        if log is None or not log.ring:
            return 0
        return log.ring[0][0]

    def last_event_ts(self, rank: int) -> float:
        """Wall-clock time of ``rank``'s newest event (0.0 if none)."""
        log = self._logs.get(rank)
        return log.last_ts if log is not None else 0.0

    def open_spans(self, rank: Optional[int] = None):
        """Open span stack for one rank, or ``{rank: stack}`` for all."""
        if rank is not None:
            log = self._logs.get(rank)
            return list(log.open_stack) if log is not None else []
        return {r: list(self._logs[r].open_stack) for r in self.ranks()}

    def error_unwind(self, rank: int) -> List[str]:
        """Span names closed by exception unwind, innermost first."""
        log = self._logs.get(rank)
        return list(log.unwound) if log is not None else []

    def span_stack(self, rank: int) -> List[str]:
        """Best-effort span stack at death: open spans, else the unwind."""
        open_stack = self.open_spans(rank)
        if open_stack:
            return open_stack
        return list(reversed(self.error_unwind(rank)))

    # -- cross-process merge --------------------------------------------

    def absorb_events(self, rank: int, events: Iterable[Sequence[Any]]) -> None:
        """Merge a shipped event delta for ``rank`` (master side, procs).

        Replays span open/close bookkeeping so ``open_spans`` and
        ``error_unwind`` stay consistent with the worker's view.
        """
        log = self._log(rank)
        with self._lock:
            for ev in events:
                seq, ts, kind, name, detail = ev
                if log.ring and seq <= log.ring[-1][0]:
                    continue  # duplicate delivery (heartbeat vs finalize)
                log.ring.append((seq, ts, kind, name, dict(detail)))
                log.next_seq = max(log.next_seq, seq + 1)
                log.last_ts = max(log.last_ts, ts)
                if kind == KIND_SPAN_OPEN:
                    log.open_stack.append(name or "")
                elif kind == KIND_SPAN_CLOSE:
                    self._note_close(log, name or "", detail.get("error"))

    def clear(self) -> None:
        """Drop every rank's log, resetting the recorder for reuse."""
        with self._lock:
            self._logs.clear()

    # -- export ---------------------------------------------------------

    def to_dict(self, last_n: Optional[int] = None) -> Dict[str, Any]:
        """JSON-friendly dump: per-rank events + span stacks + counters."""
        ranks: Dict[str, Any] = {}
        for r in self.ranks():
            events = self.events(r)
            if last_n is not None:
                events = events[-last_n:]
            ranks[str(r)] = {
                "recorded": self.recorded(r),
                "evicted": self.evicted(r),
                "open_spans": self.open_spans(r),
                "error_unwind": self.error_unwind(r),
                "events": [event_dict(e) for e in events],
            }
        return {"capacity": self.capacity, "ranks": ranks}


def event_dict(event: Sequence[Any]) -> Dict[str, Any]:
    """Convert an event tuple into a JSON-friendly dict."""
    seq, ts, kind, name, detail = event
    out: Dict[str, Any] = {"seq": seq, "ts": ts, "kind": kind}
    if name is not None:
        out["name"] = name
    if detail:
        out["detail"] = {k: _jsonable(v) for k, v in detail.items()}
    return out


def _jsonable(value: Any) -> Any:
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


# -- thread-local activation (mirrors obs.tracer / faults.injector) -----

_ACTIVE = threading.local()


def activate(recorder: FlightRecorder, rank: int) -> None:
    """Bind ``recorder`` to the calling rank thread."""
    _ACTIVE.recorder = recorder
    _ACTIVE.rank = rank


def deactivate() -> None:
    _ACTIVE.recorder = None
    _ACTIVE.rank = None


def current_recorder() -> Optional[FlightRecorder]:
    return getattr(_ACTIVE, "recorder", None)


def current_recorder_rank() -> Optional[int]:
    return getattr(_ACTIVE, "rank", None)


def record_event(kind: str, name: Optional[str] = None, **detail: Any) -> None:
    """Record an event for the calling rank; no-op when no recorder active."""
    recorder = getattr(_ACTIVE, "recorder", None)
    if recorder is not None:
        recorder.record(_ACTIVE.rank, kind, name, **detail)


def note_span_open(name: str) -> None:
    recorder = getattr(_ACTIVE, "recorder", None)
    if recorder is not None:
        recorder.record(_ACTIVE.rank, KIND_SPAN_OPEN, name)


def note_span_close(
    name: str,
    duration: float,
    attrs: Optional[Dict[str, Any]],
    error: Optional[type] = None,
) -> None:
    recorder = getattr(_ACTIVE, "recorder", None)
    if recorder is None:
        return
    detail: Dict[str, Any] = dict(attrs) if attrs else {}
    detail["duration_s"] = round(duration, 6)
    if error is not None:
        detail["error"] = getattr(error, "__name__", str(error))
    recorder.record(_ACTIVE.rank, KIND_SPAN_CLOSE, name, **detail)


class RecorderSpan:
    """Span context manager used when a recorder is active but no tracer.

    Supports the same surface the hot paths use on tracer spans —
    ``set(**attrs)`` and ``add_bytes(...)`` — so ``trace_span`` call
    sites keep working unchanged while the recorder still sees kernel
    entry/exit and collective algorithm choices.
    """

    __slots__ = ("_recorder", "_rank", "name", "attrs", "_start")

    def __init__(
        self,
        recorder: FlightRecorder,
        rank: int,
        name: str,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._recorder = recorder
        self._rank = rank
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self._start = 0.0

    def __enter__(self) -> "RecorderSpan":
        self._start = time.perf_counter()
        self._recorder.record(self._rank, KIND_SPAN_OPEN, self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        detail = dict(self.attrs)
        detail["duration_s"] = round(duration, 6)
        if exc_type is not None:
            detail["error"] = getattr(exc_type, "__name__", str(exc_type))
        self._recorder.record(self._rank, KIND_SPAN_CLOSE, self.name, **detail)
        return False

    def set(self, **attrs: Any) -> "RecorderSpan":
        self.attrs.update(attrs)
        return self

    def add_bytes(self, nbytes: int, copied: bool = True) -> None:
        key = "copied_bytes" if copied else "moved_bytes"
        self.attrs[key] = self.attrs.get(key, 0) + int(nbytes)


def recorder_span(
    name: str, attrs: Optional[Dict[str, Any]] = None
) -> Optional[RecorderSpan]:
    """A RecorderSpan bound to the calling rank, or None when inactive."""
    recorder = getattr(_ACTIVE, "recorder", None)
    if recorder is None:
        return None
    return RecorderSpan(recorder, _ACTIVE.rank, name, attrs)
