"""Observability for the SPMD runtime: span tracing, metrics, exporters.

The pieces, bottom-up:

* :mod:`repro.obs.tracer` — per-rank, nestable, thread-safe span
  recording with ~zero overhead when disabled; every layer of the stack
  (communicator collectives, distributed kernels, LAPACK-backed local
  kernels, the parallel drivers) carries hooks that find the active
  tracer through a thread-local.
* :mod:`repro.obs.metrics` — counters/gauges/histograms fed by the
  communicator (message-size histograms per collective algorithm) and
  by the existing :class:`~repro.mpi.tracing.CommTrace` /
  :class:`~repro.instrument.FlopCounter` tallies.
* :mod:`repro.obs.export` — Chrome trace-event JSON (one track per
  rank, loads in ``chrome://tracing`` / Perfetto), per-rank phase
  tables, and the load-imbalance report.
* :mod:`repro.obs.compare` — diffs measured span totals against the
  α-β-γ performance model so model drift is visible per phase.
* :mod:`repro.obs.recorder` — always-on bounded per-rank flight
  recorder (``run_spmd(recorder=FlightRecorder())``): p2p/collective
  events, kernel entry/exit, faults, checkpoint saves.
* :mod:`repro.obs.telemetry` — :class:`TelemetryHub` mid-run snapshot
  API and the ``repro top`` live view, fed by worker heartbeats on the
  process backend and shared-state sampling on the thread backend.
* :mod:`repro.obs.postmortem` — crash postmortem bundles (last-N events
  per rank, span stacks, in-flight messages, heartbeat ages, fault
  trace) written by the launcher when a world dies; rendered by
  ``repro postmortem``.

Quickstart::

    from repro.obs import Tracer, write_chrome_trace
    tracer = Tracer()
    run_spmd(program, 4, tracer=tracer)
    write_chrome_trace(tracer, "trace.json")

The exporters and the model bridge import :mod:`repro.perf` (and
transitively the whole stack), so they load lazily — importing
``repro.obs`` from low-level modules stays cycle-free.
"""

from __future__ import annotations

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ingest_comm_trace,
    ingest_flop_counter,
)
from .postmortem import (
    POSTMORTEM_SCHEMA,
    build_postmortem,
    load_postmortem,
    render_postmortem,
    write_postmortem,
)
from .recorder import FlightRecorder, current_recorder, record_event
from .telemetry import TelemetryHub
from .tracer import (
    Span,
    Tracer,
    activate,
    current_tracer,
    deactivate,
    trace_span,
)

__all__ = [
    "Span",
    "Tracer",
    "activate",
    "deactivate",
    "current_tracer",
    "trace_span",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ingest_comm_trace",
    "ingest_flop_counter",
    "FlightRecorder",
    "TelemetryHub",
    "current_recorder",
    "record_event",
    "POSTMORTEM_SCHEMA",
    "build_postmortem",
    "load_postmortem",
    "render_postmortem",
    "write_postmortem",
    # lazily loaded (see __getattr__):
    "chrome_trace",
    "write_chrome_trace",
    "phase_table",
    "imbalance_summary",
    "imbalance_table",
    "measured_phase_seconds",
    "model_diff",
    "model_diff_table",
    "modeled_run",
]

_EXPORT = {"chrome_trace", "write_chrome_trace", "phase_table",
           "imbalance_summary", "imbalance_table"}
_COMPARE = {"measured_phase_seconds", "model_diff", "model_diff_table",
            "modeled_run"}


def __getattr__(name: str):
    # PEP 562 lazy loading: keeps `import repro.obs` free of the
    # perf/core dependency chain so the MPI layer can import the tracer
    # hooks without a cycle.
    if name in _EXPORT:
        from . import export

        return getattr(export, name)
    if name in _COMPARE:
        from . import compare

        return getattr(compare, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
