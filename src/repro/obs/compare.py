"""Measured-vs-modeled bridge: diff span totals against the α-β-γ model.

The performance model (:mod:`repro.perf.simulator`) predicts per-phase
seconds for a parallel ST-HOSVD from closed-form cost expressions; the
tracer measures where the wall-clock actually went.  Diffing the two per
phase makes model drift visible — a ratio far from the machine model's
calibration says either the model's efficiency factors are stale or the
implementation stopped following the modeled schedule.

Conventions: the measured side reports the *slowest rank* per phase
(max over ranks), matching the paper's breakdown convention; the
modeled side folds each phase's communication into that phase, so the
measured Comm phase is shown as its own row with no modeled
counterpart (it is already contained in the kernel rows on both sides).
"""

from __future__ import annotations

from ..instrument import PHASE_COMM
from ..util.tables import format_table
from .tracer import Tracer

__all__ = ["measured_phase_seconds", "model_diff", "model_diff_table", "modeled_run"]


def measured_phase_seconds(tracer: Tracer) -> dict[str, float]:
    """Max-over-ranks seconds per phase (the paper's slowest-rank view)."""
    out: dict[str, float] = {}
    for (_rank, phase), secs in tracer.by_rank_phase().items():
        out[phase] = max(out.get(phase, 0.0), secs)
    return out


def modeled_run(shape, ranks, grid_dims, *, method: str = "qr",
                precision="double", mode_order="forward",
                machine: str = "andes"):
    """Convenience wrapper: a :class:`~repro.perf.simulator.ModeledRun`
    for the named machine model ('andes' or 'cascade-lake')."""
    from ..perf import ANDES, CASCADE_LAKE, simulate_sthosvd

    mach = ANDES if machine == "andes" else CASCADE_LAKE
    return simulate_sthosvd(
        shape, ranks, grid_dims, method=method, precision=precision,
        mode_order=mode_order, machine=mach,
    )


def model_diff(tracer: Tracer, modeled) -> list[dict]:
    """Per-phase measured vs modeled seconds and their ratio.

    ``modeled`` is a :class:`~repro.perf.simulator.ModeledRun`.  Returns
    one dict per phase: ``{"phase", "measured", "modeled", "ratio"}``
    with ``ratio = measured / modeled`` (None when the model has no
    prediction for that phase, e.g. the cross-cutting Comm row).
    Includes a ``"total"`` row comparing end-to-end sums.
    """
    measured = measured_phase_seconds(tracer)
    model = modeled.seconds_by_phase()
    rows: list[dict] = []
    comm = measured.pop(PHASE_COMM, None)
    for phase in sorted(set(measured) | set(model)):
        m, p = measured.get(phase, 0.0), model.get(phase, 0.0)
        rows.append({
            "phase": phase,
            "measured": m,
            "modeled": p,
            "ratio": (m / p) if p > 0 else None,
        })
    total_m = sum(measured.values())
    total_p = sum(model.values())
    rows.append({
        "phase": "total",
        "measured": total_m,
        "modeled": total_p,
        "ratio": (total_m / total_p) if total_p > 0 else None,
    })
    if comm is not None:
        rows.append({
            "phase": PHASE_COMM,
            "measured": comm,
            "modeled": None,
            "ratio": None,
        })
    return rows


def model_diff_table(tracer: Tracer, modeled, *, title: str | None = None) -> str:
    """Render :func:`model_diff` as a report table."""
    rows = []
    for r in model_diff(tracer, modeled):
        rows.append([
            r["phase"],
            r["measured"],
            r["modeled"] if r["modeled"] is not None else "-",
            r["ratio"] if r["ratio"] is not None else "-",
        ])
    return format_table(
        ["phase", "measured [s]", "modeled [s]", "meas/model"],
        rows, title=title,
    )
