"""Counters, gauges, and histograms for the observability layer.

A :class:`MetricsRegistry` is a thread-safe, get-or-create namespace of
three instrument kinds:

* :class:`Counter` — monotone accumulator (messages sent, flops);
* :class:`Gauge` — last-write-wins sample (chosen rank, peak bytes);
* :class:`Histogram` — bucketed distribution (per-message sizes, keyed
  per collective algorithm by the communicator hooks).

Every :class:`~repro.obs.tracer.Tracer` owns one registry
(``tracer.metrics``); the communicator feeds per-algorithm message-size
histograms into it while tracing, and the existing tallies —
:class:`~repro.mpi.tracing.CommTrace` and
:class:`~repro.instrument.FlopCounter` — are folded in after a run with
:func:`ingest_comm_trace` / :func:`ingest_flop_counter`, so one registry
snapshot describes a whole execution.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BYTE_BUCKETS",
    "ingest_comm_trace",
    "ingest_flop_counter",
]

# Message-size buckets (bytes): 64 B .. 32 MiB, factor-of-8 spaced —
# wide enough to separate the latency- and bandwidth-bound regimes the
# collective dispatch crossovers care about.
DEFAULT_BYTE_BUCKETS = (64, 512, 4096, 32768, 262144, 2097152, 33554432)


class Counter:
    """Monotone accumulator."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-write-wins sample."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    @property
    def value(self):
        return self._value

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self._value}


class Histogram:
    """Fixed-bucket histogram with count/sum/max tracking.

    ``buckets`` are inclusive upper bounds; observations above the last
    bound land in the implicit overflow bucket.
    """

    __slots__ = ("name", "buckets", "_counts", "_count", "_sum", "_max", "_lock")

    def __init__(self, name: str, buckets=DEFAULT_BYTE_BUCKETS) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def bucket_counts(self) -> dict[str, int]:
        """Counts keyed by upper bound ('le=4096', ..., 'le=+Inf')."""
        with self._lock:
            out = {f"le={int(b) if b.is_integer() else b}": c
                   for b, c in zip(self.buckets, self._counts)}
            out["le=+Inf"] = self._counts[-1]
        return out

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self._count,
            "sum": self._sum,
            "mean": self.mean,
            "max": self.max,
            "buckets": self.bucket_counts(),
        }

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a :meth:`snapshot` dict (possibly a diff) into this one."""
        if not snap.get("count"):
            return
        buckets = snap.get("buckets", {})
        with self._lock:
            for i, b in enumerate(self.buckets):
                label = f"le={int(b) if b.is_integer() else b}"
                self._counts[i] += int(buckets.get(label, 0))
            self._counts[-1] += int(buckets.get("le=+Inf", 0))
            self._count += int(snap["count"])
            self._sum += float(snap["sum"])
            if float(snap.get("max", float("-inf"))) > self._max:
                self._max = float(snap["max"])


class MetricsRegistry:
    """Thread-safe get-or-create namespace of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict = {}

    def _get_or_create(self, name: str, factory, kind):
        with self._lock:
            inst = self._instruments.get(name)
            if inst is None:
                inst = factory()
                self._instruments[name] = inst
            elif not isinstance(inst, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(inst).__name__}, requested {kind.__name__}"
                )
            return inst

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, buckets=DEFAULT_BYTE_BUCKETS) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets), Histogram
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._instruments)

    def get(self, name: str):
        """The instrument registered under ``name`` (None if absent)."""
        with self._lock:
            return self._instruments.get(name)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of every instrument."""
        with self._lock:
            items = list(self._instruments.items())
        return {name: inst.snapshot() for name, inst in sorted(items)}

    @staticmethod
    def diff_snapshots(now: dict, base: dict) -> dict:
        """Instrument-wise difference of two :meth:`to_dict` snapshots.

        Counters and histogram counts/sums subtract; gauges ship their
        current value only when it changed; a histogram's ``max`` cannot
        be subtracted and ships as-is (merging keeps the running max).
        Used by forked workers to report only post-fork activity.
        """
        out = {}
        for name, snap in now.items():
            prev = base.get(name)
            if prev is None or prev.get("type") != snap["type"]:
                out[name] = snap
                continue
            kind = snap["type"]
            if kind == "counter":
                delta = snap["value"] - prev["value"]
                if delta:
                    out[name] = {"type": "counter", "value": delta}
            elif kind == "gauge":
                if snap["value"] != prev["value"]:
                    out[name] = snap
            else:
                dcount = snap["count"] - prev["count"]
                if dcount:
                    dsum = snap["sum"] - prev["sum"]
                    out[name] = {
                        "type": "histogram",
                        "count": dcount,
                        "sum": dsum,
                        "mean": dsum / dcount,
                        "max": snap["max"],
                        "buckets": {
                            k: snap["buckets"].get(k, 0)
                            - prev["buckets"].get(k, 0)
                            for k in snap["buckets"]
                        },
                    }
        return out

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold a :meth:`to_dict` (or :meth:`diff_snapshots`) dict in.

        Counters add, gauges last-write-win, histograms merge bucket by
        bucket (bounds are reconstructed from the ``le=`` labels when
        the instrument does not exist yet).
        """
        for name, snap in snapshot.items():
            kind = snap.get("type")
            if kind == "counter":
                self.counter(name).inc(snap["value"])
            elif kind == "gauge":
                self.gauge(name).set(snap["value"])
            elif kind == "histogram":
                bounds = [
                    float(key[3:])
                    for key in snap.get("buckets", {})
                    if key.startswith("le=") and key != "le=+Inf"
                ]
                hist = self.histogram(name, bounds or DEFAULT_BYTE_BUCKETS)
                hist.merge_snapshot(snap)

    def as_table(self, *, title: str | None = None) -> str:
        """Plain-text summary table (one row per instrument)."""
        from ..util.tables import format_table

        rows = []
        for name, snap in self.to_dict().items():
            if snap["type"] == "histogram":
                rows.append([name, snap["type"], snap["count"],
                             snap["sum"], snap["mean"], snap["max"]])
            else:
                rows.append([name, snap["type"], "", snap["value"], "", ""])
        return format_table(
            ["metric", "type", "count", "value/sum", "mean", "max"],
            rows, title=title,
        )


# ----------------------------------------------------------------------
# Bridges from the existing tallies
# ----------------------------------------------------------------------
def ingest_comm_trace(registry: MetricsRegistry, trace) -> None:
    """Fold a :class:`~repro.mpi.tracing.CommTrace` into counters.

    Creates, per context label, the four send-side counters plus the
    receive-side pair (when the trace recorded receives), summed over
    ranks — the registry view is the world aggregate, while the trace
    itself keeps the per-rank resolution.
    """
    for ctx in sorted(trace.contexts()):
        registry.counter(f"comm.sent_messages[{ctx}]").inc(
            trace.total_messages(ctx))
        registry.counter(f"comm.sent_bytes[{ctx}]").inc(
            trace.total_bytes(ctx))
        registry.counter(f"comm.copied_bytes[{ctx}]").inc(
            trace.total_copied_bytes(ctx))
        registry.counter(f"comm.moved_bytes[{ctx}]").inc(
            trace.total_moved_bytes(ctx))
        recv_msgs = trace.total_recv_messages(ctx)
        if recv_msgs:
            registry.counter(f"comm.recv_messages[{ctx}]").inc(recv_msgs)
            registry.counter(f"comm.recv_bytes[{ctx}]").inc(
                trace.total_recv_bytes(ctx))
    # Reliability counters (run-wide, populated under fault injection).
    for name, total in (
        ("comm.dropped_messages", trace.dropped_messages()),
        ("comm.retried_messages", trace.retried_messages()),
        ("comm.checksum_failures", trace.checksum_failures()),
        ("comm.connect_retries", trace.connect_retries()),
    ):
        if total:
            registry.counter(name).inc(total)


def ingest_flop_counter(registry: MetricsRegistry, flops) -> None:
    """Fold a :class:`~repro.instrument.FlopCounter` into counters."""
    registry.counter("flops.total").inc(flops.total)
    for phase, count in sorted(flops.by_phase.items()):
        registry.counter(f"flops[{phase}]").inc(count)
