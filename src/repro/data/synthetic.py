"""Synthetic matrices and tensors with prescribed singular spectra.

Two constructions:

* :func:`matrix_with_spectrum` — exact: ``A = U diag(s) V^T`` with random
  orthogonal factors (the Fig. 1 experiment's matrix).
* :func:`tensor_with_mode_spectra` — per-mode *shape* control: the tensor
  is an elementwise-scaled Gaussian, ``X(i_0..i_{N-1}) = g * prod_n
  s_n(i_n)``.  Every entry of the mode-``n`` slice ``i_n`` carries the
  factor ``s_n(i_n)``, so the mode-``n`` singular values track the
  prescribed profile multiplicatively (up to a mode-constant scale and a
  mild random spread) simultaneously in *all* modes — which is what the
  accuracy experiments need: spectra whose decaying tails cross the four
  precision noise floors exactly like the application datasets' do.

All generation happens in float64 and is cast to the working precision
last, so a float32 surrogate is the *rounded* version of the same data —
matching how the paper reads double-precision datasets into single.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError, ShapeError
from ..precision import resolve_precision
from ..tensor.dense import DenseTensor
from ..util.rng import default_rng

__all__ = [
    "random_orthonormal",
    "matrix_with_spectrum",
    "tensor_with_mode_spectra",
    "low_rank_tensor",
]


def random_orthonormal(m: int, k: int, rng=None, dtype=np.float64) -> np.ndarray:
    """``m x k`` matrix with orthonormal columns (Haar via Gaussian QR)."""
    if k > m:
        raise ShapeError(f"cannot build {k} orthonormal columns in dimension {m}")
    rng = default_rng(rng)
    A = rng.standard_normal((m, k))
    Q, R = np.linalg.qr(A)
    # Fix signs so the distribution is Haar (and deterministic given A).
    Q = Q * np.sign(np.diag(R))
    return Q.astype(dtype, copy=False)


def matrix_with_spectrum(
    m: int,
    n: int,
    sigma: Sequence[float],
    rng=None,
    *,
    dtype=np.float64,
) -> np.ndarray:
    """Matrix with exactly the given singular values and random vectors."""
    sigma = np.asarray(sigma, dtype=np.float64)
    k = sigma.size
    if k > min(m, n):
        raise ShapeError(f"{k} singular values for a {m}x{n} matrix")
    if np.any(sigma < 0):
        raise ConfigurationError("singular values must be non-negative")
    rng = default_rng(rng)
    U = random_orthonormal(m, k, rng)
    V = random_orthonormal(n, k, rng)
    prec = resolve_precision(dtype)
    A = (U * sigma) @ V.T
    return A.astype(prec.dtype, copy=False)


def tensor_with_mode_spectra(
    shape: Sequence[int],
    spectra: Sequence[Sequence[float]],
    rng=None,
    *,
    dtype=np.float64,
    normalize: bool = True,
) -> DenseTensor:
    """Tensor whose mode-``n`` singular values follow ``spectra[n]``'s shape.

    Parameters
    ----------
    shape:
        Tensor dimensions.
    spectra:
        One positive profile per mode, each of length ``shape[n]``.
        Profiles control the *shape* of each mode's spectrum; the
        absolute scale is common to all modes (and set so the largest
        mode-0 value is ~1 when ``normalize``).
    normalize:
        Scale the tensor so its largest entry-row energy is O(1),
        keeping float32 casts well inside the representable range.
    """
    shape = tuple(int(s) for s in shape)
    if len(spectra) != len(shape):
        raise ConfigurationError(
            f"need one spectrum per mode ({len(shape)}), got {len(spectra)}"
        )
    scales = []
    for n, (profile, dim) in enumerate(zip(spectra, shape)):
        p = np.asarray(profile, dtype=np.float64)
        if p.shape != (dim,):
            raise ShapeError(
                f"spectrum {n} has length {p.size}, mode has dimension {dim}"
            )
        if np.any(p <= 0):
            raise ConfigurationError("spectrum values must be positive")
        scales.append(p)

    rng = default_rng(rng)
    X = rng.standard_normal(shape)
    for n, p in enumerate(scales):
        bshape = [1] * len(shape)
        bshape[n] = shape[n]
        X *= p.reshape(bshape)
    # Rotate every mode by a Haar orthogonal matrix.  This leaves all
    # mode-n singular values exactly unchanged but destroys the
    # elementwise grading of the scaled Gaussian: without it the Gram
    # matrices are graded row/column-wise and eigensolvers recover tiny
    # eigenvalues with full *relative* accuracy, hiding the sqrt(eps)
    # noise floor the experiments are about.  Real datasets' small
    # singular values arise from cancellation, which this reproduces.
    for n, dim in enumerate(shape):
        if dim > 1:
            Q = random_orthonormal(dim, dim, rng)
            X = np.moveaxis(np.tensordot(Q, X, axes=(1, n)), 0, n)
    if normalize:
        # sigma_max of mode 0 is ~ spectra[0][0] * prod_{k>0} ||spectra[k]||;
        # divide that product out so the leading singular values are O(1)
        # and float32 casts stay far from overflow/underflow.
        other = 1.0
        for n in range(1, len(shape)):
            other *= float(np.linalg.norm(scales[n])) ** 2
        if other > 0:
            X /= np.sqrt(other)
    prec = resolve_precision(dtype)
    return DenseTensor(np.asfortranarray(X.astype(prec.dtype)))


def low_rank_tensor(
    shape: Sequence[int],
    ranks: Sequence[int],
    rng=None,
    *,
    noise: float = 0.0,
    dtype=np.float64,
) -> DenseTensor:
    """Exactly low multilinear rank tensor plus optional Gaussian noise.

    Built as ``G x_0 U_0 ... x_{N-1} U_{N-1}`` with a random Gaussian
    core and Haar factors; ``noise`` adds iid entries of that standard
    deviation.  The workhorse for truncation-correctness tests.
    """
    from ..tensor.ttm import ttm

    shape = tuple(int(s) for s in shape)
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != len(shape):
        raise ConfigurationError("need one rank per mode")
    rng = default_rng(rng)
    core = DenseTensor(rng.standard_normal(ranks))
    T = core
    for n, (dim, r) in enumerate(zip(shape, ranks)):
        if not 1 <= r <= dim:
            raise ConfigurationError(f"rank {r} invalid for mode {n} of size {dim}")
        U = random_orthonormal(dim, r, rng)
        T = ttm(T, U, n)
    data = T.data
    if noise:
        data = data + noise * rng.standard_normal(shape)
    prec = resolve_precision(dtype)
    return DenseTensor(np.asfortranarray(data.astype(prec.dtype)))
