"""TuckerMPI-style raw binary tensor I/O.

TuckerMPI reads/writes tensors as flat binary files of IEEE floats in
natural (mode-0-fastest) order, with dimensions supplied out of band.
We mirror that: :func:`save_raw` writes the flat buffer plus a small
JSON sidecar (``<path>.meta.json``) carrying shape and dtype so
:func:`load_raw` can reconstruct without arguments.  Loading a file
written by actual TuckerMPI works by passing ``shape``/``dtype``
explicitly.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

import numpy as np

from ..errors import ShapeError
from ..precision import resolve_precision
from ..tensor.dense import DenseTensor

__all__ = ["save_raw", "load_raw"]


def _sidecar(path: str) -> str:
    return path + ".meta.json"


def save_raw(tensor: DenseTensor, path: str) -> None:
    """Write the tensor's buffer in natural order plus a JSON sidecar."""
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    with open(path, "wb") as f:
        tensor.flat_view().tofile(f)
    meta = {"shape": list(tensor.shape), "dtype": tensor.dtype.name}
    with open(_sidecar(path), "w") as f:
        json.dump(meta, f)


def load_raw(
    path: str,
    shape: Sequence[int] | None = None,
    dtype=None,
) -> DenseTensor:
    """Read a raw tensor file.

    Without ``shape``/``dtype`` the JSON sidecar written by
    :func:`save_raw` is consulted; with them, any TuckerMPI-style flat
    binary file can be read.
    """
    if shape is None or dtype is None:
        sidecar = _sidecar(path)
        if not os.path.exists(sidecar):
            raise ShapeError(
                f"no sidecar {sidecar}; pass shape= and dtype= explicitly"
            )
        with open(sidecar) as f:
            meta = json.load(f)
        shape = meta["shape"] if shape is None else shape
        dtype = meta["dtype"] if dtype is None else dtype
    prec = resolve_precision(dtype)
    flat = np.fromfile(path, dtype=prec.dtype)
    return DenseTensor.from_flat(flat, tuple(int(s) for s in shape))
