"""Out-of-core tensor access: stream unfolding chunks from a raw file.

TuckerMPI's driving use case is compressing simulation output too large
for memory.  The single-pass structure of the paper's kernels — Gram
accumulates one syrk per column block, TensorLQ annihilates one block
per ``tpqrt`` — means neither ever needs the whole tensor resident: they
only need the unfolding's columns *in order, once*.  This module
provides exactly that: :class:`OutOfCoreTensor` wraps a raw natural-order
file (the format of :mod:`repro.data.io`) behind a memory-mapped view
and yields bounded-size column chunks of any mode's unfolding.

Chunking covers both regimes:

* early/middle modes: many small column blocks — chunks are runs of
  whole blocks (contiguous on disk);
* the last mode: one enormous row-major block — chunks are column
  ranges within it (strided reads served by the page cache).
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from ..errors import ShapeError
from ..precision import resolve_precision
from ..tensor import layout
from ..tensor.dense import DenseTensor

__all__ = ["OutOfCoreTensor", "DEFAULT_CHUNK_ELEMENTS"]

DEFAULT_CHUNK_ELEMENTS = 1 << 22  # 4M elements (~32 MB float64) per chunk


class OutOfCoreTensor:
    """Read-only tensor backed by a raw natural-order binary file.

    ``dtype`` is the precision *stored in the file*; ``work_dtype``
    (default: same) is the precision chunks are delivered in — pass
    ``work_dtype="single"`` to stream a double-precision dump through a
    single-precision pipeline, exactly how the paper's single-precision
    runs consume the double-precision application datasets.
    """

    def __init__(self, path: str, shape, dtype=np.float64, *, work_dtype=None) -> None:
        self.path = path
        self.shape = tuple(int(s) for s in shape)
        prec = resolve_precision(dtype)
        self.file_dtype = prec.dtype
        self.dtype = (
            resolve_precision(work_dtype).dtype if work_dtype is not None else prec.dtype
        )
        expected = layout.prod_all(self.shape) * self.file_dtype.itemsize
        actual = os.path.getsize(path)
        if actual != expected:
            raise ShapeError(
                f"file {path} holds {actual} bytes; shape {self.shape} at "
                f"{self.file_dtype} needs {expected}"
            )

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return layout.prod_all(self.shape)

    def _memmap(self) -> np.memmap:
        return np.memmap(self.path, dtype=self.file_dtype, mode="r")

    def _cast(self, arr: np.ndarray) -> np.ndarray:
        return arr.astype(self.dtype, copy=False)

    @classmethod
    def from_dense(cls, tensor: DenseTensor, path: str) -> "OutOfCoreTensor":
        """Spill a dense tensor to a raw file (natural order)."""
        with open(path, "wb") as f:
            tensor.flat_view().tofile(f)
        return cls(path, tensor.shape, tensor.dtype)

    def to_dense(self) -> DenseTensor:
        """Load the whole tensor into memory (use only when it fits)."""
        flat = np.fromfile(self.path, dtype=self.file_dtype)
        return DenseTensor.from_flat(self._cast(flat), self.shape)

    # ------------------------------------------------------------------
    def norm_squared(self) -> float:
        """Squared Frobenius norm, accumulated chunkwise in float64."""
        mm = self._memmap()
        total = 0.0
        step = DEFAULT_CHUNK_ELEMENTS
        for start in range(0, mm.size, step):
            chunk = np.asarray(mm[start : start + step], dtype=np.float64)
            total += float(chunk @ chunk)
        return total

    def norm(self) -> float:
        """Frobenius norm (chunked float64 accumulation)."""
        return float(np.sqrt(self.norm_squared()))

    # ------------------------------------------------------------------
    def iter_unfolding_chunks(
        self, n: int, max_elements: int = DEFAULT_CHUNK_ELEMENTS
    ) -> Iterator[np.ndarray]:
        """Yield the mode-``n`` unfolding as ``(I_n, k)`` column chunks.

        Chunks arrive in global column order; each holds at most
        ``max_elements`` entries (at least one column).  Every yielded
        array is a fresh in-memory copy safe to mutate.
        """
        if not 0 <= n < self.ndim:
            raise ShapeError(f"mode {n} out of range")
        rows, bcols = layout.block_shape(self.shape, n)
        nblocks = layout.num_column_blocks(self.shape, n)
        mm3 = self._memmap().reshape(nblocks, rows, bcols)
        cols_per_chunk = max(max_elements // max(rows, 1), 1)
        if bcols <= cols_per_chunk:
            blocks_per_chunk = max(cols_per_chunk // bcols, 1)
            for j0 in range(0, nblocks, blocks_per_chunk):
                j1 = min(j0 + blocks_per_chunk, nblocks)
                run = np.asarray(mm3[j0:j1])  # (k, rows, bcols), contiguous
                yield self._cast(
                    np.ascontiguousarray(run.transpose(1, 0, 2).reshape(rows, -1))
                )
        else:
            for j in range(nblocks):
                for c0 in range(0, bcols, cols_per_chunk):
                    c1 = min(c0 + cols_per_chunk, bcols)
                    yield self._cast(np.array(mm3[j, :, c0:c1]))

    # ------------------------------------------------------------------
    def ttm_truncate_to_file(
        self,
        U: np.ndarray,
        n: int,
        out_path: str,
        max_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> "OutOfCoreTensor":
        """Stream ``Y = X x_n U^T`` to a new raw file (one read, one write).

        ``U`` is ``I_n x R_n``; the output file holds the truncated
        tensor in natural order.  Block structure is preserved, so the
        write is sequential when reads are (early modes) and strided
        through an output memmap otherwise (last mode).
        """
        U = np.asarray(U)
        rows = self.shape[n]
        if U.ndim != 2 or U.shape[0] != rows:
            raise ShapeError(f"factor must be ({rows} x R), got {U.shape}")
        op = np.ascontiguousarray(U.T.astype(self.dtype, copy=False))
        r_n = U.shape[1]
        out_shape = self.shape[:n] + (r_n,) + self.shape[n + 1 :]
        _, bcols = layout.block_shape(self.shape, n)
        nblocks = layout.num_column_blocks(self.shape, n)

        out_mm = np.memmap(
            out_path, dtype=self.dtype, mode="w+",
            shape=(nblocks, r_n, bcols),
        )
        in_mm = self._memmap().reshape(nblocks, rows, bcols)
        cols_per_chunk = max(max_elements // max(rows, 1), 1)
        if bcols <= cols_per_chunk:
            blocks_per_chunk = max(cols_per_chunk // bcols, 1)
            for j0 in range(0, nblocks, blocks_per_chunk):
                j1 = min(j0 + blocks_per_chunk, nblocks)
                run = self._cast(np.asarray(in_mm[j0:j1]))
                np.matmul(op, run, out=out_mm[j0:j1])
        else:
            for j in range(nblocks):
                for c0 in range(0, bcols, cols_per_chunk):
                    c1 = min(c0 + cols_per_chunk, bcols)
                    out_mm[j, :, c0:c1] = op @ self._cast(np.asarray(in_mm[j, :, c0:c1]))
        out_mm.flush()
        del out_mm
        return OutOfCoreTensor(out_path, out_shape, self.dtype)
