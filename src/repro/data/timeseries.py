"""Time-series dataset handling: per-step files forming the last mode.

Scientific simulations dump one file per time step; the tensor the paper
compresses is their concatenation along the final mode (HCCI: 627 time
steps, SP: 100, video: 2200 frames).  These helpers write and assemble
such collections in the raw natural-order format, including a streaming
assembly path that never holds more than one step in memory — natural-
order storage makes the time mode slowest, so concatenation on disk is
literal file concatenation.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

import numpy as np

from ..errors import ShapeError
from ..precision import resolve_precision
from ..tensor import layout
from ..tensor.dense import DenseTensor
from .outofcore import OutOfCoreTensor

__all__ = ["save_timesteps", "assemble_timesteps", "list_timesteps"]


def _step_path(directory: str, index: int) -> str:
    return os.path.join(directory, f"step{index:06d}.bin")


def save_timesteps(
    tensor: DenseTensor,
    directory: str,
    *,
    time_mode: int | None = None,
) -> list[str]:
    """Split a tensor into per-step raw files along its last mode.

    Returns the written paths.  ``time_mode`` defaults to the last mode
    and currently must be it (natural order makes only the last mode's
    slabs contiguous).
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    last = tensor.ndim - 1
    if time_mode is None:
        time_mode = last
    if time_mode != last:
        raise ShapeError("time steps must occupy the last (slowest) mode")
    os.makedirs(directory, exist_ok=True)
    steps = tensor.shape[last]
    slab = layout.prod_before(tensor.shape, last)
    flat = tensor.flat_view()
    paths = []
    for t in range(steps):
        path = _step_path(directory, t)
        with open(path, "wb") as f:
            flat[t * slab : (t + 1) * slab].tofile(f)
        paths.append(path)
    meta = {
        "step_shape": list(tensor.shape[:last]),
        "steps": steps,
        "dtype": tensor.dtype.name,
    }
    with open(os.path.join(directory, "steps.json"), "w") as f:
        json.dump(meta, f)
    return paths


def list_timesteps(directory: str) -> tuple[list[str], tuple[int, ...], np.dtype]:
    """Paths (sorted), per-step shape, and dtype of a step directory."""
    with open(os.path.join(directory, "steps.json")) as f:
        meta = json.load(f)
    paths = [_step_path(directory, t) for t in range(meta["steps"])]
    for p in paths:
        if not os.path.exists(p):
            raise ShapeError(f"missing time step file {p}")
    prec = resolve_precision(meta["dtype"])
    return paths, tuple(meta["step_shape"]), prec.dtype


def assemble_timesteps(
    directory: str,
    out_path: str,
    *,
    steps: Sequence[int] | None = None,
) -> OutOfCoreTensor:
    """Concatenate step files into one raw tensor file, streaming.

    ``steps`` selects a subset (e.g. the paper uses the first 100 of
    SP's 400 available steps); default is all, in order.  Each step is
    copied through a bounded buffer — the assembled tensor never exists
    in memory.
    """
    paths, step_shape, dtype = list_timesteps(directory)
    if steps is not None:
        paths = [paths[i] for i in steps]
    if not paths:
        raise ShapeError("no time steps selected")
    step_elements = int(np.prod(step_shape))
    expected_bytes = step_elements * np.dtype(dtype).itemsize
    with open(out_path, "wb") as out:
        for p in paths:
            if os.path.getsize(p) != expected_bytes:
                raise ShapeError(
                    f"{p} has {os.path.getsize(p)} bytes, expected {expected_bytes}"
                )
            with open(p, "rb") as f:
                while True:
                    buf = f.read(1 << 24)
                    if not buf:
                        break
                    out.write(buf)
    full_shape = tuple(step_shape) + (len(paths),)
    return OutOfCoreTensor(out_path, full_shape, dtype)
