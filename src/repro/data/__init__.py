"""Dataset generators: prescribed-spectrum synthetics, application surrogates, I/O."""

from .spectra import geometric_spectrum, plateau_spectrum, step_spectrum
from .synthetic import (
    random_orthonormal,
    matrix_with_spectrum,
    tensor_with_mode_spectra,
    low_rank_tensor,
)
from .applications import hcci_surrogate, sp_surrogate, video_surrogate, PAPER_SHAPES
from .io import save_raw, load_raw
from .outofcore import OutOfCoreTensor
from .timeseries import save_timesteps, assemble_timesteps, list_timesteps

__all__ = [
    "geometric_spectrum",
    "plateau_spectrum",
    "step_spectrum",
    "random_orthonormal",
    "matrix_with_spectrum",
    "tensor_with_mode_spectra",
    "low_rank_tensor",
    "hcci_surrogate",
    "sp_surrogate",
    "video_surrogate",
    "PAPER_SHAPES",
    "save_raw",
    "load_raw",
    "OutOfCoreTensor",
    "save_timesteps",
    "assemble_timesteps",
    "list_timesteps",
]
