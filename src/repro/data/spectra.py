"""Singular-spectrum shapes used by the paper's experiments.

Figures 5-7 characterize the application datasets entirely through
their per-mode singular value profiles: the combustion datasets (HCCI,
SP) decay geometrically over ~10 orders of magnitude, while the video
dataset drops ~2 orders quickly and then flattens ("offering little
compressibility at tight error tolerances").  These generators produce
those shapes for the synthetic surrogates.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["geometric_spectrum", "plateau_spectrum", "step_spectrum"]


def geometric_spectrum(n: int, first: float = 1.0, last: float = 1e-18) -> np.ndarray:
    """``n`` values decaying geometrically from ``first`` to ``last``.

    The Fig. 1 matrix uses exactly this: 80 values from 1 to 1e-18.
    """
    if n <= 0:
        raise ConfigurationError("spectrum length must be positive")
    if first <= 0 or last <= 0:
        raise ConfigurationError("spectrum endpoints must be positive")
    if n == 1:
        return np.array([first])
    return np.geomspace(first, last, n)


def plateau_spectrum(
    n: int,
    first: float = 1.0,
    knee_value: float = 1e-2,
    knee_index: int | None = None,
    last: float | None = None,
) -> np.ndarray:
    """Fast geometric drop to ``knee_value``, then a slow tail (video-like).

    ``knee_index`` defaults to ``n // 8``; the tail decays geometrically
    but only by one further order of magnitude by default
    (``last = knee_value / 10``), mimicking Fig. 7.
    """
    if n <= 0:
        raise ConfigurationError("spectrum length must be positive")
    if knee_index is None:
        knee_index = max(n // 8, 1)
    knee_index = min(knee_index, n - 1) if n > 1 else 0
    if last is None:
        last = knee_value / 10.0
    if n == 1:
        return np.array([first])
    head = np.geomspace(first, knee_value, knee_index + 1)
    tail = np.geomspace(knee_value, last, n - knee_index)
    return np.concatenate([head, tail[1:]])


def step_spectrum(n: int, rank: int, big: float = 1.0, small: float = 0.0) -> np.ndarray:
    """Exact-rank spectrum: ``rank`` values at ``big`` then ``small``.

    ``small = 0`` gives an exactly low-rank tensor — useful for tests
    where the truncation must recover the rank perfectly.
    """
    if not 0 < rank <= n:
        raise ConfigurationError(f"rank {rank} invalid for spectrum of length {n}")
    out = np.full(n, float(small))
    out[:rank] = big
    return out
