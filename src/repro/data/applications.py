"""Laptop-scale surrogates for the paper's application datasets (Sec. 4.5).

The original data is not redistributable (HCCI and SP are DOE combustion
simulations; the video tensor is 40 GB), so each surrogate is a
synthetic tensor whose **per-mode singular spectra reproduce the shapes
of Figs. 5-7** at reduced dimensions:

* **HCCI** (627 x 627 x 33 x 627): spatial/time modes decay geometrically
  over ~10-11 orders of magnitude; the 33-variable mode decays faster
  per index but bottoms out similarly.
* **SP** (500 x 500 x 500 x 11 x 100): similar, more compressible (the
  spectra fall faster at the head).
* **Video** (1080 x 1920 x 3 x 2200): three modes drop ~2 orders quickly
  then flatten; the 3-channel mode is essentially full rank.

What the substitution preserves: every qualitative claim in Tables 2-3
and Figs. 5-10 is a function of where each mode's spectrum sits relative
to the four precision noise floors (sqrt(eps_single) ~ 3e-4,
eps_single ~ 1e-7, sqrt(eps_double) ~ 1e-8, eps_double ~ 2e-16) — the
surrogates span the same ranges, so the same methods succeed and fail at
the same tolerances.  Absolute compression ratios differ because the
surrogate dimensions are smaller.
"""

from __future__ import annotations

import numpy as np

from ..tensor.dense import DenseTensor
from .spectra import geometric_spectrum, plateau_spectrum
from .synthetic import tensor_with_mode_spectra

__all__ = [
    "hcci_surrogate",
    "sp_surrogate",
    "video_surrogate",
    "PAPER_SHAPES",
]

# The real datasets' dimensions, used by the performance model to
# regenerate the paper's time breakdowns at full scale.
PAPER_SHAPES = {
    "hcci": (627, 627, 33, 627),
    "sp": (500, 500, 500, 11, 100),
    "video": (1080, 1920, 3, 2200),
}


def _scaled(paper_shape: tuple[int, ...], scale: float, floor: int = 3) -> tuple[int, ...]:
    """Paper dimensions scaled down proportionally (min ``floor`` per mode)."""
    return tuple(max(int(round(s * scale)), floor) for s in paper_shape)


def hcci_surrogate(
    shape: tuple[int, ...] | None = (64, 64, 33, 64),
    seed: int = 2021,
    *,
    scale: float | None = None,
    dtype=np.float64,
) -> DenseTensor:
    """HCCI-like combustion tensor (spectra per Fig. 5).

    Spatial and time modes span 1 -> 1e-11; the variables mode decays to
    ~1e-9.  The default keeps the real 33-variable mode size.  Pass
    ``scale=`` to derive dimensions proportionally from the paper's
    627x627x33x627 (e.g. ``scale=0.1`` -> 63x63x3x63).
    """
    if scale is not None:
        shape = _scaled(PAPER_SHAPES["hcci"], scale)
    spectra = [
        geometric_spectrum(shape[0], 1.0, 1e-11),
        geometric_spectrum(shape[1], 1.0, 1e-11),
        geometric_spectrum(shape[2], 1.0, 1e-9),
        geometric_spectrum(shape[3], 1.0, 1e-10),
    ]
    return tensor_with_mode_spectra(shape, spectra, rng=seed, dtype=dtype)


def sp_surrogate(
    shape: tuple[int, ...] | None = (40, 40, 40, 11, 24),
    seed: int = 2022,
    *,
    scale: float | None = None,
    dtype=np.float64,
) -> DenseTensor:
    """Stats-Planar-like combustion tensor (spectra per Fig. 6).

    More compressible than HCCI: the spatial spectra fall off steeply at
    the head (most energy in a few leading components) before the long
    geometric tail.  ``scale=`` derives dimensions from the paper's
    500x500x500x11x100.
    """
    if scale is not None:
        shape = _scaled(PAPER_SHAPES["sp"], scale)
    def steep(n: int, last: float) -> np.ndarray:
        # Two-regime decay: 3 orders over the first ~15% of indices,
        # then geometric to `last` — concentrates energy up front like SP.
        knee = max(n // 7, 1)
        head = np.geomspace(1.0, 1e-3, knee + 1)
        tail = np.geomspace(1e-3, last, max(n - knee, 1))
        return np.concatenate([head, tail[1:]]) if n > 1 else head[:1]

    spectra = [
        steep(shape[0], 1e-12),
        steep(shape[1], 1e-12),
        steep(shape[2], 1e-12),
        geometric_spectrum(shape[3], 1.0, 1e-8),
        steep(shape[4], 1e-11),
    ]
    return tensor_with_mode_spectra(shape, spectra, rng=seed, dtype=dtype)


def video_surrogate(
    shape: tuple[int, ...] | None = (54, 96, 3, 110),
    seed: int = 2023,
    *,
    scale: float | None = None,
    dtype=np.float64,
) -> DenseTensor:
    """Video-like tensor (spectra per Fig. 7).

    Height/width/frame modes drop ~2 orders then plateau; the 3-channel
    mode stays O(1) across its whole (tiny) spectrum.  Offers good
    compression at loose tolerances only.  ``scale=`` derives dimensions
    from the paper's 1080x1920x3x2200 (channel mode pinned to 3).
    """
    if scale is not None:
        shape = _scaled(PAPER_SHAPES["video"], scale)
        shape = (shape[0], shape[1], 3, shape[3])
    spectra = [
        plateau_spectrum(shape[0], 1.0, knee_value=1e-2, knee_index=max(shape[0] // 10, 2)),
        plateau_spectrum(shape[1], 1.0, knee_value=1e-2, knee_index=max(shape[1] // 10, 2)),
        np.array([1.0, 0.5, 0.3][: shape[2]]),
        plateau_spectrum(shape[3], 1.0, knee_value=1e-2, knee_index=max(shape[3] // 10, 2)),
    ]
    return tensor_with_mode_spectra(shape, spectra, rng=seed, dtype=dtype)
