"""Automatic method/precision selection — the paper's Sec. 5 as an API.

The paper's conclusion is a decision table: for a target tolerance,
pick the cheapest (method, precision) whose accuracy floor clears it
with margin.  :func:`choose_variant` encodes that table from the
Theorem-1/2 floors (so it is derived, not hard-coded), and
:func:`compress` is the batteries-included entry point: give it a
tensor and a tolerance, it runs ST-HOSVD with the right variant.

Variants are ranked by modeled cost: Gram-single < QR-single <
Gram-double < QR-double (half-precision halves both flops-time and
bandwidth; Gram halves the flops of QR).  A safety factor keeps the
selection away from each floor — the paper's own experiments show
behaviour degrading within ~1 decade of the theoretical boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..linalg.accuracy import min_reachable_tolerance
from ..precision import Precision, SINGLE, DOUBLE
from ..tensor.dense import DenseTensor
from .sthosvd import sthosvd, SthosvdResult

__all__ = ["VariantChoice", "choose_variant", "compress"]

# Cheapest first: relative cost ~ flops multiplier / precision speedup.
_VARIANTS_BY_COST = [
    ("gram", SINGLE),
    ("qr", SINGLE),
    ("gram", DOUBLE),
    ("qr", DOUBLE),
]


@dataclass(frozen=True)
class VariantChoice:
    """A selected (method, precision) with its safety margin."""

    method: str
    precision: Precision
    floor: float
    margin: float

    @property
    def label(self) -> str:
        return f"{self.method}-{self.precision}"


def choose_variant(tol: float, *, safety: float = 10.0) -> VariantChoice:
    """Cheapest variant whose accuracy floor clears ``tol`` by ``safety``.

    ``safety=10`` demands one decade of headroom (the paper's Tables 2-3
    show variants already failing at tolerances within a decade of their
    floors).  Raises if nothing qualifies — i.e. ``tol`` below
    ``eps_double`` territory, which no floating-point variant reaches.
    """
    if tol <= 0:
        raise ConfigurationError(f"tolerance must be positive, got {tol}")
    if safety < 1:
        raise ConfigurationError("safety factor must be >= 1")
    for method, prec in _VARIANTS_BY_COST:
        floor = min_reachable_tolerance(method, prec)
        if floor * safety <= tol:
            return VariantChoice(
                method=method, precision=prec, floor=floor, margin=tol / floor
            )
    raise ConfigurationError(
        f"no variant can honour tolerance {tol:.1e}: even QR-double's floor "
        f"is {min_reachable_tolerance('qr', DOUBLE):.1e}"
    )


def compress(
    tensor: DenseTensor | np.ndarray,
    tol: float,
    *,
    safety: float = 10.0,
    mode_order="forward",
    backend: str = "lapack",
) -> SthosvdResult:
    """Tolerance-driven compression with automatic variant selection.

    Equivalent to calling :func:`~repro.core.sthosvd.sthosvd` with the
    method/precision that :func:`choose_variant` picks for ``tol``.
    The returned result's ``method``/``precision`` record the choice.

    >>> result = compress(X, tol=1e-4)     # selects QR single
    >>> result.method, str(result.precision)
    ('qr', 'single')
    """
    choice = choose_variant(tol, safety=safety)
    return sthosvd(
        tensor,
        tol=tol,
        method=choice.method,
        precision=choice.precision,
        mode_order=mode_order,
        backend=backend,
    )
