"""Distributed classic (truncated) HOSVD.

Each factor is computed from the *original* distributed tensor (no
sequential truncation); the core is formed by the chain of parallel TTM
truncations at the end.  More expensive than parallel ST-HOSVD — every
per-mode reduction runs over the full tensor — but ordering-independent,
which makes it the natural baseline for evaluating the sequencing
decision at scale, and some users require its factor set (all factors
consistent with the same, untruncated tensor).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import FlopCounter, PhaseTimer, PHASE_LQ, PHASE_GRAM, PHASE_TTM
from ..precision import resolve_precision
from ..dist.dtensor import DistributedTensor
from ..dist.svd import par_tensor_gram_svd, par_tensor_qr_svd
from ..dist.ttm import par_ttm_truncate
from .sthosvd_parallel import ParallelSthosvdResult
from .truncation import choose_rank, error_budget_per_mode

__all__ = ["hosvd_parallel"]


def hosvd_parallel(
    dt: DistributedTensor,
    *,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    method: str = "qr",
    backend: str = "lapack",
) -> ParallelSthosvdResult:
    """Distributed truncated classic HOSVD (collective).

    Arguments as :func:`repro.core.sthosvd_parallel.sthosvd_parallel`
    minus ``mode_order`` (irrelevant without sequential truncation).
    """
    if method not in ("qr", "gram"):
        raise ConfigurationError(
            f"parallel HOSVD supports methods ('qr', 'gram'), got {method!r}"
        )
    if tol is not None and ranks is not None:
        raise ConfigurationError("pass either tol or ranks, not both")
    ndim = dt.ndim
    if ranks is not None:
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != ndim:
            raise ConfigurationError(f"need {ndim} ranks, got {len(ranks)}")
        for n, (r, i) in enumerate(zip(ranks, dt.global_shape)):
            if not 1 <= r <= i:
                raise ConfigurationError(f"rank {r} invalid for mode {n} of size {i}")

    counter = FlopCounter()
    timer = PhaseTimer()
    norm_sq = dt.norm_squared()
    norm_x = float(np.sqrt(norm_sq))
    budget = error_budget_per_mode(norm_sq, tol, ndim) if tol is not None else None

    factors: list = [None] * ndim
    sigmas: dict[int, np.ndarray] = {}
    for n in range(ndim):
        if method == "qr":
            with timer.phase(PHASE_LQ, n):
                U, sigma = par_tensor_qr_svd(dt, n, backend=backend, counter=counter)
        else:
            with timer.phase(PHASE_GRAM, n):
                U, sigma = par_tensor_gram_svd(dt, n, counter=counter)
        sigmas[n] = sigma
        if budget is not None:
            r = choose_rank(sigma, budget)
        elif ranks is not None:
            r = ranks[n]
        else:
            r = min(dt.global_shape[n], U.shape[1])
        factors[n] = np.ascontiguousarray(U[:, :r])

    core = dt
    for n in range(ndim):
        with timer.phase(PHASE_TTM, n):
            core = par_ttm_truncate(core, factors[n], n, counter=counter)

    return ParallelSthosvdResult(
        core=core,
        factors=tuple(factors),
        sigmas=sigmas,
        mode_order=tuple(range(ndim)),
        method=method,
        precision=resolve_precision(dt.dtype),
        norm_x=norm_x,
        flops=counter,
        timer=timer,
    )
