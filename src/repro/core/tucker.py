"""Tucker-format tensor: core plus factor matrices (Sec. 2.2).

A rank-``(R_0, ..., R_{N-1})`` Tucker approximation of an
``I_0 x ... x I_{N-1}`` tensor stores a small core ``G`` and one
``I_n x R_n`` factor with orthonormal columns per mode:

    X ≈ G x_0 U_0 x_1 U_1 ... x_{N-1} U_{N-1}
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ShapeError
from ..tensor.dense import DenseTensor
from ..tensor.ttm import multi_ttm

__all__ = ["TuckerTensor"]


@dataclass(frozen=True)
class TuckerTensor:
    """Immutable Tucker-format container.

    Attributes
    ----------
    core:
        The ``R_0 x ... x R_{N-1}`` core tensor ``G``.
    factors:
        Per-mode ``I_n x R_n`` factor matrices ``U_n``.
    """

    core: DenseTensor
    factors: tuple[np.ndarray, ...]

    def __post_init__(self) -> None:
        if len(self.factors) != self.core.ndim:
            raise ShapeError(
                f"{self.core.ndim}-mode core needs {self.core.ndim} factors, "
                f"got {len(self.factors)}"
            )
        for n, (U, r) in enumerate(zip(self.factors, self.core.shape)):
            if U.ndim != 2 or U.shape[1] != r:
                raise ShapeError(
                    f"factor {n} must have {r} columns to match the core, "
                    f"got shape {U.shape}"
                )

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return self.core.ndim

    @property
    def shape(self) -> tuple[int, ...]:
        """Dimensions of the full (reconstructed) tensor."""
        return tuple(U.shape[0] for U in self.factors)

    @property
    def ranks(self) -> tuple[int, ...]:
        """Multilinear rank = core dimensions."""
        return self.core.shape

    @property
    def dtype(self) -> np.dtype:
        return self.core.dtype

    def n_parameters(self) -> int:
        """Stored parameter count: core plus all factor entries."""
        return self.core.size + sum(int(U.size) for U in self.factors)

    def compression_ratio(self) -> float:
        """Original element count over stored parameter count."""
        full = 1
        for s in self.shape:
            full *= s
        return full / self.n_parameters()

    # ------------------------------------------------------------------
    def reconstruct(self) -> DenseTensor:
        """Dense reconstruction ``G x_0 U_0 ... x_{N-1} U_{N-1}``."""
        return multi_ttm(self.core, list(self.factors))

    def rel_error(self, reference: DenseTensor | np.ndarray) -> float:
        """Normwise relative error ``||X - X_hat|| / ||X||`` (float64 accumulation)."""
        if not isinstance(reference, DenseTensor):
            reference = DenseTensor(reference)
        if reference.shape != self.shape:
            raise ShapeError(
                f"reference shape {reference.shape} does not match {self.shape}"
            )
        approx = self.reconstruct()
        diff = reference.data.astype(np.float64) - approx.data.astype(np.float64)
        denom = reference.norm()
        if denom == 0:
            return 0.0
        return float(np.linalg.norm(diff.reshape(-1)) / denom)

    def reconstruct_slice(self, slices) -> DenseTensor:
        """Reconstruct only a subtensor, without expanding the whole tensor.

        ``slices`` is one slice (or integer array) per mode, applied to
        the *rows* of each factor before the multi-TTM — so the work and
        memory scale with the requested region, not the full shape.  This
        is how compressed archives are queried in practice (e.g. one
        time step of a simulation, one video frame).

        >>> frame = tk.reconstruct_slice((slice(None), slice(None), 0))
        """
        if len(slices) != self.ndim:
            raise ShapeError(f"need one slice per mode ({self.ndim})")
        sliced_factors = []
        for n, (U, s) in enumerate(zip(self.factors, slices)):
            rows = U[s, :]
            if rows.ndim == 1:  # integer index: keep the mode, length 1
                rows = rows[None, :]
            sliced_factors.append(np.ascontiguousarray(rows))
        return multi_ttm(self.core, sliced_factors)

    def astype(self, dtype) -> "TuckerTensor":
        """Convert core and factors to another working precision."""
        from ..precision import resolve_precision

        prec = resolve_precision(dtype)
        return TuckerTensor(
            core=self.core.astype(prec.dtype),
            factors=tuple(U.astype(prec.dtype) for U in self.factors),
        )
