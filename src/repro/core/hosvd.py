"""Classic (truncated) HOSVD — the non-sequential baseline [19].

Where ST-HOSVD truncates each mode before moving to the next, classic
HOSVD computes every factor matrix from the *original* tensor and forms
the core in one multi-TTM at the end.  It does more work (every mode
sees the full tensor) and satisfies the same ``sqrt(N)``-quasi-optimality
bound; it is included as the natural baseline for ST-HOSVD's sequencing
decision and because TuckerMPI-family libraries ship both.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import FlopCounter, PhaseTimer, PHASE_TTM
from ..precision import resolve_precision
from ..tensor.dense import DenseTensor
from ..tensor.ttm import ttm, ttm_flops
from .sthosvd import SthosvdResult, _mode_svd, METHODS
from .truncation import choose_rank, error_budget_per_mode
from .tucker import TuckerTensor

__all__ = ["hosvd"]


def hosvd(
    tensor: DenseTensor | np.ndarray,
    *,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    method: str = "qr",
    precision=None,
    backend: str = "lapack",
) -> SthosvdResult:
    """Truncated classic HOSVD (all factors from the original tensor).

    Accepts the same arguments as :func:`repro.core.sthosvd.sthosvd`
    except ``mode_order`` (ordering is irrelevant when nothing is
    truncated between modes) and returns the same result type.
    """
    if method not in METHODS:
        raise ConfigurationError(f"method must be one of {METHODS}, got {method!r}")
    if tol is not None and ranks is not None:
        raise ConfigurationError("pass either tol or ranks, not both")
    if method == "randomized" and ranks is None:
        raise ConfigurationError(
            "method='randomized' sketches to a target rank: pass ranks="
        )
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    if precision is not None:
        prec = resolve_precision(precision)
        if tensor.dtype != prec.dtype:
            tensor = tensor.astype(prec.dtype)
    ndim = tensor.ndim
    if ranks is not None:
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != ndim:
            raise ConfigurationError(f"need {ndim} ranks, got {len(ranks)}")
        for n, (r, i) in enumerate(zip(ranks, tensor.shape)):
            if not 1 <= r <= i:
                raise ConfigurationError(f"rank {r} invalid for mode {n} of size {i}")

    counter = FlopCounter()
    timer = PhaseTimer()
    norm_x = tensor.norm()
    budget = (
        error_budget_per_mode(norm_x * norm_x, tol, ndim) if tol is not None else None
    )

    factors: list = [None] * ndim
    sigmas: dict[int, np.ndarray] = {}
    for n in range(ndim):
        rank_hint = ranks[n] if ranks is not None else None
        U, sigma = _mode_svd(
            method, tensor, n, backend, counter, timer, rank_hint=rank_hint
        )
        sigmas[n] = sigma
        if budget is not None:
            r = choose_rank(sigma, budget)
        elif ranks is not None:
            r = ranks[n]
        else:
            r = min(tensor.shape[n], U.shape[1])
        factors[n] = np.ascontiguousarray(U[:, :r])

    core = tensor
    for n in range(ndim):
        with timer.phase(PHASE_TTM, n):
            counter.add(
                ttm_flops(core.shape, n, factors[n].shape[1]), phase=PHASE_TTM, mode=n
            )
            core = ttm(core, factors[n], n, transpose=True)

    return SthosvdResult(
        tucker=TuckerTensor(core=core, factors=tuple(factors)),
        sigmas=sigmas,
        mode_order=tuple(range(ndim)),
        method=method,
        precision=tensor.precision,
        norm_x=norm_x,
        flops=counter,
        timer=timer,
    )
