"""Core contribution: TuckerTensor, rank truncation, ST-HOSVD drivers."""

from .tucker import TuckerTensor
from .truncation import choose_rank, error_budget_per_mode, tail_energy
from .ordering import resolve_mode_order, greedy_order
from .sthosvd import sthosvd, SthosvdResult, METHODS
from .sthosvd_parallel import sthosvd_parallel, ParallelSthosvdResult
from .hosvd import hosvd
from .hooi import hooi, HooiResult
from .metrics import validate_tucker, core_statistics, TuckerDiagnostics
from .outofcore import sthosvd_out_of_core, ooc_tensor_gram, ooc_tensor_lq
from .hooi_parallel import hooi_parallel, ParallelHooiResult
from .hosvd_parallel import hosvd_parallel
from .evaluate import streaming_rel_error, rel_error_lowmem
from .auto import choose_variant, compress, VariantChoice
from .recompress import recompress
from .ft import (
    FaultTolerantResult,
    hooi_fault_tolerant,
    sthosvd_fault_tolerant,
)
from . import checkpoint

__all__ = [
    "hosvd",
    "hooi",
    "HooiResult",
    "validate_tucker",
    "core_statistics",
    "TuckerDiagnostics",
    "sthosvd_out_of_core",
    "ooc_tensor_gram",
    "ooc_tensor_lq",
    "hooi_parallel",
    "ParallelHooiResult",
    "hosvd_parallel",
    "streaming_rel_error",
    "rel_error_lowmem",
    "choose_variant",
    "compress",
    "VariantChoice",
    "recompress",
    "checkpoint",
    "TuckerTensor",
    "choose_rank",
    "error_budget_per_mode",
    "tail_energy",
    "resolve_mode_order",
    "greedy_order",
    "sthosvd",
    "SthosvdResult",
    "METHODS",
    "sthosvd_parallel",
    "ParallelSthosvdResult",
    "FaultTolerantResult",
    "sthosvd_fault_tolerant",
    "hooi_fault_tolerant",
]
