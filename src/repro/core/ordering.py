"""Mode-ordering policies for ST-HOSVD (Sec. 4.2.3).

The paper considers data in its on-disk order and restricts tuning to
``forward`` (0, 1, ..., N-1) and ``backward`` (N-1, ..., 0) orderings,
since ranks — hence the computation-minimizing order — are unknown a
priori.  A ``greedy`` policy is also provided for the ablation study:
when target ranks *are* known, it picks at each step the mode whose
truncation shrinks the working tensor the most.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError

__all__ = ["resolve_mode_order", "greedy_order"]


def resolve_mode_order(order, ndim: int) -> tuple[int, ...]:
    """Normalize an ordering spec to an explicit mode permutation.

    Accepts ``"forward"``, ``"backward"``, or an explicit permutation of
    ``range(ndim)``.
    """
    if order == "forward" or order is None:
        return tuple(range(ndim))
    if order == "backward":
        return tuple(range(ndim - 1, -1, -1))
    try:
        modes = tuple(int(m) for m in order)
    except TypeError as exc:
        raise ConfigurationError(f"cannot interpret mode order {order!r}") from exc
    if sorted(modes) != list(range(ndim)):
        raise ConfigurationError(
            f"mode order {modes} is not a permutation of 0..{ndim - 1}"
        )
    return modes


def greedy_order(shape: Sequence[int], ranks: Sequence[int]) -> tuple[int, ...]:
    """Computation-minimizing heuristic when target ranks are known.

    Repeatedly process the mode with the largest reduction factor
    ``I_n / R_n``, shrinking the working dimensions as it goes — the
    heuristic discussed in [6] for known-rank runs.
    """
    if len(shape) != len(ranks):
        raise ConfigurationError("shape and ranks must have equal length")
    remaining = list(range(len(shape)))
    order = []
    while remaining:
        best = max(remaining, key=lambda n: shape[n] / max(ranks[n], 1))
        order.append(best)
        remaining.remove(best)
    return tuple(order)
