"""Approximation-error evaluation, including streaming (out-of-core).

``rel_error`` on :class:`TuckerTensor` reconstructs the full tensor —
impossible when the original only exists as a raw file larger than
memory.  :func:`streaming_rel_error` computes the same quantity one
mode-(N-1) slab at a time: each slab of the reference is read from disk,
the matching slab of the approximation is produced by partial
reconstruction (sliced factors), and the squared difference accumulates
in float64.  Peak memory is one slab plus the Tucker parameters.

Also provides :func:`rel_error_lowmem` for in-memory references that are
too large to hold twice (reference + reconstruction).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..data.outofcore import OutOfCoreTensor
from ..tensor import layout
from ..tensor.dense import DenseTensor
from .tucker import TuckerTensor

__all__ = ["streaming_rel_error", "rel_error_lowmem"]


def streaming_rel_error(
    tucker: TuckerTensor,
    reference: OutOfCoreTensor,
    *,
    slab_elements: int = 1 << 22,
) -> float:
    """``||X - X_hat|| / ||X||`` with ``X`` streamed from a raw file.

    Slabs are contiguous runs of the last mode's indices, so reads are
    sequential.  ``slab_elements`` bounds the per-slab memory.
    """
    if tuple(reference.shape) != tucker.shape:
        raise ShapeError(
            f"reference shape {reference.shape} does not match {tucker.shape}"
        )
    shape = tucker.shape
    last = len(shape) - 1
    slab_size = layout.prod_before(shape, last)  # elements per last-mode index
    per_slab = max(slab_elements // max(slab_size, 1), 1)

    mm = np.memmap(reference.path, dtype=reference.dtype, mode="r").reshape(
        shape[last], -1
    )  # [last index, rest] — natural order puts the last mode slowest

    num = 0.0
    den = 0.0
    region: list = [slice(None)] * len(shape)
    for t0 in range(0, shape[last], per_slab):
        t1 = min(t0 + per_slab, shape[last])
        region[last] = slice(t0, t1)
        approx = tucker.reconstruct_slice(tuple(region))
        # The slab in natural order: last index slowest -> rows of mm.
        ref_flat = np.asarray(mm[t0:t1], dtype=np.float64).reshape(-1)
        app_flat = approx.flat_view().astype(np.float64, copy=False)
        # approx slab natural order: modes 0..N-2 fastest then the slab's
        # last-mode offset — identical ordering to ref_flat.
        diff = ref_flat - app_flat
        num += float(diff @ diff)
        den += float(ref_flat @ ref_flat)
    if den == 0:
        return 0.0
    return float(np.sqrt(num / den))


def rel_error_lowmem(
    tucker: TuckerTensor,
    reference: DenseTensor,
    *,
    slab_elements: int = 1 << 22,
) -> float:
    """Slab-wise relative error against an in-memory reference.

    Avoids materializing the full reconstruction next to the reference
    (halving the peak memory of ``TuckerTensor.rel_error``).
    """
    if reference.shape != tucker.shape:
        raise ShapeError(
            f"reference shape {reference.shape} does not match {tucker.shape}"
        )
    shape = tucker.shape
    last = len(shape) - 1
    slab_size = layout.prod_before(shape, last)
    per_slab = max(slab_elements // max(slab_size, 1), 1)

    num = 0.0
    den = 0.0
    region: list = [slice(None)] * len(shape)
    for t0 in range(0, shape[last], per_slab):
        t1 = min(t0 + per_slab, shape[last])
        region[last] = slice(t0, t1)
        approx = tucker.reconstruct_slice(tuple(region))
        ref_slab = reference.data[tuple(region)].astype(np.float64)
        diff = ref_slab.reshape(-1, order="F") - approx.flat_view().astype(np.float64)
        num += float(diff @ diff)
        den += float(ref_slab.reshape(-1) @ ref_slab.reshape(-1))
    if den == 0:
        return 0.0
    return float(np.sqrt(num / den))
