"""Parallel ST-HOSVD on the simulated MPI runtime (Secs. 3.4-3.5).

The SPMD driver mirrors the sequential algorithm mode for mode, calling
the distributed kernels: parallel TensorLQ with the butterfly TSQR (or
the parallel Gram baseline), a redundant SVD/EVD of the replicated small
factor, rank selection from the (replicated) singular values, and the
parallel TTM truncation with its fiber reduce-scatter.  Factor matrices
end the run replicated on every rank; the core tensor keeps the input's
block distribution, exactly as TuckerMPI specifies.

Run it from an SPMD function launched with :func:`repro.mpi.run_spmd`:

>>> def program(comm):
...     comms = GridComms(comm, ProcessorGrid((2, 2, 1)))
...     dt = DistributedTensor.from_full(comms, X)
...     return sthosvd_parallel(dt, tol=1e-4, method="qr")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import (
    FlopCounter,
    PhaseTimer,
    PHASE_SVD,
    PHASE_EVD,
    PHASE_TTM,
    PHASE_LQ,
    PHASE_GRAM,
    PHASE_COMM,
)
from ..obs.tracer import current_tracer, trace_span
from ..precision import Precision, resolve_precision
from ..dist.dtensor import DistributedTensor
from ..dist.svd import par_tensor_qr_svd, par_tensor_gram_svd
from ..dist.ttm import par_ttm_truncate
from .ordering import resolve_mode_order
from .sthosvd import METHODS
from .truncation import choose_rank, error_budget_per_mode
from .tucker import TuckerTensor

__all__ = ["ParallelSthosvdResult", "sthosvd_parallel"]


@dataclass
class ParallelSthosvdResult:
    """Per-rank result of a parallel ST-HOSVD run.

    ``core`` is this rank's block of the distributed core tensor;
    ``factors`` are replicated.  ``to_tucker()`` assembles a full
    :class:`TuckerTensor` (collective — gathers the core).
    """

    core: DistributedTensor
    factors: tuple[np.ndarray, ...]
    sigmas: dict[int, np.ndarray]
    mode_order: tuple[int, ...]
    method: str
    precision: Precision
    norm_x: float
    flops: FlopCounter = field(default_factory=FlopCounter)
    timer: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.core.global_shape

    def estimated_rel_error(self) -> float:
        """Truncation-based error estimate (see sequential counterpart)."""
        if self.norm_x == 0:
            return 0.0
        total = 0.0
        for n, sigma in self.sigmas.items():
            r = self.ranks[n]
            tail = np.asarray(sigma[r:], dtype=np.float64)
            total += float(np.sum(tail * tail))
        return float(np.sqrt(total) / self.norm_x)

    def compression_ratio(self) -> float:
        """Original element count over stored parameters (global)."""
        full = 1
        for U in self.factors:
            full *= U.shape[0]
        stored = self.core.global_size + sum(int(U.size) for U in self.factors)
        return full / stored

    def to_tucker(self) -> TuckerTensor:
        """Assemble a replicated TuckerTensor (collective: gathers the core)."""
        return TuckerTensor(core=self.core.gather(), factors=self.factors)


def sthosvd_parallel(
    dt: DistributedTensor,
    *,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    method: str = "qr",
    mode_order="forward",
    backend: str = "lapack",
    svd_strategy: str = "replicated",
    progress: Callable[[dict], None] | None = None,
) -> ParallelSthosvdResult:
    """Distributed ST-HOSVD (collective over ``dt``'s communicator).

    Arguments match :func:`repro.core.sthosvd.sthosvd`; the working
    precision is the distributed tensor's dtype (convert with
    ``DistributedTensor.astype`` beforehand for the single-precision
    variants).  ``svd_strategy`` selects how the per-mode factors
    replicate: ``"replicated"`` (paper default, redundant decomposition
    on every rank) or ``"root_bcast"`` (decompose once on rank 0, then
    broadcast via the size-adaptive collective engine; bitwise-identical
    factors).

    ``progress`` is called on rank 0 only, once per completed mode,
    with ``{"step", "total_steps", "mode", "ranks", "seconds"}`` —
    the same event shape the out-of-core driver emits.
    """
    if method not in ("qr", "gram"):
        raise ConfigurationError(
            f"parallel driver supports methods ('qr', 'gram'), got {method!r}"
        )
    if tol is not None and ranks is not None:
        raise ConfigurationError("pass either tol or ranks, not both")
    ndim = dt.ndim
    order = resolve_mode_order(mode_order, ndim)
    if ranks is not None:
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != ndim:
            raise ConfigurationError(f"need {ndim} ranks, got {len(ranks)}")
        for n, (r, i) in enumerate(zip(ranks, dt.global_shape)):
            if not 1 <= r <= i:
                raise ConfigurationError(f"rank {r} invalid for mode {n} of size {i}")

    counter = FlopCounter()
    timer = PhaseTimer()
    norm_x_sq = dt.norm_squared()
    norm_x = float(np.sqrt(norm_x_sq))
    budget = error_budget_per_mode(norm_x_sq, tol, ndim) if tol is not None else None

    tracer = current_tracer()
    current = dt
    factors: list = [None] * ndim
    sigmas: dict[int, np.ndarray] = {}
    for step, n in enumerate(order):
        mode_start = time.perf_counter()
        with trace_span("sthosvd.mode", mode=n, step=step):
            svd_phase = PHASE_LQ if method == "qr" else PHASE_GRAM
            mark = tracer.local_mark() if tracer is not None else 0
            with timer.phase(svd_phase, n):
                if method == "qr":
                    U, sigma = par_tensor_qr_svd(
                        current, n, backend=backend,
                        strategy=svd_strategy, counter=counter,
                    )
                else:
                    U, sigma = par_tensor_gram_svd(
                        current, n, strategy=svd_strategy, counter=counter,
                    )
            if tracer is not None:
                # Pull the measured comm time out of the kernel bucket
                # into the Comm row (span tracer knows exactly how long
                # this thread spent inside communicator operations).
                timer.attribute_comm(
                    tracer.local_phase_seconds(PHASE_COMM, since=mark),
                    svd_phase, n,
                )
            sigmas[n] = sigma
            if budget is not None:
                r = choose_rank(sigma, budget)
            elif ranks is not None:
                r = ranks[n]
            else:
                r = min(current.global_shape[n], U.shape[1])
            U_n = np.ascontiguousarray(U[:, :r])
            factors[n] = U_n
            mark = tracer.local_mark() if tracer is not None else 0
            with timer.phase(PHASE_TTM, n):
                current = par_ttm_truncate(current, U_n, n, counter=counter)
            if tracer is not None:
                timer.attribute_comm(
                    tracer.local_phase_seconds(PHASE_COMM, since=mark),
                    PHASE_TTM, n,
                )
        if progress is not None and dt.comm.rank == 0:
            progress({
                "step": step + 1,
                "total_steps": ndim,
                "mode": n,
                "ranks": tuple(current.global_shape),
                "seconds": time.perf_counter() - mode_start,
            })

    return ParallelSthosvdResult(
        core=current,
        factors=tuple(factors),
        sigmas=sigmas,
        mode_order=order,
        method=method,
        precision=resolve_precision(dt.dtype),
        norm_x=norm_x,
        flops=counter,
        timer=timer,
    )
