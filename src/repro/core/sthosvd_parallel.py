"""Parallel ST-HOSVD on the simulated MPI runtime (Secs. 3.4-3.5).

The SPMD driver mirrors the sequential algorithm mode for mode, calling
the distributed kernels: parallel TensorLQ with the butterfly TSQR (or
the parallel Gram baseline), a redundant SVD/EVD of the replicated small
factor, rank selection from the (replicated) singular values, and the
parallel TTM truncation with its fiber reduce-scatter.  Factor matrices
end the run replicated on every rank; the core tensor keeps the input's
block distribution, exactly as TuckerMPI specifies.

Run it from an SPMD function launched with :func:`repro.mpi.run_spmd`:

>>> def program(comm):
...     comms = GridComms(comm, ProcessorGrid((2, 2, 1)))
...     dt = DistributedTensor.from_full(comms, X)
...     return sthosvd_parallel(dt, tol=1e-4, method="qr")
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import (
    FlopCounter,
    PhaseTimer,
    PHASE_SVD,
    PHASE_EVD,
    PHASE_TTM,
    PHASE_LQ,
    PHASE_GRAM,
    PHASE_COMM,
)
from ..obs.tracer import current_tracer, trace_span
from ..precision import Precision, resolve_precision
from ..dist.dtensor import DistributedTensor
from ..dist.ttm import par_ttm_truncate
from ..faults.guards import guarded_mode_svd
from .ordering import resolve_mode_order
from .sthosvd import METHODS
from .truncation import choose_rank, error_budget_per_mode
from .tucker import TuckerTensor

__all__ = ["ParallelSthosvdResult", "sthosvd_parallel"]


@dataclass
class ParallelSthosvdResult:
    """Per-rank result of a parallel ST-HOSVD run.

    ``core`` is this rank's block of the distributed core tensor;
    ``factors`` are replicated.  ``to_tucker()`` assembles a full
    :class:`TuckerTensor` (collective — gathers the core).
    """

    core: DistributedTensor
    factors: tuple[np.ndarray, ...]
    sigmas: dict[int, np.ndarray]
    mode_order: tuple[int, ...]
    method: str
    precision: Precision
    norm_x: float
    flops: FlopCounter = field(default_factory=FlopCounter)
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    numeric_recoveries: list = field(default_factory=list)

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.core.global_shape

    def estimated_rel_error(self) -> float:
        """Truncation-based error estimate (see sequential counterpart)."""
        if self.norm_x == 0:
            return 0.0
        total = 0.0
        for n, sigma in self.sigmas.items():
            r = self.ranks[n]
            tail = np.asarray(sigma[r:], dtype=np.float64)
            total += float(np.sum(tail * tail))
        return float(np.sqrt(total) / self.norm_x)

    def compression_ratio(self) -> float:
        """Original element count over stored parameters (global)."""
        full = 1
        for U in self.factors:
            full *= U.shape[0]
        stored = self.core.global_size + sum(int(U.size) for U in self.factors)
        return full / stored

    def to_tucker(self) -> TuckerTensor:
        """Assemble a replicated TuckerTensor (collective: gathers the core)."""
        return TuckerTensor(core=self.core.gather(), factors=self.factors)


def sthosvd_parallel(
    dt: DistributedTensor,
    *,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    method: str = "qr",
    mode_order="forward",
    backend: str = "lapack",
    svd_strategy: str = "replicated",
    progress: Callable[[dict], None] | None = None,
    checkpoint=None,
    resume: dict | None = None,
) -> ParallelSthosvdResult:
    """Distributed ST-HOSVD (collective over ``dt``'s communicator).

    Arguments match :func:`repro.core.sthosvd.sthosvd`; the working
    precision is the distributed tensor's dtype (convert with
    ``DistributedTensor.astype`` beforehand for the single-precision
    variants).  ``svd_strategy`` selects how the per-mode factors
    replicate: ``"replicated"`` (paper default, redundant decomposition
    on every rank) or ``"root_bcast"`` (decompose once on rank 0, then
    broadcast via the size-adaptive collective engine; bitwise-identical
    factors).

    ``progress`` is called on rank 0 only, once per completed mode,
    with ``{"step", "total_steps", "mode", "ranks", "seconds"}`` —
    the same event shape the out-of-core driver emits.

    ``checkpoint`` is an optional
    :class:`~repro.faults.DistributedCheckpoint`: the partially
    truncated tensor plus the replicated resume state is saved after
    every completed mode (and on entry, so a crash in mode 0 — or on
    the first mode after a recovery — is also covered).  ``resume`` is
    the ``meta`` dict recovered from such a checkpoint; ``dt`` must
    then be the recovered (partially truncated) tensor, redistributed
    over the surviving ranks.  :func:`repro.core.ft.
    sthosvd_fault_tolerant` drives the full
    crash-shrink-recover-resume loop.
    """
    if method not in ("qr", "gram"):
        raise ConfigurationError(
            f"parallel driver supports methods ('qr', 'gram'), got {method!r}"
        )
    if tol is not None and ranks is not None:
        raise ConfigurationError("pass either tol or ranks, not both")
    ndim = dt.ndim
    order = resolve_mode_order(mode_order, ndim)
    if ranks is not None:
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != ndim:
            raise ConfigurationError(f"need {ndim} ranks, got {len(ranks)}")
        for n, (r, i) in enumerate(zip(ranks, dt.global_shape)):
            if not 1 <= r <= i:
                raise ConfigurationError(f"rank {r} invalid for mode {n} of size {i}")

    counter = FlopCounter()
    timer = PhaseTimer()
    if resume is not None:
        # The original tensor's norm drives the error budget; the
        # recovered `dt` is already truncated, so never recompute it.
        norm_x_sq = float(resume["norm_x_sq"])
        start_step = int(resume["completed_steps"])
        factors = [None if f is None else np.asarray(f) for f in resume["factors"]]
        sigmas = {int(k): np.asarray(v) for k, v in resume["sigmas"].items()}
        recoveries = list(resume.get("numeric_recoveries", []))
    else:
        norm_x_sq = dt.norm_squared()
        start_step = 0
        factors = [None] * ndim
        sigmas = {}
        recoveries = []
    norm_x = float(np.sqrt(norm_x_sq))
    budget = error_budget_per_mode(norm_x_sq, tol, ndim) if tol is not None else None

    def ckpt_meta(completed: int) -> dict:
        return {
            "completed_steps": completed,
            "factors": list(factors),
            "sigmas": dict(sigmas),
            "norm_x_sq": norm_x_sq,
            "numeric_recoveries": list(recoveries),
        }

    tracer = current_tracer()
    current = dt
    if checkpoint is not None:
        # Entry save doubles as the post-recovery re-replication: on a
        # fresh epoch every surviving rank re-seeds its buddy, so a
        # *second* failure still finds a complete step.
        checkpoint.save(current, start_step, meta=ckpt_meta(start_step))
    for step, n in enumerate(order):
        if step < start_step:
            continue
        mode_start = time.perf_counter()
        with trace_span("sthosvd.mode", mode=n, step=step):
            svd_phase = PHASE_LQ if method == "qr" else PHASE_GRAM
            mark = tracer.local_mark() if tracer is not None else 0
            with timer.phase(svd_phase, n):
                U, sigma, recovered = guarded_mode_svd(
                    current, n, method=method, backend=backend,
                    svd_strategy=svd_strategy, counter=counter,
                )
            recoveries.extend(f"mode{n}:{action}" for action in recovered)
            if tracer is not None:
                # Pull the measured comm time out of the kernel bucket
                # into the Comm row (span tracer knows exactly how long
                # this thread spent inside communicator operations).
                timer.attribute_comm(
                    tracer.local_phase_seconds(PHASE_COMM, since=mark),
                    svd_phase, n,
                )
            sigmas[n] = sigma
            if budget is not None:
                r = choose_rank(sigma, budget)
            elif ranks is not None:
                r = ranks[n]
            else:
                r = min(current.global_shape[n], U.shape[1])
            U_n = np.ascontiguousarray(U[:, :r])
            factors[n] = U_n
            mark = tracer.local_mark() if tracer is not None else 0
            with timer.phase(PHASE_TTM, n):
                current = par_ttm_truncate(current, U_n, n, counter=counter)
            if tracer is not None:
                timer.attribute_comm(
                    tracer.local_phase_seconds(PHASE_COMM, since=mark),
                    PHASE_TTM, n,
                )
            if checkpoint is not None:
                checkpoint.save(current, step + 1, meta=ckpt_meta(step + 1))
        if progress is not None and dt.comm.rank == 0:
            progress({
                "step": step + 1,
                "total_steps": ndim,
                "mode": n,
                "ranks": tuple(current.global_shape),
                "seconds": time.perf_counter() - mode_start,
            })

    return ParallelSthosvdResult(
        core=current,
        factors=tuple(factors),
        sigmas=sigmas,
        mode_order=order,
        method=method,
        precision=resolve_precision(dt.dtype),
        norm_x=norm_x,
        flops=counter,
        timer=timer,
        numeric_recoveries=recoveries,
    )
