"""Sequential ST-HOSVD (paper Alg. 1) with pluggable per-mode SVD.

For each mode in the chosen order: compute singular values and left
singular vectors of the current unfolding (QR-SVD via TensorLQ, or
TuckerMPI's Gram-SVD), pick the rank from the error budget, and truncate
with a TTM before moving on.  The working precision is whatever the
input tensor carries — convert with ``DenseTensor.astype`` (or pass
``precision=``) to run the paper's single-precision variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import FlopCounter, PhaseTimer, PHASE_SVD, PHASE_EVD, PHASE_TTM, PHASE_LQ, PHASE_GRAM
from ..precision import Precision, resolve_precision
from ..tensor.dense import DenseTensor
from ..tensor.ttm import ttm, ttm_flops
from ..linalg.gram import tensor_gram
from ..linalg.svd import left_svd_of_triangle, svd_from_gram
from ..linalg.tensor_lq import tensor_lq
from .ordering import resolve_mode_order
from .truncation import choose_rank, error_budget_per_mode
from .tucker import TuckerTensor

__all__ = ["SthosvdResult", "sthosvd", "METHODS"]

# "qr" and "gram" are the paper's two algorithms; "gram-mixed" (float64
# accumulation of a float32 Gram) and "randomized" (HMT sketch; requires
# explicit ranks) implement the future-work extensions of its Sec. 5.
METHODS = ("qr", "gram", "gram-mixed", "randomized")


@dataclass
class SthosvdResult:
    """Everything a run of ST-HOSVD produces.

    Attributes
    ----------
    tucker:
        The computed decomposition.
    sigmas:
        Per-mode singular values as computed when that mode was
        processed (keys are mode indices; values descending arrays).
    mode_order:
        The order in which modes were processed.
    method, precision:
        Algorithm/working-precision actually used.
    norm_x:
        Frobenius norm of the input.
    flops:
        Operation counts by phase (LQ/Gram, SVD/EVD, TTM).
    timer:
        Wall-clock phase breakdown of this process.
    """

    tucker: TuckerTensor
    sigmas: dict[int, np.ndarray]
    mode_order: tuple[int, ...]
    method: str
    precision: Precision
    norm_x: float
    flops: FlopCounter = field(default_factory=FlopCounter)
    timer: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.tucker.ranks

    def estimated_rel_error(self) -> float:
        """Error estimate from discarded singular values (free at runtime).

        The squared truncation errors of the modes are orthogonal, so
        their sum bounds the squared approximation error [28].
        """
        if self.norm_x == 0:
            return 0.0
        total = 0.0
        for n, sigma in self.sigmas.items():
            r = self.tucker.ranks[n]
            tail = np.asarray(sigma[r:], dtype=np.float64)
            total += float(np.sum(tail * tail))
        return float(np.sqrt(total) / self.norm_x)


def _mode_svd(method, tensor, n, backend, counter, timer, rank_hint=None, svd_options=None):
    """Per-mode SVD with the reduction and small-decomposition phases
    timed separately (the paper's LQ/Gram vs SVD/EVD breakdown)."""
    if method == "qr":
        with timer.phase(PHASE_LQ, n):
            L = tensor_lq(tensor, n, backend=backend, counter=counter)
        solver = (svd_options or {}).get("triangle_solver", "lapack")
        with timer.phase(PHASE_SVD, n):
            if solver == "jacobi":
                from ..linalg.jacobi import jacobi_left_svd

                return jacobi_left_svd(L, counter=counter, mode=n)
            if solver != "lapack":
                raise ConfigurationError(
                    f"triangle_solver must be 'lapack' or 'jacobi', got {solver!r}"
                )
            return left_svd_of_triangle(L, counter=counter, mode=n)
    if method == "randomized":
        from ..linalg.randomized import tensor_randomized_svd

        opts = dict(svd_options or {})
        opts.setdefault("rng", n)
        with timer.phase(PHASE_SVD, n):
            return tensor_randomized_svd(
                tensor, n, rank_hint, counter=counter, **opts
            )
    accumulate = "double" if method == "gram-mixed" else None
    with timer.phase(PHASE_GRAM, n):
        G = tensor_gram(tensor, n, counter=counter, accumulate=accumulate)
    with timer.phase(PHASE_EVD, n):
        return svd_from_gram(G, counter=counter, mode=n)


def sthosvd(
    tensor: DenseTensor | np.ndarray,
    *,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    method: str = "qr",
    precision=None,
    mode_order="forward",
    backend: str = "lapack",
    svd_options: dict | None = None,
) -> SthosvdResult:
    """Sequentially Truncated HOSVD of a dense tensor.

    Parameters
    ----------
    tensor:
        Input data (``DenseTensor`` or array-like).
    tol:
        Relative error tolerance ``eps``; ranks are chosen so the
        approximation satisfies ``||X - X_hat|| <= tol * ||X||`` (in
        exact arithmetic — the paper's subject is precisely when
        roundoff breaks this).
    ranks:
        Fixed per-mode ranks instead of a tolerance.  Exactly one of
        ``tol``/``ranks`` may be given; with neither, no truncation is
        performed (full HOSVD — used for singular-value studies).
    method:
        ``"qr"`` (numerically stable QR-SVD, this paper) or ``"gram"``
        (TuckerMPI's Gram-SVD baseline).
    precision:
        Optional working precision override (``"single"``/``"double"``,
        dtype, or :class:`Precision`); default is the input's dtype.
    mode_order:
        ``"forward"``, ``"backward"``, or an explicit permutation.
    backend:
        ``"lapack"`` or ``"householder"`` QR kernels.
    svd_options:
        Extra keyword arguments for the per-mode SVD; currently used by
        ``method="randomized"`` (``oversample``, ``power_iters``, ``rng``).

    Returns
    -------
    SthosvdResult
    """
    if method not in METHODS:
        raise ConfigurationError(f"method must be one of {METHODS}, got {method!r}")
    if tol is not None and ranks is not None:
        raise ConfigurationError("pass either tol or ranks, not both")
    if method == "randomized" and ranks is None:
        raise ConfigurationError(
            "method='randomized' sketches to a target rank: pass ranks="
        )
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    if precision is not None:
        prec = resolve_precision(precision)
        if tensor.dtype != prec.dtype:
            tensor = tensor.astype(prec.dtype)
    prec = tensor.precision
    ndim = tensor.ndim
    order = resolve_mode_order(mode_order, ndim)
    if ranks is not None:
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != ndim:
            raise ConfigurationError(f"need {ndim} ranks, got {len(ranks)}")
        for n, (r, i) in enumerate(zip(ranks, tensor.shape)):
            if not 1 <= r <= i:
                raise ConfigurationError(f"rank {r} invalid for mode {n} of size {i}")

    counter = FlopCounter()
    timer = PhaseTimer()
    norm_x = tensor.norm()
    budget = (
        error_budget_per_mode(norm_x * norm_x, tol, ndim) if tol is not None else None
    )

    current = tensor
    factors: list = [None] * ndim
    sigmas: dict[int, np.ndarray] = {}
    for n in order:
        rank_hint = ranks[n] if ranks is not None else None
        U, sigma = _mode_svd(
            method, current, n, backend, counter, timer,
            rank_hint=rank_hint, svd_options=svd_options,
        )
        sigmas[n] = sigma
        if budget is not None:
            r = choose_rank(sigma, budget)
        elif ranks is not None:
            r = ranks[n]
        else:
            r = min(current.shape[n], U.shape[1])
        U_n = np.ascontiguousarray(U[:, :r])
        factors[n] = U_n
        with timer.phase(PHASE_TTM, n):
            counter.add(ttm_flops(current.shape, n, r), phase=PHASE_TTM, mode=n)
            current = ttm(current, U_n, n, transpose=True)

    return SthosvdResult(
        tucker=TuckerTensor(core=current, factors=tuple(factors)),
        sigmas=sigmas,
        mode_order=order,
        method=method,
        precision=prec,
        norm_x=norm_x,
        flops=counter,
        timer=timer,
    )
