"""Higher-Order Orthogonal Iteration (HOOI) — rank-constrained refinement.

ST-HOSVD is quasi-optimal (within ``sqrt(N)`` of the best error for its
ranks) but not optimal.  HOOI is the classical alternating scheme that
refines a Tucker decomposition toward a local optimum: at each step the
factor of one mode is recomputed as the leading left singular vectors of
the tensor contracted with every *other* mode's current factor.  The fit
``||core|| / ||X||`` is monotonically non-decreasing, which doubles as a
convergence certificate and a test invariant.

Initialization defaults to ST-HOSVD (the standard choice); the per-mode
SVD reuses the same QR-SVD/Gram-SVD kernels, so HOOI inherits the
paper's precision/accuracy trade-offs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import FlopCounter, PhaseTimer, PHASE_TTM
from ..precision import Precision, resolve_precision
from ..tensor.dense import DenseTensor
from ..tensor.ttm import ttm, ttm_flops
from .sthosvd import sthosvd, _mode_svd
from .tucker import TuckerTensor

__all__ = ["HooiResult", "hooi"]


@dataclass
class HooiResult:
    """Outcome of a HOOI run."""

    tucker: TuckerTensor
    fits: list[float]
    converged: bool
    iterations: int
    method: str
    precision: Precision
    norm_x: float
    flops: FlopCounter = field(default_factory=FlopCounter)
    timer: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.tucker.ranks

    @property
    def final_fit(self) -> float:
        return self.fits[-1] if self.fits else 0.0

    def rel_error_estimate(self) -> float:
        """``sqrt(1 - fit^2)`` — the error implied by the captured energy."""
        f = min(self.final_fit, 1.0)
        return float(np.sqrt(max(1.0 - f * f, 0.0)))


def hooi(
    tensor: DenseTensor | np.ndarray,
    ranks: Sequence[int],
    *,
    method: str = "qr",
    precision=None,
    init: str = "sthosvd",
    max_iters: int = 25,
    fit_tol: float = 1e-9,
    backend: str = "lapack",
) -> HooiResult:
    """Rank-``ranks`` Tucker approximation via alternating optimization.

    Parameters
    ----------
    tensor:
        Input data.
    ranks:
        Target multilinear rank (required — HOOI optimizes at fixed rank).
    method:
        Per-mode SVD algorithm, as in :func:`~repro.core.sthosvd.sthosvd`.
    init:
        ``"sthosvd"`` (default) or ``"random"`` factor initialization.
    max_iters:
        Maximum alternating sweeps.
    fit_tol:
        Stop when the fit improves by less than this between sweeps.
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    if precision is not None:
        prec = resolve_precision(precision)
        if tensor.dtype != prec.dtype:
            tensor = tensor.astype(prec.dtype)
    ndim = tensor.ndim
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != ndim:
        raise ConfigurationError(f"need {ndim} ranks, got {len(ranks)}")
    for n, (r, i) in enumerate(zip(ranks, tensor.shape)):
        if not 1 <= r <= i:
            raise ConfigurationError(f"rank {r} invalid for mode {n} of size {i}")
    if init not in ("sthosvd", "random"):
        raise ConfigurationError(f"init must be 'sthosvd' or 'random', got {init!r}")
    if max_iters < 1:
        raise ConfigurationError("max_iters must be at least 1")

    counter = FlopCounter()
    timer = PhaseTimer()
    norm_x = tensor.norm()

    if init == "sthosvd":
        seed_res = sthosvd(tensor, ranks=ranks, method=method, backend=backend)
        factors = list(seed_res.tucker.factors)
        counter.merge(seed_res.flops)
    else:
        from ..data.synthetic import random_orthonormal

        rng = np.random.default_rng(0)
        factors = [
            random_orthonormal(i, r, rng, dtype=tensor.dtype)
            for i, r in zip(tensor.shape, ranks)
        ]

    fits: list[float] = []
    converged = False
    core = None
    for iteration in range(max_iters):
        for n in range(ndim):
            # Contract every mode but n with the current factors.
            partial = tensor
            for k in range(ndim):
                if k == n:
                    continue
                with timer.phase(PHASE_TTM, k):
                    counter.add(
                        ttm_flops(partial.shape, k, ranks[k]), phase=PHASE_TTM, mode=k
                    )
                    partial = ttm(partial, factors[k], k, transpose=True)
            U, _sigma = _mode_svd(method, partial, n, backend, counter, timer,
                                  rank_hint=ranks[n])
            factors[n] = np.ascontiguousarray(U[:, : ranks[n]])
            # The last mode's contraction gives the core for free.
            if n == ndim - 1:
                with timer.phase(PHASE_TTM, n):
                    core = ttm(partial, factors[n], n, transpose=True)
        assert core is not None
        fit = core.norm() / norm_x if norm_x > 0 else 1.0
        fits.append(float(fit))
        if iteration > 0 and abs(fits[-1] - fits[-2]) < fit_tol:
            converged = True
            break

    return HooiResult(
        tucker=TuckerTensor(core=core, factors=tuple(factors)),
        fits=fits,
        converged=converged,
        iterations=len(fits),
        method=method,
        precision=tensor.precision,
        norm_x=norm_x,
        flops=counter,
        timer=timer,
    )
