"""Diagnostics and metrics for Tucker decompositions.

TuckerMPI computes summary metrics of the compressed representation as
it writes it (the core carries most of the information content); this
module provides the equivalents plus validation checks used by tests,
examples, and downstream users who want a health report on a computed
decomposition without reconstructing the full tensor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..tensor.dense import DenseTensor
from .tucker import TuckerTensor

__all__ = ["TuckerDiagnostics", "validate_tucker", "core_statistics"]


@dataclass(frozen=True)
class TuckerDiagnostics:
    """Health report of a Tucker decomposition.

    Attributes
    ----------
    factor_orthogonality:
        Per-mode ``max |U^T U - I|`` — zero for exact ST-HOSVD factors.
    core_gram_diagonality:
        Per-mode ratio of the largest off-diagonal entry of
        ``G_(n) G_(n)^T`` to its largest diagonal entry.  The all-
        orthogonality property of (ST-)HOSVD cores makes this ~eps; HOOI
        cores satisfy it only at convergence.
    core_norm:
        Frobenius norm of the core (equals the approximation's norm).
    compression_ratio:
        Stored-parameter compression.
    """

    factor_orthogonality: tuple[float, ...]
    core_gram_diagonality: tuple[float, ...]
    core_norm: float
    compression_ratio: float

    def factors_orthonormal(self, atol: float = 1e-6) -> bool:
        """True when every factor's ``U^T U`` is within ``atol`` of I."""
        return all(v <= atol for v in self.factor_orthogonality)

    def core_all_orthogonal(self, rtol: float = 1e-6) -> bool:
        """True when every core unfolding's Gram is diagonal to ``rtol``."""
        return all(v <= rtol for v in self.core_gram_diagonality)


def validate_tucker(tucker: TuckerTensor) -> TuckerDiagnostics:
    """Compute the full diagnostics report for a decomposition."""
    orth = []
    for U in tucker.factors:
        Ud = U.astype(np.float64, copy=False)
        gram = Ud.T @ Ud
        orth.append(float(np.abs(gram - np.eye(U.shape[1])).max()))

    diag_ratios = []
    for n in range(tucker.ndim):
        Gn = tucker.core.unfold(n).astype(np.float64, copy=False)
        GG = Gn @ Gn.T
        d = np.abs(np.diag(GG)).max()
        off = np.abs(GG - np.diag(np.diag(GG))).max()
        diag_ratios.append(float(off / d) if d > 0 else 0.0)

    return TuckerDiagnostics(
        factor_orthogonality=tuple(orth),
        core_gram_diagonality=tuple(diag_ratios),
        core_norm=tucker.core.norm(),
        compression_ratio=tucker.compression_ratio(),
    )


def core_statistics(tucker: TuckerTensor) -> dict:
    """Summary statistics of the core tensor (TuckerMPI-style metrics)."""
    flat = tucker.core.flat_view().astype(np.float64, copy=False)
    if flat.size == 0:
        raise ShapeError("core tensor is empty")
    return {
        "min": float(flat.min()),
        "max": float(flat.max()),
        "mean": float(flat.mean()),
        "std": float(flat.std()),
        "norm": float(np.linalg.norm(flat)),
        "abs_max": float(np.abs(flat).max()),
        "n_entries": int(flat.size),
        # Energy concentration: fraction of squared norm in the largest
        # 1% of entries — high for well-compressed data.
        "energy_top1pct": _energy_top_fraction(flat, 0.01),
    }


def _energy_top_fraction(flat: np.ndarray, fraction: float) -> float:
    sq = np.sort(flat**2)[::-1]
    k = max(int(np.ceil(fraction * sq.size)), 1)
    total = sq.sum()
    return float(sq[:k].sum() / total) if total > 0 else 0.0
