"""Out-of-core ST-HOSVD: compress raw files larger than memory.

Runs the paper's Alg. 1 against an :class:`~repro.data.outofcore.
OutOfCoreTensor`: per mode, the Gram matrix (or the flat-tree LQ) is
accumulated from streamed unfolding chunks — the identical mathematics
of the in-memory kernels, applied to bounded-size chunks — then the TTM
truncation streams the shrunken tensor to a scratch file that becomes
the next mode's input.  Peak memory is O(chunk + I_n^2), independent of
the tensor size.

Intermediate scratch files live in a working directory (a temporary one
by default) and are deleted as soon as the next mode's output replaces
them; the final core is returned in memory (it is small by construction
— that is the point of the compression).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import FlopCounter, PhaseTimer, PHASE_GRAM, PHASE_LQ, PHASE_SVD, PHASE_EVD, PHASE_TTM
from ..data.outofcore import OutOfCoreTensor, DEFAULT_CHUNK_ELEMENTS
from ..linalg.flops import gram_flops, lq_flops, tpqrt_flops
from ..linalg.gram import gram_matrix
from ..linalg.qr import gelq
from ..linalg.svd import left_svd_of_triangle, svd_from_gram
from ..linalg.tpqrt import tpqrt
from ..tensor.ttm import ttm_flops
from .ordering import resolve_mode_order
from .sthosvd import SthosvdResult
from .truncation import choose_rank, error_budget_per_mode
from .tucker import TuckerTensor

__all__ = ["ooc_tensor_gram", "ooc_tensor_lq", "sthosvd_out_of_core"]


def ooc_tensor_gram(
    ooc: OutOfCoreTensor,
    n: int,
    *,
    max_elements: int = DEFAULT_CHUNK_ELEMENTS,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Gram matrix of the mode-``n`` unfolding from streamed chunks."""
    rows = ooc.shape[n]
    G = np.zeros((rows, rows), dtype=ooc.dtype)
    for chunk in ooc.iter_unfolding_chunks(n, max_elements):
        G += chunk @ chunk.T
    G = (G + G.T) * G.dtype.type(0.5)
    if counter is not None:
        counter.add(gram_flops(rows, ooc.size // rows), phase=PHASE_GRAM, mode=n)
    return G


def ooc_tensor_lq(
    ooc: OutOfCoreTensor,
    n: int,
    *,
    max_elements: int = DEFAULT_CHUNK_ELEMENTS,
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Flat-tree LQ of the mode-``n`` unfolding from streamed chunks.

    First chunks accumulate until the working matrix is short-fat, one
    ``gelq`` seeds the triangle, then each further chunk is annihilated
    with the structured ``tpqrt`` — Alg. 2 with disk chunks as blocks.
    """
    rows = ooc.shape[n]
    pending: list[np.ndarray] = []
    pending_cols = 0
    Rt: np.ndarray | None = None
    for chunk in ooc.iter_unfolding_chunks(n, max_elements):
        if Rt is None:
            pending.append(chunk)
            pending_cols += chunk.shape[1]
            if pending_cols >= rows:
                first = np.concatenate(pending, axis=1) if len(pending) > 1 else pending[0]
                L = gelq(first, counter=counter, mode=n)
                if L.shape[0] != L.shape[1]:
                    # degenerate: whole unfolding was consumed while tall
                    return L
                Rt = np.ascontiguousarray(np.triu(L.T))
                pending = []
        else:
            work = np.ascontiguousarray(chunk.T)
            tpqrt(Rt, work, structure="rect", counter=counter, mode=n)
    if Rt is None:
        # Entire unfolding has fewer columns than rows.
        first = np.concatenate(pending, axis=1) if len(pending) > 1 else pending[0]
        return gelq(first, counter=counter, mode=n)
    return np.ascontiguousarray(np.tril(Rt.T))


def sthosvd_out_of_core(
    path: str,
    shape: Sequence[int],
    *,
    dtype=np.float64,
    precision=None,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    method: str = "qr",
    mode_order="forward",
    max_elements: int = DEFAULT_CHUNK_ELEMENTS,
    workdir: str | None = None,
    checkpoint_dir: str | None = None,
    progress=None,
) -> SthosvdResult:
    """ST-HOSVD of a raw natural-order file, never loading it whole.

    Arguments mirror :func:`repro.core.sthosvd.sthosvd`; ``path`` points
    at a file in the :mod:`repro.data.io` raw format; ``dtype`` is the
    file's storage precision and ``precision`` (optional) the working
    precision — pass ``precision="single"`` to run the paper's
    single-precision pipeline on a double-precision dump.
    ``max_elements`` bounds the per-chunk memory; ``workdir`` hosts the
    scratch files (defaults to a temporary directory, removed
    afterwards).

    ``checkpoint_dir`` enables resumable execution: completed modes are
    persisted there (see :mod:`repro.core.checkpoint`), and re-invoking
    with the identical configuration resumes after the last completed
    mode.  The checkpoint is cleared on successful completion.

    ``progress``, if given, is called after each completed mode with a
    dict ``{step, total_steps, mode, rank, seconds}`` — multi-terabyte
    compressions take hours per mode and deserve a heartbeat.
    """
    if method not in ("qr", "gram"):
        raise ConfigurationError(
            f"out-of-core driver supports methods ('qr', 'gram'), got {method!r}"
        )
    if tol is not None and ranks is not None:
        raise ConfigurationError("pass either tol or ranks, not both")
    ooc = OutOfCoreTensor(path, shape, dtype, work_dtype=precision)
    ndim = ooc.ndim
    order = resolve_mode_order(mode_order, ndim)
    if ranks is not None:
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != ndim:
            raise ConfigurationError(f"need {ndim} ranks, got {len(ranks)}")
        for n, (r, i) in enumerate(zip(ranks, ooc.shape)):
            if not 1 <= r <= i:
                raise ConfigurationError(f"rank {r} invalid for mode {n} of size {i}")

    counter = FlopCounter()
    timer = PhaseTimer()
    norm_sq = ooc.norm_squared()
    norm_x = float(np.sqrt(norm_sq))
    budget = error_budget_per_mode(norm_sq, tol, ndim) if tol is not None else None

    fingerprint = None
    resume = None
    if checkpoint_dir is not None:
        from .checkpoint import load_checkpoint, _fingerprint

        fingerprint = _fingerprint(ooc.shape, ooc.dtype, tol, ranks, method, order)
        resume = load_checkpoint(checkpoint_dir, fingerprint)

    own_workdir = workdir is None
    if own_workdir:
        workdir = tempfile.mkdtemp(prefix="repro-ooc-")
    try:
        current = ooc
        scratch: list[str] = []
        factors: list = [None] * ndim
        sigmas: dict[int, np.ndarray] = {}
        skip_steps = 0
        if resume is not None:
            skip_steps = resume.completed_steps
            for mode, U in resume.factors.items():
                factors[mode] = U
            sigmas.update(resume.sigmas)
            current = resume.current
            norm_sq = resume.norm_sq
            norm_x = float(np.sqrt(norm_sq))
            budget = (
                error_budget_per_mode(norm_sq, tol, ndim) if tol is not None else None
            )
        for step, n in enumerate(order):
            if step < skip_steps:
                continue
            if method == "qr":
                with timer.phase(PHASE_LQ, n):
                    L = ooc_tensor_lq(current, n, max_elements=max_elements,
                                      counter=counter)
                with timer.phase(PHASE_SVD, n):
                    U, sigma = left_svd_of_triangle(L, counter=counter, mode=n)
            else:
                with timer.phase(PHASE_GRAM, n):
                    G = ooc_tensor_gram(current, n, max_elements=max_elements,
                                        counter=counter)
                with timer.phase(PHASE_EVD, n):
                    U, sigma = svd_from_gram(G, counter=counter, mode=n)
            sigmas[n] = sigma
            if budget is not None:
                r = choose_rank(sigma, budget)
            elif ranks is not None:
                r = ranks[n]
            else:
                r = min(current.shape[n], U.shape[1])
            U_n = np.ascontiguousarray(U[:, :r])
            factors[n] = U_n
            out_path = os.path.join(workdir, f"step{step}.bin")
            with timer.phase(PHASE_TTM, n):
                counter.add(ttm_flops(current.shape, n, r), phase=PHASE_TTM, mode=n)
                current = current.ttm_truncate_to_file(
                    U_n, n, out_path, max_elements=max_elements
                )
            # Previous scratch file is no longer needed.
            while scratch:
                os.unlink(scratch.pop())
            scratch.append(out_path)
            if progress is not None:
                progress({
                    "step": step + 1,
                    "total_steps": ndim,
                    "mode": n,
                    "rank": r,
                    "seconds": timer.total,
                })
            if checkpoint_dir is not None:
                from .checkpoint import save_checkpoint

                save_checkpoint(
                    checkpoint_dir,
                    step=step + 1,
                    factors={m: U for m, U in enumerate(factors) if U is not None},
                    sigmas=sigmas,
                    ranks_chosen={m: U.shape[1] for m, U in enumerate(factors)
                                  if U is not None},
                    current=current,
                    norm_sq=norm_x * norm_x,
                    fingerprint=fingerprint,
                )

        core = current.to_dense()
        if checkpoint_dir is not None:
            from .checkpoint import clear_checkpoint

            clear_checkpoint(checkpoint_dir)
    finally:
        if own_workdir:
            shutil.rmtree(workdir, ignore_errors=True)

    return SthosvdResult(
        tucker=TuckerTensor(core=core, factors=tuple(factors)),
        sigmas=sigmas,
        mode_order=order,
        method=method,
        precision=core.precision,
        norm_x=norm_x,
        flops=counter,
        timer=timer,
    )
