"""Checkpoint/restart for long out-of-core compressions.

Compressing a multi-terabyte dump takes hours per mode; an interrupted
run should resume after the last completed mode instead of restarting.
A checkpoint directory holds, after each completed mode: the factors and
singular values computed so far, the partially truncated tensor (the
current scratch file), and a JSON manifest tying them together with the
run's configuration.  ``sthosvd_out_of_core(..., checkpoint_dir=...)``
writes checkpoints as it goes; rerunning the identical call resumes.

The manifest stores the configuration fingerprint (shape, dtype, tol or
ranks, method, order, source path); resuming with a different
configuration is refused rather than silently blended.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..data.outofcore import OutOfCoreTensor

__all__ = ["CheckpointState", "save_checkpoint", "load_checkpoint", "clear_checkpoint"]

MANIFEST = "checkpoint.json"


@dataclass
class CheckpointState:
    """Resumable state: completed steps, factors, sigmas, current tensor."""

    completed_steps: int
    factors: dict  # mode -> ndarray
    sigmas: dict  # mode -> ndarray
    ranks_chosen: dict  # mode -> int
    current: OutOfCoreTensor
    norm_sq: float


def _fingerprint(shape, dtype, tol, ranks, method, order) -> dict:
    return {
        "shape": list(int(s) for s in shape),
        "dtype": np.dtype(dtype).name,
        "tol": None if tol is None else float(tol),
        "ranks": None if ranks is None else [int(r) for r in ranks],
        "method": method,
        "order": list(int(n) for n in order),
    }


def save_checkpoint(
    directory: str,
    *,
    step: int,
    factors: dict,
    sigmas: dict,
    ranks_chosen: dict,
    current: OutOfCoreTensor,
    norm_sq: float,
    fingerprint: dict,
) -> None:
    """Persist state after completing ``step`` modes.

    The current scratch tensor is copied into the checkpoint directory
    (it will be deleted by the driver's normal scratch rotation).
    """
    os.makedirs(directory, exist_ok=True)
    tensor_path = os.path.join(directory, f"state{step}.bin")
    # Copy the scratch file (streamed).
    with open(current.path, "rb") as src, open(tensor_path, "wb") as dst:
        while True:
            buf = src.read(1 << 24)
            if not buf:
                break
            dst.write(buf)
    for mode, U in factors.items():
        np.save(os.path.join(directory, f"factor{mode}.npy"), U)
    for mode, s in sigmas.items():
        np.save(os.path.join(directory, f"sigma{mode}.npy"), s)
    manifest = {
        "completed_steps": step,
        "tensor_file": os.path.basename(tensor_path),
        "tensor_shape": list(current.shape),
        "norm_sq": norm_sq,
        "modes_done": sorted(factors),
        "ranks_chosen": {str(k): int(v) for k, v in ranks_chosen.items()},
        "fingerprint": fingerprint,
    }
    tmp = os.path.join(directory, MANIFEST + ".tmp")
    with open(tmp, "w") as f:
        json.dump(manifest, f)
    os.replace(tmp, os.path.join(directory, MANIFEST))
    # Drop the previous step's tensor copy.
    prev = os.path.join(directory, f"state{step - 1}.bin")
    if os.path.exists(prev):
        os.unlink(prev)


def load_checkpoint(directory: str, fingerprint: dict) -> CheckpointState | None:
    """Load a resumable state, or None when no (valid) checkpoint exists.

    Raises
    ------
    ConfigurationError
        If a checkpoint exists but was written by a different run
        configuration.
    """
    path = os.path.join(directory, MANIFEST)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        manifest = json.load(f)
    if manifest["fingerprint"] != fingerprint:
        raise ConfigurationError(
            "checkpoint was written by a different configuration; "
            "clear it or match the original arguments"
        )
    factors = {}
    sigmas = {}
    for mode in manifest["modes_done"]:
        factors[mode] = np.load(os.path.join(directory, f"factor{mode}.npy"))
        sigmas[mode] = np.load(os.path.join(directory, f"sigma{mode}.npy"))
    current = OutOfCoreTensor(
        os.path.join(directory, manifest["tensor_file"]),
        manifest["tensor_shape"],
        manifest["fingerprint"]["dtype"],
    )
    return CheckpointState(
        completed_steps=int(manifest["completed_steps"]),
        factors=factors,
        sigmas=sigmas,
        ranks_chosen={int(k): v for k, v in manifest["ranks_chosen"].items()},
        current=current,
        norm_sq=float(manifest["norm_sq"]),
    )


def clear_checkpoint(directory: str) -> None:
    """Delete checkpoint artifacts (no-op if absent)."""
    if not os.path.isdir(directory):
        return
    for name in os.listdir(directory):
        if name == MANIFEST or name.endswith(".npy") or name.endswith(".bin"):
            os.unlink(os.path.join(directory, name))
