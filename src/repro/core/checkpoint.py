"""Checkpoint/restart for long out-of-core compressions.

Compressing a multi-terabyte dump takes hours per mode; an interrupted
run should resume after the last completed mode instead of restarting.
A checkpoint directory holds, after each completed mode: the factors and
singular values computed so far, the partially truncated tensor (the
current scratch file), and a JSON manifest tying them together with the
run's configuration.  ``sthosvd_out_of_core(..., checkpoint_dir=...)``
writes checkpoints as it goes; rerunning the identical call resumes.

The manifest stores the configuration fingerprint (shape, dtype, tol or
ranks, method, order, source path); resuming with a different
configuration is refused rather than silently blended.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..data.outofcore import OutOfCoreTensor

__all__ = ["CheckpointState", "save_checkpoint", "load_checkpoint", "clear_checkpoint"]

MANIFEST = "checkpoint.json"


def _library_version() -> str:
    # Deferred: the top-level package imports this module at init time.
    import repro

    return repro.__version__


def _write_atomic(path: str, write) -> None:
    """Write a file via tmp + rename so a crash never leaves a torn file.

    A checkpoint interrupted *while saving* must not destroy the
    previous valid checkpoint: every artifact lands under its final
    name only once fully written and flushed.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        write(f)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


@dataclass
class CheckpointState:
    """Resumable state: completed steps, factors, sigmas, current tensor."""

    completed_steps: int
    factors: dict  # mode -> ndarray
    sigmas: dict  # mode -> ndarray
    ranks_chosen: dict  # mode -> int
    current: OutOfCoreTensor
    norm_sq: float


def _fingerprint(shape, dtype, tol, ranks, method, order) -> dict:
    return {
        "shape": list(int(s) for s in shape),
        "dtype": np.dtype(dtype).name,
        "tol": None if tol is None else float(tol),
        "ranks": None if ranks is None else [int(r) for r in ranks],
        "method": method,
        "order": list(int(n) for n in order),
    }


def save_checkpoint(
    directory: str,
    *,
    step: int,
    factors: dict,
    sigmas: dict,
    ranks_chosen: dict,
    current: OutOfCoreTensor,
    norm_sq: float,
    fingerprint: dict,
) -> None:
    """Persist state after completing ``step`` modes.

    The current scratch tensor is copied into the checkpoint directory
    (it will be deleted by the driver's normal scratch rotation).
    """
    os.makedirs(directory, exist_ok=True)
    tensor_path = os.path.join(directory, f"state{step}.bin")

    def copy_scratch(dst):
        # Copy the scratch file (streamed).
        with open(current.path, "rb") as src:
            while True:
                buf = src.read(1 << 24)
                if not buf:
                    break
                dst.write(buf)

    _write_atomic(tensor_path, copy_scratch)
    for mode, U in factors.items():
        _write_atomic(
            os.path.join(directory, f"factor{mode}.npy"),
            lambda f, U=U: np.save(f, U),
        )
    for mode, s in sigmas.items():
        _write_atomic(
            os.path.join(directory, f"sigma{mode}.npy"),
            lambda f, s=s: np.save(f, s),
        )
    manifest = {
        "completed_steps": step,
        "tensor_file": os.path.basename(tensor_path),
        "tensor_shape": list(current.shape),
        "tensor_dtype": np.dtype(current.dtype).name,
        "norm_sq": norm_sq,
        "modes_done": sorted(factors),
        "ranks_chosen": {str(k): int(v) for k, v in ranks_chosen.items()},
        "fingerprint": fingerprint,
        "library_version": _library_version(),
    }
    # The manifest lands last: its rename is the commit point that makes
    # the already-written artifacts the checkpoint of record.
    _write_atomic(
        os.path.join(directory, MANIFEST),
        lambda f: f.write(json.dumps(manifest).encode()),
    )
    # Drop the previous step's tensor copy.
    prev = os.path.join(directory, f"state{step - 1}.bin")
    if os.path.exists(prev):
        os.unlink(prev)


def load_checkpoint(directory: str, fingerprint: dict) -> CheckpointState | None:
    """Load a resumable state, or None when no (valid) checkpoint exists.

    Raises
    ------
    ConfigurationError
        If a checkpoint exists but was written by a different run
        configuration.
    """
    path = os.path.join(directory, MANIFEST)
    if not os.path.exists(path):
        return None
    with open(path) as f:
        manifest = json.load(f)
    stored = manifest["fingerprint"]
    if stored != fingerprint:
        # Name the mismatched fields — "different configuration" alone
        # sends users diffing JSON by hand.  Dtype gets a dedicated
        # message: resuming a float64 run in float32 (or vice versa)
        # silently changes the accuracy story the paper measures.
        if stored.get("dtype") != fingerprint.get("dtype"):
            version = manifest.get("library_version", "unknown")
            raise ConfigurationError(
                f"checkpoint holds {stored.get('dtype')} data (written by "
                f"repro {version}) but this run uses "
                f"{fingerprint.get('dtype')}; precision must match to "
                f"resume — clear the checkpoint or set the original dtype"
            )
        fields = sorted(
            k for k in set(stored) | set(fingerprint)
            if stored.get(k) != fingerprint.get(k)
        )
        raise ConfigurationError(
            f"checkpoint was written by a different configuration "
            f"(mismatched: {', '.join(fields)}); clear it or match the "
            f"original arguments"
        )
    tensor_dtype = manifest.get("tensor_dtype")
    if tensor_dtype is not None and tensor_dtype != stored["dtype"]:
        raise ConfigurationError(
            f"checkpoint manifest is inconsistent: tensor file is "
            f"{tensor_dtype} but the run fingerprint says {stored['dtype']}"
        )
    factors = {}
    sigmas = {}
    for mode in manifest["modes_done"]:
        factors[mode] = np.load(os.path.join(directory, f"factor{mode}.npy"))
        sigmas[mode] = np.load(os.path.join(directory, f"sigma{mode}.npy"))
    current = OutOfCoreTensor(
        os.path.join(directory, manifest["tensor_file"]),
        manifest["tensor_shape"],
        manifest["fingerprint"]["dtype"],
    )
    return CheckpointState(
        completed_steps=int(manifest["completed_steps"]),
        factors=factors,
        sigmas=sigmas,
        ranks_chosen={int(k): v for k, v in manifest["ranks_chosen"].items()},
        current=current,
        norm_sq=float(manifest["norm_sq"]),
    )


def clear_checkpoint(directory: str) -> None:
    """Delete checkpoint artifacts (no-op if absent)."""
    if not os.path.isdir(directory):
        return
    for name in os.listdir(directory):
        if (
            name == MANIFEST
            or name.endswith((".npy", ".bin"))
            or name.endswith(".tmp")  # torn write left by a crash mid-save
        ):
            os.unlink(os.path.join(directory, name))
