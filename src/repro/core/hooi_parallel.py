"""Distributed HOOI on the simulated MPI runtime.

The alternating refinement of :mod:`repro.core.hooi` built from the
distributed kernels: mode contractions via the parallel TTM (fiber
reduce-scatter), per-mode SVDs via parallel QR-SVD/Gram-SVD (butterfly
TSQR or Gram allreduce + redundant small decomposition), and fit
tracking via the distributed norm.  All reductions are deterministic, so
factor matrices and the convergence decision are bitwise replicated —
no rank ever disagrees about when to stop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import (
    FlopCounter,
    PhaseTimer,
    PHASE_TTM,
    PHASE_LQ,
    PHASE_GRAM,
    PHASE_COMM,
)
from ..obs.tracer import current_tracer, trace_span
from ..precision import Precision, resolve_precision
from ..dist.dtensor import DistributedTensor
from ..dist.svd import par_tensor_gram_svd, par_tensor_qr_svd
from ..dist.ttm import par_ttm_truncate
from .sthosvd_parallel import sthosvd_parallel
from .tucker import TuckerTensor

__all__ = ["ParallelHooiResult", "hooi_parallel"]


@dataclass
class ParallelHooiResult:
    """Per-rank result of a distributed HOOI run (factors replicated)."""

    core: DistributedTensor
    factors: tuple[np.ndarray, ...]
    fits: list[float]
    converged: bool
    iterations: int
    method: str
    precision: Precision
    norm_x: float
    flops: FlopCounter = field(default_factory=FlopCounter)
    timer: PhaseTimer = field(default_factory=PhaseTimer)

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.core.global_shape

    @property
    def final_fit(self) -> float:
        return self.fits[-1] if self.fits else 0.0

    def to_tucker(self) -> TuckerTensor:
        """Assemble a replicated TuckerTensor (collective core gather)."""
        return TuckerTensor(core=self.core.gather(), factors=self.factors)


def hooi_parallel(
    dt: DistributedTensor,
    ranks: Sequence[int],
    *,
    method: str = "qr",
    init: str = "sthosvd",
    max_iters: int = 25,
    fit_tol: float = 1e-9,
    backend: str = "lapack",
    svd_strategy: str = "replicated",
    progress: Callable[[dict], None] | None = None,
) -> ParallelHooiResult:
    """Distributed rank-constrained Tucker refinement (collective).

    ``svd_strategy`` selects how per-mode factors replicate:
    ``"replicated"`` decomposes redundantly on every rank (paper
    default); ``"root_bcast"`` decomposes on rank 0 and broadcasts the
    bitwise-identical factors through the adaptive collective engine.

    ``progress`` is called on rank 0 only, once per refreshed mode,
    with ``{"step", "total_steps", "iteration", "mode", "ranks",
    "seconds"}`` (``total_steps`` assumes ``max_iters`` full sweeps;
    early convergence just stops emitting).
    """
    if method not in ("qr", "gram"):
        raise ConfigurationError(
            f"parallel HOOI supports methods ('qr', 'gram'), got {method!r}"
        )
    if init not in ("sthosvd",):
        raise ConfigurationError("parallel HOOI supports init='sthosvd'")
    if max_iters < 1:
        raise ConfigurationError("max_iters must be at least 1")
    ndim = dt.ndim
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != ndim:
        raise ConfigurationError(f"need {ndim} ranks, got {len(ranks)}")
    for n, (r, i) in enumerate(zip(ranks, dt.global_shape)):
        if not 1 <= r <= i:
            raise ConfigurationError(f"rank {r} invalid for mode {n} of size {i}")

    counter = FlopCounter()
    timer = PhaseTimer()
    norm_x = dt.norm()

    seed = sthosvd_parallel(
        dt, ranks=ranks, method=method, backend=backend,
        svd_strategy=svd_strategy,
    )
    factors = list(seed.factors)
    counter.merge(seed.flops)

    tracer = current_tracer()
    svd_phase = PHASE_LQ if method == "qr" else PHASE_GRAM
    fits: list[float] = []
    converged = False
    core: DistributedTensor | None = None
    for iteration in range(max_iters):
        for n in range(ndim):
            mode_start = time.perf_counter()
            with trace_span("hooi.mode", mode=n, iteration=iteration):
                partial = dt
                for k in range(ndim):
                    if k == n:
                        continue
                    mark = tracer.local_mark() if tracer is not None else 0
                    with timer.phase(PHASE_TTM, k):
                        partial = par_ttm_truncate(
                            partial, factors[k], k, counter=counter
                        )
                    if tracer is not None:
                        timer.attribute_comm(
                            tracer.local_phase_seconds(PHASE_COMM, since=mark),
                            PHASE_TTM, k,
                        )
                mark = tracer.local_mark() if tracer is not None else 0
                with timer.phase(svd_phase, n):
                    if method == "qr":
                        U, _sigma = par_tensor_qr_svd(partial, n,
                                                      backend=backend,
                                                      strategy=svd_strategy,
                                                      counter=counter)
                    else:
                        U, _sigma = par_tensor_gram_svd(partial, n,
                                                        strategy=svd_strategy,
                                                        counter=counter)
                if tracer is not None:
                    timer.attribute_comm(
                        tracer.local_phase_seconds(PHASE_COMM, since=mark),
                        svd_phase, n,
                    )
                factors[n] = np.ascontiguousarray(U[:, : ranks[n]])
                if n == ndim - 1:
                    mark = tracer.local_mark() if tracer is not None else 0
                    with timer.phase(PHASE_TTM, n):
                        core = par_ttm_truncate(
                            partial, factors[n], n, counter=counter
                        )
                    if tracer is not None:
                        timer.attribute_comm(
                            tracer.local_phase_seconds(PHASE_COMM, since=mark),
                            PHASE_TTM, n,
                        )
            if progress is not None and dt.comm.rank == 0:
                progress({
                    "step": iteration * ndim + n + 1,
                    "total_steps": max_iters * ndim,
                    "iteration": iteration,
                    "mode": n,
                    "ranks": tuple(ranks),
                    "seconds": time.perf_counter() - mode_start,
                })
        assert core is not None
        fit = core.norm() / norm_x if norm_x > 0 else 1.0
        fits.append(float(fit))
        if iteration > 0 and abs(fits[-1] - fits[-2]) < fit_tol:
            converged = True
            break

    return ParallelHooiResult(
        core=core,
        factors=tuple(factors),
        fits=fits,
        converged=converged,
        iterations=len(fits),
        method=method,
        precision=resolve_precision(dt.dtype),
        norm_x=norm_x,
        flops=counter,
        timer=timer,
    )
