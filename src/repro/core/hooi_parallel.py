"""Distributed HOOI on the simulated MPI runtime.

The alternating refinement of :mod:`repro.core.hooi` built from the
distributed kernels: mode contractions via the parallel TTM (fiber
reduce-scatter), per-mode SVDs via parallel QR-SVD/Gram-SVD (butterfly
TSQR or Gram allreduce + redundant small decomposition), and fit
tracking via the distributed norm.  All reductions are deterministic, so
factor matrices and the convergence decision are bitwise replicated —
no rank ever disagrees about when to stop.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import (
    FlopCounter,
    PhaseTimer,
    PHASE_TTM,
    PHASE_LQ,
    PHASE_GRAM,
    PHASE_COMM,
)
from ..obs.tracer import current_tracer, trace_span
from ..precision import Precision, resolve_precision
from ..dist.dtensor import DistributedTensor
from ..dist.ttm import par_ttm_truncate
from ..faults.guards import guarded_mode_svd
from .sthosvd_parallel import sthosvd_parallel
from .tucker import TuckerTensor

__all__ = ["ParallelHooiResult", "hooi_parallel"]


@dataclass
class ParallelHooiResult:
    """Per-rank result of a distributed HOOI run (factors replicated)."""

    core: DistributedTensor
    factors: tuple[np.ndarray, ...]
    fits: list[float]
    converged: bool
    iterations: int
    method: str
    precision: Precision
    norm_x: float
    flops: FlopCounter = field(default_factory=FlopCounter)
    timer: PhaseTimer = field(default_factory=PhaseTimer)
    numeric_recoveries: list = field(default_factory=list)

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.core.global_shape

    @property
    def final_fit(self) -> float:
        return self.fits[-1] if self.fits else 0.0

    def to_tucker(self) -> TuckerTensor:
        """Assemble a replicated TuckerTensor (collective core gather)."""
        return TuckerTensor(core=self.core.gather(), factors=self.factors)


def hooi_parallel(
    dt: DistributedTensor,
    ranks: Sequence[int],
    *,
    method: str = "qr",
    init: str = "sthosvd",
    max_iters: int = 25,
    fit_tol: float = 1e-9,
    backend: str = "lapack",
    svd_strategy: str = "replicated",
    progress: Callable[[dict], None] | None = None,
    checkpoint=None,
    resume: dict | None = None,
) -> ParallelHooiResult:
    """Distributed rank-constrained Tucker refinement (collective).

    ``svd_strategy`` selects how per-mode factors replicate:
    ``"replicated"`` decomposes redundantly on every rank (paper
    default); ``"root_bcast"`` decomposes on rank 0 and broadcasts the
    bitwise-identical factors through the adaptive collective engine.

    ``progress`` is called on rank 0 only, once per refreshed mode,
    with ``{"step", "total_steps", "iteration", "mode", "ranks",
    "seconds"}`` (``total_steps`` assumes ``max_iters`` full sweeps;
    early convergence just stops emitting).

    ``checkpoint`` is an optional
    :class:`~repro.faults.DistributedCheckpoint` saved once per
    completed sweep at *iteration* granularity: the blocks are the
    input tensor itself (each sweep recontracts from ``dt``), the meta
    carries factors, fits, and the input norm.  ``resume`` is the
    recovered meta; the ST-HOSVD initialization is then skipped and the
    sweep loop restarts at the recorded iteration.  See
    :func:`repro.core.ft.hooi_fault_tolerant` for the full recovery
    loop.
    """
    if method not in ("qr", "gram"):
        raise ConfigurationError(
            f"parallel HOOI supports methods ('qr', 'gram'), got {method!r}"
        )
    if init not in ("sthosvd",):
        raise ConfigurationError("parallel HOOI supports init='sthosvd'")
    if max_iters < 1:
        raise ConfigurationError("max_iters must be at least 1")
    ndim = dt.ndim
    ranks = tuple(int(r) for r in ranks)
    if len(ranks) != ndim:
        raise ConfigurationError(f"need {ndim} ranks, got {len(ranks)}")
    for n, (r, i) in enumerate(zip(ranks, dt.global_shape)):
        if not 1 <= r <= i:
            raise ConfigurationError(f"rank {r} invalid for mode {n} of size {i}")

    counter = FlopCounter()
    timer = PhaseTimer()

    recoveries: list = []
    if resume is not None:
        # Restored state replays the interrupted sweep exactly: the
        # recorded norm keeps fit values (and hence the convergence
        # decision) identical to what the unfailed run would produce.
        norm_x = float(resume["norm_x"])
        factors = [np.asarray(f) for f in resume["factors"]]
        fits = [float(f) for f in resume["fits"]]
        start_iter = int(resume["iteration"])
        recoveries = list(resume.get("numeric_recoveries", []))
    else:
        norm_x = dt.norm()
        seed = sthosvd_parallel(
            dt, ranks=ranks, method=method, backend=backend,
            svd_strategy=svd_strategy,
        )
        factors = list(seed.factors)
        counter.merge(seed.flops)
        fits = []
        start_iter = 0

    def ckpt_meta(iteration: int) -> dict:
        return {
            "iteration": iteration,
            "factors": list(factors),
            "fits": list(fits),
            "norm_x": norm_x,
            "numeric_recoveries": list(recoveries),
        }

    if checkpoint is not None:
        checkpoint.save(dt, start_iter, meta=ckpt_meta(start_iter))

    tracer = current_tracer()
    svd_phase = PHASE_LQ if method == "qr" else PHASE_GRAM
    converged = False
    core: DistributedTensor | None = None
    for iteration in range(start_iter, max_iters):
        for n in range(ndim):
            mode_start = time.perf_counter()
            with trace_span("hooi.mode", mode=n, iteration=iteration):
                partial = dt
                for k in range(ndim):
                    if k == n:
                        continue
                    mark = tracer.local_mark() if tracer is not None else 0
                    with timer.phase(PHASE_TTM, k):
                        partial = par_ttm_truncate(
                            partial, factors[k], k, counter=counter
                        )
                    if tracer is not None:
                        timer.attribute_comm(
                            tracer.local_phase_seconds(PHASE_COMM, since=mark),
                            PHASE_TTM, k,
                        )
                mark = tracer.local_mark() if tracer is not None else 0
                with timer.phase(svd_phase, n):
                    U, _sigma, recovered = guarded_mode_svd(
                        partial, n, method=method, backend=backend,
                        svd_strategy=svd_strategy, counter=counter,
                    )
                recoveries.extend(
                    f"iter{iteration}:mode{n}:{action}" for action in recovered
                )
                if tracer is not None:
                    timer.attribute_comm(
                        tracer.local_phase_seconds(PHASE_COMM, since=mark),
                        svd_phase, n,
                    )
                factors[n] = np.ascontiguousarray(U[:, : ranks[n]])
                if n == ndim - 1:
                    mark = tracer.local_mark() if tracer is not None else 0
                    with timer.phase(PHASE_TTM, n):
                        core = par_ttm_truncate(
                            partial, factors[n], n, counter=counter
                        )
                    if tracer is not None:
                        timer.attribute_comm(
                            tracer.local_phase_seconds(PHASE_COMM, since=mark),
                            PHASE_TTM, n,
                        )
            if progress is not None and dt.comm.rank == 0:
                progress({
                    "step": iteration * ndim + n + 1,
                    "total_steps": max_iters * ndim,
                    "iteration": iteration,
                    "mode": n,
                    "ranks": tuple(ranks),
                    "seconds": time.perf_counter() - mode_start,
                })
        assert core is not None
        fit = core.norm() / norm_x if norm_x > 0 else 1.0
        fits.append(float(fit))
        if checkpoint is not None:
            checkpoint.save(dt, iteration + 1, meta=ckpt_meta(iteration + 1))
        if iteration > 0 and abs(fits[-1] - fits[-2]) < fit_tol:
            converged = True
            break

    return ParallelHooiResult(
        core=core,
        factors=tuple(factors),
        fits=fits,
        converged=converged,
        iterations=len(fits),
        method=method,
        precision=resolve_precision(dt.dtype),
        norm_x=norm_x,
        flops=counter,
        timer=timer,
        numeric_recoveries=recoveries,
    )
