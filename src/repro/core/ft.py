"""Fault-tolerant driver loop: run, and on rank failure shrink + resume.

The parallel drivers themselves are fail-stop: a dead partner surfaces
as :class:`~repro.errors.RankFailedError` out of whatever collective
touched it.  This module wraps them in the ULFM-style recovery loop:

1. every survivor catches the failure, **revokes** the current
   communicator epoch (unblocking peers stuck in stale collectives),
   and joins the **shrink** rendezvous, producing a dense-ranked
   communicator of the survivors;
2. the newest complete :class:`~repro.faults.DistributedCheckpoint`
   step is reassembled on the shrunk world's root — the dead rank's
   block survives in its buddy's store;
3. the tensor is redistributed over whatever grid the survivors form,
   and the driver resumes from the recorded step with the replicated
   factors restored.

Call these from inside an SPMD program (they are collective over
``comm``); the input tensor lives on the root rank, exactly like
:func:`repro.dist.redistribute.distribute_from_root`:

>>> def program(comm):
...     res = sthosvd_fault_tolerant(comm, X if comm.rank == 0 else None,
...                                  tol=1e-5, method="qr")
...     return res.result.estimated_rel_error()
>>> run_spmd(program, 4, faults=plan, resilience=True)

Because recovery re-plans the processor grid for the shrunk world and
resumes from a replicated checkpoint, the surviving ranks complete the
decomposition with no participation from the dead rank — the injected
crash costs one repeated mode (or sweep) plus the redistribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import RankFailedError
from ..dist.dtensor import GridComms
from ..dist.grid import ProcessorGrid
from ..dist.redistribute import distribute_from_root
from ..faults.checkpoint import DistributedCheckpoint
from ..obs.tracer import trace_span
from .hooi_parallel import ParallelHooiResult, hooi_parallel
from .sthosvd_parallel import ParallelSthosvdResult, sthosvd_parallel

__all__ = [
    "FaultTolerantResult",
    "sthosvd_fault_tolerant",
    "hooi_fault_tolerant",
]


@dataclass
class FaultTolerantResult:
    """A driver result plus the recovery history that produced it.

    ``comm`` is the communicator the run *finished* on — the original
    world when nothing failed, else the latest shrunk communicator
    (``result.core`` is distributed over it).  ``events`` records one
    entry per recovery: ``("rank_failure", {...})`` with the survivor
    count and the step resumed from.
    """

    result: Any
    comm: Any
    recoveries: int = 0
    events: list = field(default_factory=list)


def _recover_loop(comm, full, run, *, max_recoveries: int, ckpt,
                  recover: str = "shrink"):
    """Shared run/catch/recover/resume loop for both drivers.

    ``run(comm, full, resume)`` executes one attempt over a freshly
    built grid and returns the driver result; ``full`` is the (root
    only) tensor the attempt distributes.

    ``recover`` picks what the survivors rebuild after revoking the
    failed epoch: ``"shrink"`` produces a dense-ranked communicator of
    the survivors (the world gets smaller), ``"replace"`` asks the
    transport to respawn the dead rank and rebuilds the full-size world
    (the grid keeps its original shape).  A respawned replacement
    replays the whole program from the top: its first operation on the
    revoked world raises :class:`~repro.errors.CommRevokedError`, which
    lands it in this same handler to join the replace rendezvous.
    """
    if recover not in ("shrink", "replace"):
        raise ValueError(
            f"recover must be 'shrink' or 'replace', got {recover!r}")
    resume = None
    recoveries = 0
    events: list = []
    original: RankFailedError | None = None
    if full is not None:
        # Pin the *input* fingerprint before any resume swaps ``full``
        # for a recovered (already-truncated) tensor; the root's
        # manifest writes carry it so restart-from-disk can refuse a
        # checkpoint belonging to a different run.
        ckpt.input_info = {
            "shape": tuple(int(s) for s in full.shape),
            "dtype": np.dtype(full.dtype).name,
        }
    if ckpt.ckpt_dir is not None:
        # Restart-from-disk: a brand-new world (e.g. relaunched after a
        # total crash) picks up from the newest committed manifest; a
        # fresh directory resumes nothing and runs from scratch.
        try:
            with trace_span("ft.resume_disk"):
                disk = ckpt.resume_from_disk(comm, full)
        except RankFailedError:
            # A replacement replaying the program (or a survivor racing
            # a concurrent failure) trips the revoked epoch here; the
            # loop below recovers from the in-memory tier instead.
            disk = None
        if disk is not None:
            step, resume, recovered = disk
            if comm.rank == 0:
                full = recovered
            events.append((
                "disk_resume",
                {"resumed_step": step, "ckpt_dir": ckpt.ckpt_dir},
            ))
    pending: RankFailedError | None = None
    while True:
        try:
            if pending is not None:
                with trace_span("ft.recover", attempt=recoveries,
                                mode=recover):
                    # Revoke before rebuilding: peers still blocked
                    # inside the dead epoch's collectives wake with
                    # CommRevokedError (a RankFailedError) and land in
                    # this same handler.  The whole recovery sequence
                    # runs inside the try: a *second* failure mid-
                    # recovery (e.g. the replacement dying during the
                    # checkpoint reassembly) loops back into another
                    # cycle instead of escaping.
                    comm.revoke()
                    if recover == "replace":
                        comm = comm.replace()
                    else:
                        comm = comm.shrink()
                    step, meta, recovered = ckpt.recover(comm, root=0)
                    # Re-arm the buddy invariant: entries whose second
                    # copy died with the failed rank get a fresh
                    # replica, so the *next* failure cannot take the
                    # last surviving copy.
                    ckpt.rebalance(comm)
                resume = meta
                full = recovered if comm.rank == 0 else None
                events.append((
                    "rank_failure",
                    {
                        "recovery": recoveries,
                        "mode": recover,
                        "survivors": comm.size,
                        "resumed_step": step,
                        "cause": f"{type(pending).__name__}: {pending}",
                    },
                ))
                pending = None
            result = run(comm, full, resume)
            return FaultTolerantResult(
                result=result, comm=comm, recoveries=recoveries, events=events,
            )
        except RankFailedError as exc:
            if original is None:
                original = exc
            recoveries += 1
            if recoveries > max_recoveries:
                # Surface the failure that started the cascade, carrying
                # the recovery history — not whatever secondary error
                # the last doomed retry happened to die of.
                original.recovery_history = tuple(events)
                if exc is original:
                    raise
                raise original from exc
            pending = exc


def _bcast_ndim(comm, full) -> int:
    return int(comm.bcast(full.ndim if comm.rank == 0 else None, root=0))


def sthosvd_fault_tolerant(
    comm,
    full,
    *,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    method: str = "qr",
    mode_order="forward",
    backend: str = "lapack",
    svd_strategy: str = "replicated",
    max_recoveries: int = 2,
    checkpoint_name: str = "sthosvd",
    checkpoint_keep: int = 2,
    recover: str = "shrink",
    ckpt_dir: str | None = None,
    progress: Callable[[dict], None] | None = None,
) -> FaultTolerantResult:
    """Fault-tolerant parallel ST-HOSVD (collective over ``comm``).

    ``full`` is the input tensor on ``comm``'s rank 0 (None elsewhere).
    Decomposition arguments match :func:`~repro.core.sthosvd_parallel.
    sthosvd_parallel`.  Up to ``max_recoveries`` rank failures are
    survived; one more re-raises the *original* :class:`~repro.errors.
    RankFailedError` with ``recovery_history`` attached.  The returned
    ``result`` is a :class:`~repro.core.sthosvd_parallel.
    ParallelSthosvdResult` whose core is distributed over
    ``FaultTolerantResult.comm``.

    ``recover="replace"`` respawns dead ranks instead of shrinking (the
    grid keeps its shape; needs a transport with respawn support —
    every ``run_spmd`` backend qualifies).  ``ckpt_dir`` adds the
    durable tier: checkpoints also land on disk, and a brand-new
    invocation pointed at the same directory resumes from the newest
    committed manifest.
    """
    ckpt = DistributedCheckpoint(
        checkpoint_name, keep=checkpoint_keep, ckpt_dir=ckpt_dir)

    def run(comm, full, resume) -> ParallelSthosvdResult:
        # ndim is derived inside the attempt: a replacement's first
        # collective must happen where the recovery loop can catch the
        # revoked-epoch error and route it into the replace rendezvous.
        grid = ProcessorGrid.for_size(comm.size, _bcast_ndim(comm, full))
        comms = GridComms(comm, grid)
        dt = distribute_from_root(comms, full, root=0)
        return sthosvd_parallel(
            dt, tol=tol, ranks=ranks, method=method, mode_order=mode_order,
            backend=backend, svd_strategy=svd_strategy, progress=progress,
            checkpoint=ckpt, resume=resume,
        )

    return _recover_loop(comm, full, run, max_recoveries=max_recoveries,
                         ckpt=ckpt, recover=recover)


def hooi_fault_tolerant(
    comm,
    full,
    ranks: Sequence[int],
    *,
    method: str = "qr",
    init: str = "sthosvd",
    max_iters: int = 25,
    fit_tol: float = 1e-9,
    backend: str = "lapack",
    svd_strategy: str = "replicated",
    max_recoveries: int = 2,
    checkpoint_name: str = "hooi",
    checkpoint_keep: int = 2,
    recover: str = "shrink",
    ckpt_dir: str | None = None,
    progress: Callable[[dict], None] | None = None,
) -> FaultTolerantResult:
    """Fault-tolerant distributed HOOI (collective over ``comm``).

    ``full`` is the input tensor on rank 0.  Checkpoints are taken per
    completed sweep, so a failure costs at most one repeated sweep plus
    the recovery redistribution.  ``recover`` and ``ckpt_dir`` behave
    exactly as in :func:`sthosvd_fault_tolerant`.
    """
    ckpt = DistributedCheckpoint(
        checkpoint_name, keep=checkpoint_keep, ckpt_dir=ckpt_dir)

    def run(comm, full, resume) -> ParallelHooiResult:
        grid = ProcessorGrid.for_size(comm.size, _bcast_ndim(comm, full))
        comms = GridComms(comm, grid)
        dt = distribute_from_root(comms, full, root=0)
        return hooi_parallel(
            dt, ranks, method=method, init=init, max_iters=max_iters,
            fit_tol=fit_tol, backend=backend, svd_strategy=svd_strategy,
            progress=progress, checkpoint=ckpt, resume=resume,
        )

    return _recover_loop(comm, full, run, max_recoveries=max_recoveries,
                         ckpt=ckpt, recover=recover)
