"""Tucker recompression (rounding): re-truncate without the original data.

A compressed archive at tolerance 1e-6 contains everything needed to
produce the 1e-4 or fixed-rank version: because the factors have
orthonormal columns, the approximation error of truncating the *core*
adds orthogonally to the existing error.  So recompression is just
ST-HOSVD of the (small) core followed by factor merging:

    X ≈ G x_n U_n,   G ≈ H x_n V_n   ⇒   X ≈ H x_n (U_n V_n)

This is the tensor analogue of TT-rounding and the standard way archives
are served at multiple fidelities from a single tight-tolerance master.
The total error is bounded by ``sqrt(old² + new²)`` of the relative
errors (orthogonal components), which the function reports.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from .sthosvd import sthosvd
from .tucker import TuckerTensor

__all__ = ["recompress"]


def recompress(
    tucker: TuckerTensor,
    *,
    tol: float | None = None,
    ranks: Sequence[int] | None = None,
    method: str = "qr",
    prior_rel_error: float = 0.0,
) -> tuple[TuckerTensor, float]:
    """Further truncate a Tucker decomposition using only its own data.

    Parameters
    ----------
    tucker:
        The existing decomposition (e.g. loaded from an archive).
    tol:
        Relative tolerance for the *core* truncation.  Note the
        original data's norm is within ``(1 ± prior)`` of the core's, so
        for loose retargets this is effectively the new overall target.
    ranks:
        Fixed target ranks instead of a tolerance (must not exceed the
        current ranks — recompression only shrinks).
    method:
        Per-mode SVD algorithm for the core's ST-HOSVD.
    prior_rel_error:
        The archive's own relative error (from its manifest); folded
        into the returned bound.

    Returns
    -------
    (TuckerTensor, float)
        The recompressed decomposition and the bound
        ``sqrt(prior^2 + new_core_error^2)`` on its relative error
        with respect to the *original* data.
    """
    if ranks is not None:
        ranks = tuple(int(r) for r in ranks)
        if len(ranks) != tucker.ndim:
            raise ConfigurationError(
                f"need {tucker.ndim} ranks, got {len(ranks)}"
            )
        for n, (r, cur) in enumerate(zip(ranks, tucker.ranks)):
            if r > cur:
                raise ConfigurationError(
                    f"recompression cannot grow mode {n}: {r} > current {cur}"
                )
    res = sthosvd(tucker.core, tol=tol, ranks=ranks, method=method)
    merged = tuple(
        np.ascontiguousarray(U @ V)
        for U, V in zip(tucker.factors, res.tucker.factors)
    )
    new_core_err = res.estimated_rel_error()
    bound = float(np.sqrt(prior_rel_error**2 + new_core_err**2))
    return TuckerTensor(core=res.tucker.core, factors=merged), bound
