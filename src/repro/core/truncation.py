"""Error-driven rank selection (line 5 of ST-HOSVD, Alg. 1).

Given the singular values of the mode-``n`` unfolding, the retained rank
is the smallest ``R`` whose discarded tail satisfies

    sum_{i >= R} sigma_i^2  <=  eps^2 * ||X||^2 / N

so that the per-mode truncation errors, which are mutually orthogonal,
add up to at most ``eps^2 ||X||^2`` overall [28].  Tail sums are
accumulated in float64 regardless of working precision — the sums
themselves should not add roundoff on top of the already-noisy computed
singular values (whose noise floors are the subject of the paper).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["error_budget_per_mode", "choose_rank", "tail_energy"]


def error_budget_per_mode(norm_x_squared: float, tol: float, n_modes: int) -> float:
    """Per-mode squared error allowance ``tol^2 * ||X||^2 / N``."""
    if tol < 0:
        raise ConfigurationError(f"tolerance must be non-negative, got {tol}")
    if n_modes <= 0:
        raise ConfigurationError("tensor must have at least one mode")
    if norm_x_squared < 0:
        raise ConfigurationError("squared norm cannot be negative")
    return (tol * tol) * norm_x_squared / n_modes


def tail_energy(sigma: np.ndarray) -> np.ndarray:
    """``tail[r] = sum_{i >= r} sigma_i^2`` in float64 (length ``len(sigma)+1``).

    ``tail[0]`` is the total energy; ``tail[len(sigma)]`` is 0.
    """
    s2 = np.asarray(sigma, dtype=np.float64) ** 2
    out = np.zeros(len(s2) + 1)
    out[:-1] = np.cumsum(s2[::-1])[::-1]
    return out


def choose_rank(sigma: np.ndarray, budget: float) -> int:
    """Smallest rank whose discarded tail energy fits within ``budget``.

    ``sigma`` must be sorted in decreasing order (as all SVD routines in
    this package return).  At least rank 1 is always retained, matching
    TuckerMPI: a mode is never eliminated entirely.
    """
    if budget < 0:
        raise ConfigurationError(f"budget must be non-negative, got {budget}")
    sigma = np.asarray(sigma)
    if sigma.ndim != 1 or sigma.size == 0:
        raise ConfigurationError("sigma must be a nonempty vector")
    if np.any(np.diff(sigma.astype(np.float64)) > 0):
        raise ConfigurationError("singular values must be sorted in decreasing order")
    tails = tail_energy(sigma)
    # smallest R with tails[R] <= budget
    candidates = np.nonzero(tails <= budget)[0]
    r = int(candidates[0]) if candidates.size else len(sigma)
    return max(r, 1)
