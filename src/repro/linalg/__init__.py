"""Numerical linear algebra kernels: Householder QR/LQ, tpqrt, Gram, SVDs."""

from .householder import (
    householder_reflector,
    qr_factor,
    lq_factor,
    qr_r,
    lq_l,
    form_q,
    form_q_lq,
)
from .tpqrt import tpqrt, tpqrt_reduce_triangles
from .qr import geqr, gelq, BACKENDS
from .gram import gram_matrix, tensor_gram
from .tensor_lq import tensor_lq, tensor_lq_binary_tree
from .svd import (
    svd_from_gram,
    left_svd_of_triangle,
    gram_svd,
    qr_svd,
    tensor_gram_svd,
    tensor_qr_svd,
)
from .jacobi import jacobi_left_svd, jacobi_orthogonalize_pairs
from .blocked import qr_factor_blocked, qr_r_blocked, build_t_factor
from .apply_q import apply_q, apply_q_lq
from .randomized import randomized_left_svd, tensor_randomized_svd
from .accuracy import (
    singular_value_floor,
    trustworthy_count,
    min_reachable_tolerance,
    subspace_angle,
)
from . import flops

__all__ = [
    "householder_reflector",
    "qr_factor",
    "lq_factor",
    "qr_r",
    "lq_l",
    "form_q",
    "form_q_lq",
    "tpqrt",
    "tpqrt_reduce_triangles",
    "geqr",
    "gelq",
    "BACKENDS",
    "gram_matrix",
    "tensor_gram",
    "tensor_lq",
    "tensor_lq_binary_tree",
    "svd_from_gram",
    "left_svd_of_triangle",
    "gram_svd",
    "qr_svd",
    "tensor_gram_svd",
    "tensor_qr_svd",
    "jacobi_left_svd",
    "jacobi_orthogonalize_pairs",
    "qr_factor_blocked",
    "qr_r_blocked",
    "build_t_factor",
    "apply_q",
    "apply_q_lq",
    "randomized_left_svd",
    "tensor_randomized_svd",
    "singular_value_floor",
    "trustworthy_count",
    "min_reachable_tolerance",
    "subspace_angle",
    "flops",
]
