"""Randomized SVD (Halko-Martinsson-Tropp) — the paper's suggested comparator.

The conclusion notes that "for large tolerances where Gram single is the
preferred method, alternatives such as randomized and iterative
algorithms are likely to be competitive and should be compared against."
This module provides that comparison point: a randomized range finder
with oversampling and optional power iterations, specialized — like
everything else here — to short-fat matrices where only singular values
and left singular vectors are needed.

For an ``m x n`` matrix with target rank ``r`` the cost is
``O(m n (r + oversample))`` — *less* than both Gram-SVD (``m^2 n``) and
QR-SVD (``2 m^2 n``) whenever ``r << m`` — at the price of a
probabilistic error guarantee tied to the singular value decay.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ShapeError
from ..instrument import FlopCounter, PHASE_SVD
from ..tensor.dense import DenseTensor
from ..util.rng import default_rng
from .flops import gemm_flops, qr_flops, svd_flops

__all__ = ["randomized_left_svd", "tensor_randomized_svd"]


def randomized_left_svd(
    A: np.ndarray,
    rank: int,
    *,
    oversample: int = 10,
    power_iters: int = 1,
    rng=None,
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Approximate leading left singular vectors/values of ``A``.

    Row-space sketch for a short-fat matrix: draw ``Omega`` of shape
    ``n x (rank + oversample)``, form ``Y = A Omega``, orthonormalize,
    optionally refine with power iterations (each a multiply by
    ``A A^T``), then SVD the small projected matrix ``Q^T A``.

    Returns ``(U, sigma)`` with ``rank`` columns/entries.  The working
    precision follows ``A``; the Gaussian sketch is drawn in float64 and
    cast, so single-precision runs exercise single-precision arithmetic
    end to end.
    """
    A = np.asarray(A)
    if A.ndim != 2:
        raise ShapeError("randomized SVD expects a matrix")
    m, n = A.shape
    if not 1 <= rank <= min(m, n):
        raise ConfigurationError(f"rank {rank} invalid for {m}x{n} matrix")
    if oversample < 0 or power_iters < 0:
        raise ConfigurationError("oversample and power_iters must be non-negative")
    rng = default_rng(rng)
    k = min(rank + oversample, min(m, n))

    Omega = rng.standard_normal((n, k)).astype(A.dtype, copy=False)
    Y = A @ Omega  # (m, k)
    Q = np.linalg.qr(Y)[0]
    for _ in range(power_iters):
        Z = A.T @ Q
        Q = np.linalg.qr(A @ Z)[0]
    B = Q.T @ A  # (k, n)
    Ub, sigma, _ = np.linalg.svd(B, full_matrices=False)
    U = Q @ Ub[:, :rank]
    if counter is not None:
        fl = gemm_flops(m, n, k) + qr_flops(m, k) + gemm_flops(k, m, n)
        fl += power_iters * (gemm_flops(n, m, k) + gemm_flops(m, n, k) + qr_flops(m, k))
        fl += svd_flops(k, n)
        counter.add(fl, phase=PHASE_SVD, mode=mode)
    return U, sigma[:rank]


def tensor_randomized_svd(
    tensor: DenseTensor,
    n: int,
    rank: int,
    *,
    oversample: int = 10,
    power_iters: int = 1,
    rng=None,
    counter: FlopCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Randomized left SVD of the mode-``n`` unfolding.

    The sketch multiply streams through the unfolding's contiguous
    column blocks (no unfolding copy), like the Gram and LQ kernels.
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    rows = tensor.shape[n]
    cols = tensor.size // rows
    if not 1 <= rank <= min(rows, cols):
        raise ConfigurationError(f"rank {rank} invalid for mode {n}")
    # The unfolding view is assembled blockwise only for the sketch
    # product; for the moderate surrogate sizes here an explicit view is
    # acceptable and keeps the code direct.
    Y = tensor.unfold(n)
    return randomized_left_svd(
        Y, rank, oversample=oversample, power_iters=power_iters, rng=rng,
        counter=counter, mode=n,
    )
