"""Flop-count formulas for the kernels used by ST-HOSVD (Sec. 3.5).

Counts follow the standard LAPACK conventions (Golub & Van Loan):

* Householder QR of an ``m x n`` tall matrix (``m >= n``), R only:
  ``2 m n^2 - (2/3) n^3``.
* LQ of a short-fat ``m x n`` (``m <= n``): same with roles swapped:
  ``2 n m^2 - (2/3) m^3``.
* Gram matrix (syrk) of ``m x n``: ``n m^2`` (symmetric half).
* ``tpqrt`` of an upper-triangular ``n x n`` on top of a pentagonal
  ``m x n`` block whose last ``l`` rows are triangular: the structured
  count below.
* Symmetric eigendecomposition (values + vectors) of ``n x n``: ``~9 n^3``.
* SVD of a square ``n x n`` (values + left vectors): ``~12 n^3``.

These are used both for counter-based verification in tests and by the
performance model to convert algorithm schedules into modeled time.
"""

from __future__ import annotations

__all__ = [
    "qr_flops",
    "lq_flops",
    "gram_flops",
    "tpqrt_flops",
    "eigh_flops",
    "svd_flops",
    "gemm_flops",
]


def qr_flops(m: int, n: int) -> int:
    """Householder QR (R only) of an ``m x n`` matrix with ``m >= n``."""
    if m < n:
        raise ValueError("qr_flops expects a tall (or square) matrix")
    return int(2 * m * n * n - (2 * n**3) // 3)


def lq_flops(m: int, n: int) -> int:
    """Householder LQ (L only) of an ``m x n`` matrix with ``m <= n``."""
    if m > n:
        raise ValueError("lq_flops expects a short-fat (or square) matrix")
    return int(2 * n * m * m - (2 * m**3) // 3)


def gram_flops(m: int, n: int) -> int:
    """syrk computing the ``m x m`` Gram matrix of an ``m x n`` unfolding."""
    return int(n * m * m)


def tpqrt_flops(n: int, m: int, l: int = 0) -> int:
    """Structured QR of ``[R; B]``: ``R`` upper-triangular ``n x n``, ``B``
    ``m x n`` pentagonal whose last ``l`` rows are upper-trapezoidal.

    For column ``j`` the reflector touches ``R[j, j]`` plus the nonzero
    rows of ``B[:, j]`` (all ``m`` rows when rectangular; ``j+1`` rows of
    a triangular block); the trailing update applies it to ``n - j - 1``
    remaining columns at ``~4 rows_j`` flops per column.

    The two cases of interest:

    * rectangular ``B`` (``l = 0``): ``~2 n^2 m`` flops (tall-matrix cost
      of annihilating a full block against a triangle);
    * triangular ``B`` (``l = m = n``): ``~(2/3) n^3`` flops, the TSQR
      tree-reduction cost.
    """
    if l < 0 or l > min(m, n):
        raise ValueError("pentagonal height l must satisfy 0 <= l <= min(m, n)")
    total = 0
    for j in range(n):
        if l == 0:
            rows = m
        else:
            # rows of B with structural nonzeros in column j: the m - l
            # rectangular rows plus up to j+1 rows of the trapezoid.
            rows = (m - l) + min(j + 1, l)
        # reflector formation ~3*rows, trailing update 4*rows per column
        total += 3 * rows + 4 * rows * (n - j - 1)
    return int(total)


def eigh_flops(n: int) -> int:
    """Symmetric eigendecomposition (values and vectors) of ``n x n``."""
    return int(9 * n**3)


def svd_flops(m: int, n: int, *, vectors: str = "left") -> int:
    """Dense SVD cost of an ``m x n`` matrix.

    ``vectors='left'`` (singular values + U only): the paper's use case
    after the LQ reduction, costed at ``~12 min(m,n)^2 max(m,n)``.
    """
    small, big = (m, n) if m <= n else (n, m)
    if vectors == "none":
        return int(4 * small * small * big)
    return int(12 * small * small * big)


def gemm_flops(m: int, k: int, n: int) -> int:
    """General matrix product ``(m x k) @ (k x n)``."""
    return int(2 * m * k * n)
