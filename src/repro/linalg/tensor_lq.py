"""Sequential LQ of a tensor unfolding — paper Algorithm 2.

The mode-``n`` unfolding of a natural-layout tensor is a sequence of
contiguous row-major column blocks.  TensorLQ reduces it to a single
``I_n x I_n`` lower-triangular factor with a flat-tree TSQR:

* ``n == 0``: the unfolding is one column-major matrix — direct ``gelq``;
* ``n == N-1``: one row-major matrix — direct ``geqr`` of the transposed
  view (the paper calls ``geqr`` because it respects the layout);
* otherwise: LQ of the first block group, then one ``tpqrt`` update per
  remaining block, streaming through the tensor exactly once.

If the first block is not short-fat, as many blocks as necessary are
combined before the first factorization (Sec. 3.3, last paragraph).
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ShapeError
from ..instrument import FlopCounter, PHASE_LQ
from ..obs.tracer import trace_span
from ..tensor.dense import DenseTensor
from .qr import geqr, gelq
from .tpqrt import tpqrt

__all__ = ["tensor_lq", "tensor_lq_binary_tree"]


def tensor_lq_binary_tree(
    tensor: DenseTensor,
    n: int,
    *,
    backend: str = "lapack",
    counter: FlopCounter | None = None,
    leaf_cols: int | None = None,
) -> np.ndarray:
    """Binary-tree TSQR variant of :func:`tensor_lq` (ablation comparator).

    Where the flat tree folds each block into one running triangle, the
    binary tree factors leaf chunks independently and pairwise-reduces
    their triangles (``tpqrt`` on two stacked triangles) up a balanced
    tree — the sequential analogue of the parallel butterfly.  Same
    result (up to signs), same leading-order flops; the flat tree is the
    cache-friendly choice for streaming (one pass, one live triangle),
    the binary tree exposes task parallelism.
    """
    from .tpqrt import tpqrt_reduce_triangles

    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    ndim = tensor.ndim
    if not 0 <= n < ndim:
        raise ShapeError(f"mode {n} out of range for {ndim}-mode tensor")
    rows = tensor.shape[n]
    if tensor.size == 0:
        return np.zeros((rows, 0 if rows else 0), dtype=tensor.dtype)
    Y = tensor.unfold(n)
    cols = Y.shape[1]
    if cols <= rows:
        return gelq(Y, backend=backend, counter=counter, mode=n)
    if leaf_cols is None:
        leaf_cols = max(rows, 256)
    leaf_cols = max(leaf_cols, rows)

    # Leaf factorizations.
    triangles = []
    for c0 in range(0, cols, leaf_cols):
        chunk = Y[:, c0 : c0 + leaf_cols]
        L = gelq(np.ascontiguousarray(chunk), backend=backend,
                 counter=counter, mode=n)
        Rt = np.zeros((rows, rows), dtype=tensor.dtype)
        Rt[: L.shape[1], :] = np.triu(L.T, 0)[: L.shape[1], :]
        triangles.append(Rt)

    # Balanced pairwise reduction.
    while len(triangles) > 1:
        nxt = []
        for i in range(0, len(triangles) - 1, 2):
            nxt.append(
                tpqrt_reduce_triangles(
                    triangles[i], triangles[i + 1], counter=counter, mode=n
                )
            )
        if len(triangles) % 2:
            nxt.append(triangles[-1])
        triangles = nxt
    return np.ascontiguousarray(np.tril(triangles[0].T))


def tensor_lq(
    tensor: DenseTensor,
    n: int,
    *,
    backend: str = "lapack",
    counter: FlopCounter | None = None,
) -> np.ndarray:
    """Lower-triangular L with ``Y_(n) = L Q`` for the mode-``n`` unfolding.

    Returns an ``I_n x I_n`` lower triangle (lower trapezoid
    ``I_n x cols`` in the degenerate case where the whole unfolding has
    fewer columns than rows).  Q is never formed.
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    ndim = tensor.ndim
    if not 0 <= n < ndim:
        raise ShapeError(f"mode {n} out of range for {ndim}-mode tensor")
    with trace_span("tensor_lq", phase=PHASE_LQ, mode=n):
        return _tensor_lq_impl(tensor, n, backend=backend, counter=counter)


def _tensor_lq_impl(
    tensor: DenseTensor,
    n: int,
    *,
    backend: str,
    counter: FlopCounter | None,
) -> np.ndarray:
    ndim = tensor.ndim
    rows = tensor.shape[n]

    if tensor.size == 0:
        # Degenerate local blocks occur in distributed runs when a mode's
        # rank is smaller than its processor-fiber size: the unfolding
        # has zero columns (or zero rows) and contributes an empty L
        # (padded to a zero triangle by the parallel reduction).
        cols = 0 if rows else tensor.size
        return np.zeros((rows, min(rows, cols)), dtype=tensor.dtype)

    if n == 0:
        # Column-major unfolding: direct LQ driver call.
        return gelq(tensor.unfold(0), backend=backend, counter=counter, mode=0)

    nblocks = tensor.num_column_blocks(n)
    bcols = tensor.size // (rows * nblocks)  # prod_before

    if n == ndim - 1:
        # Row-major unfolding (single block): QR of the transposed view.
        block = tensor.column_block(n, 0)
        R = geqr(block.T, backend=backend, counter=counter, mode=n)
        return np.ascontiguousarray(R.T)

    # General case: flat-tree TSQR over the column blocks.
    # Combine enough leading blocks that the first factorization sees a
    # short-fat (or square) matrix.
    k0 = min(nblocks, max(1, math.ceil(rows / bcols)))
    first = np.concatenate(
        [tensor.column_block(n, j) for j in range(k0)], axis=1
    )
    L = gelq(first, backend=backend, counter=counter, mode=n)
    if k0 == nblocks:
        return L
    if L.shape[0] != L.shape[1]:
        # Whole-unfolding-tall case already excluded by k0 logic; a
        # non-square L here means rows > k0*bcols with k0 == nblocks,
        # unreachable, but guard for safety.
        raise ShapeError("first block group did not produce a triangular factor")

    # Maintain R = L^T (upper triangular) and annihilate the remaining
    # blocks via QR of [R; B^T] = LQ of [L  B].  Several consecutive
    # blocks are folded into each tpqrt call: the flat tree is
    # indifferent to the pentagon height, and wider chunks amortize the
    # per-call overhead (the cache-blocking knob of the sequential TSQR).
    Rt = np.ascontiguousarray(np.triu(L.T))
    chunk_blocks = max(1, -(-max(rows, 512) // bcols))  # ceil division
    j = k0
    while j < nblocks:
        j1 = min(j + chunk_blocks, nblocks)
        run = tensor.column_block_range(n, j, j1)  # (j1-j, rows, bcols) view
        # .copy() (never a view): tpqrt annihilates its B argument in
        # place and must not touch the caller's tensor data.
        work = run.transpose(0, 2, 1).copy().reshape((j1 - j) * bcols, rows)
        tpqrt(Rt, work, structure="rect", counter=counter, mode=n)
        j = j1
    return np.ascontiguousarray(np.tril(Rt.T))
