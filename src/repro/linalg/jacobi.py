"""One-sided Jacobi SVD.

The paper's stated limitation (Sec. 5) is that the SVD of the triangular
factor is computed redundantly and sequentially on every processor,
which becomes a bottleneck "for tensors with modes that have very large
dimension, of 10,000 or more"; the suggested fix is to parallelize that
SVD.  One-sided Jacobi is the classical algorithm for this: it applies
right plane rotations until the columns of the working matrix are
orthogonal, at which point the column norms are the singular values and
the normalized columns are the **left** singular vectors — exactly the
outputs ST-HOSVD needs, with no right-vector accumulation.

Because rotations touch only two columns at a time, disjoint column
pairs can be processed concurrently — the basis of the Brent-Luk
parallel scheme in :mod:`repro.dist.jacobi`.

As a bonus, one-sided Jacobi computes small singular values to high
*relative* accuracy (better than QR iteration), so this path slightly
sharpens the paper's accuracy story rather than weakening it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, ShapeError
from ..instrument import FlopCounter, PHASE_SVD

__all__ = ["jacobi_orthogonalize_pairs", "jacobi_left_svd"]


def jacobi_orthogonalize_pairs(
    W: np.ndarray,
    pairs=None,
    *,
    tol: float | None = None,
    zero_sq: float | None = None,
) -> int:
    """Apply one Jacobi rotation to each column pair; returns rotation count.

    ``W`` is modified in place.  ``pairs`` defaults to every ``p < q``
    combination (one full sweep).  A rotation is skipped when the pair is
    already numerically orthogonal relative to ``tol`` (default: machine
    epsilon of the dtype).

    ``zero_sq`` is the squared column-norm below which a column counts as
    numerically zero *for the whole matrix* (default ``(eps ||W||_F)^2``).
    Without it, a column annihilated by an earlier rotation — parallel
    columns leave an ``eps``-level residue — would keep failing the
    relative orthogonality test forever and the sweep would never
    converge.
    """
    if W.ndim != 2:
        raise ShapeError("expected a matrix")
    n = W.shape[1]
    dt = W.dtype
    if tol is None:
        tol = float(np.finfo(dt).eps)
    if zero_sq is None:
        frob = float(np.linalg.norm(W.astype(np.float64, copy=False)))
        zero_sq = (float(np.finfo(dt).eps) * frob) ** 2
    if pairs is None:
        pairs = [(p, q) for p in range(n) for q in range(p + 1, n)]
    rotations = 0
    for p, q in pairs:
        wp = W[:, p]
        wq = W[:, q]
        app = float(wp @ wp)
        aqq = float(wq @ wq)
        apq = float(wp @ wq)
        if app <= zero_sq or aqq <= zero_sq:
            continue
        if abs(apq) <= tol * np.sqrt(app * aqq):
            continue
        zeta = (aqq - app) / (2.0 * apq)
        t = np.sign(zeta) / (abs(zeta) + np.sqrt(1.0 + zeta * zeta))
        if zeta == 0.0:
            t = 1.0
        cs = 1.0 / np.sqrt(1.0 + t * t)
        sn = cs * t
        cs = dt.type(cs)
        sn = dt.type(sn)
        new_p = cs * wp - sn * wq
        new_q = sn * wp + cs * wq
        W[:, p] = new_p
        W[:, q] = new_q
        rotations += 1
    return rotations


def jacobi_left_svd(
    A: np.ndarray,
    *,
    max_sweeps: int = 30,
    tol: float | None = None,
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Singular values and left singular vectors via one-sided Jacobi.

    Sweeps over all column pairs until a sweep applies no rotation (all
    columns mutually orthogonal to ``tol``).  Returns ``(U, sigma)``
    sorted descending; zero singular values get arbitrary orthonormal
    completion-free columns (left as zeros, which downstream truncation
    discards).

    Raises
    ------
    ConvergenceError
        If ``max_sweeps`` full sweeps do not reach orthogonality.
    """
    A = np.asarray(A)
    if A.ndim != 2:
        raise ShapeError("expected a matrix")
    W = np.array(A, order="F", copy=True)
    m, n = W.shape
    frob = float(np.linalg.norm(W.astype(np.float64, copy=False)))
    zero_sq = (float(np.finfo(W.dtype).eps) * frob) ** 2
    total_rot = 0
    for _sweep in range(max_sweeps):
        rot = jacobi_orthogonalize_pairs(W, tol=tol, zero_sq=zero_sq)
        total_rot += rot
        if rot == 0:
            break
    else:
        raise ConvergenceError(
            f"one-sided Jacobi did not converge in {max_sweeps} sweeps"
        )
    sigma = np.linalg.norm(W.astype(np.float64, copy=False), axis=0)
    order = np.argsort(sigma)[::-1]
    sigma = sigma[order]
    W = W[:, order]
    U = np.zeros_like(W)
    nz = sigma > 0
    U[:, nz] = W[:, nz] / sigma[nz].astype(W.dtype)
    if counter is not None:
        # ~6m flops per rotation (two column updates) plus pair dot
        # products per sweep.
        counter.add(int(6 * m * total_rot + 4 * m * n * n), phase=PHASE_SVD, mode=mode)
    return U, sigma.astype(A.dtype)
