"""Blocked Householder QR with the compact WY representation.

The unblocked kernels in :mod:`repro.linalg.householder` apply one
reflector at a time (BLAS-2); production LAPACK factors a panel and
applies the accumulated block reflector ``I - V T V^T`` to the trailing
matrix with matrix-matrix products (BLAS-3).  This module implements
that scheme (``geqrt``-style: panel factorization producing the
triangular ``T``, then blocked trailing updates), both because the
paper's drivers are built from it and as the performance-conscious
in-memory path for very tall factorizations.

Equivalence with the unblocked kernels (up to roundoff) is pinned by
tests; the flop count is identical, the memory traffic is not — the
trailing matrix is streamed once per *panel* instead of once per column.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..instrument import FlopCounter, PHASE_LQ
from .flops import qr_flops
from .householder import householder_reflector

__all__ = ["qr_factor_blocked", "qr_r_blocked", "build_t_factor"]


def build_t_factor(V: np.ndarray, taus: np.ndarray) -> np.ndarray:
    """Upper-triangular ``T`` with ``I - V T V^T = H_0 H_1 ... H_{k-1}``.

    ``V`` is unit-lower-trapezoidal (reflector vectors in columns, the
    implicit 1s included); LAPACK's ``larft`` forward-columnwise scheme.
    """
    m, k = V.shape
    if taus.shape != (k,):
        raise ShapeError(f"need {k} tau values, got {taus.shape}")
    T = np.zeros((k, k), dtype=V.dtype)
    for j in range(k):
        tau = taus[j]
        if tau == 0:
            continue
        T[j, j] = tau
        if j:
            # T[:j, j] = -tau * T[:j, :j] @ (V[:, :j]^T v_j)
            w = V[:, :j].T @ V[:, j]
            T[:j, j] = -tau * (T[:j, :j] @ w)
    return T


def qr_factor_blocked(
    A: np.ndarray,
    *,
    block: int = 32,
    overwrite: bool = False,
) -> tuple[np.ndarray, list[tuple[int, np.ndarray, np.ndarray]]]:
    """Blocked Householder QR.

    Returns ``(R_packed, panels)`` where ``R_packed`` holds R in its
    upper triangle and the reflector vectors below the diagonal (the
    ``geqrf`` layout), and ``panels`` is a list of ``(offset, V, T)``
    block reflectors for applying/forming Q.
    """
    A = np.array(A, copy=not overwrite, order="F")
    if A.ndim != 2:
        raise ShapeError("qr_factor_blocked expects a matrix")
    m, n = A.shape
    k = min(m, n)
    if block < 1:
        raise ShapeError("block size must be positive")
    panels = []
    j = 0
    while j < k:
        b = min(block, k - j)
        # --- factor the panel A[j:, j:j+b] with unblocked Householder ---
        taus = np.zeros(b, dtype=A.dtype)
        for c in range(b):
            col = j + c
            v, tau, beta = householder_reflector(A[col:, col])
            taus[c] = tau
            A[col, col] = beta
            A[col + 1 :, col] = v[1:]
            if tau != 0 and col + 1 < j + b:
                w = v @ A[col:, col + 1 : j + b]
                A[col:, col + 1 : j + b] -= tau * np.outer(v, w)
        # --- build the compact WY factor for the panel -------------------
        V = np.zeros((m - j, b), dtype=A.dtype)
        for c in range(b):
            V[c, c] = 1
            V[c + 1 :, c] = A[j + c + 1 :, j + c]
        T = build_t_factor(V, taus)
        panels.append((j, V, T))
        # --- blocked trailing update: A[j:, j+b:] -= V T^T V^T A --------
        if j + b < n:
            C = A[j:, j + b :]
            W = V.T @ C  # (b x trailing)
            C -= V @ (T.T @ W)
        j += b
    return A, panels


def qr_r_blocked(
    A: np.ndarray,
    *,
    block: int = 32,
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> np.ndarray:
    """R factor via the blocked algorithm (``min(m,n) x n`` upper trapezoid)."""
    m, n = np.shape(A)
    packed, _ = qr_factor_blocked(A, block=block)
    if counter is not None:
        counter.add(qr_flops(max(m, n), min(m, n)), phase=PHASE_LQ, mode=mode)
    return np.triu(packed[: min(m, n), :])
