"""Apply an implicit Q without forming it (LAPACK ``ormqr``/``ormlq``).

The factorizations in :mod:`repro.linalg.householder` store reflectors
in the packed layout; these routines apply the implicit orthogonal
factor (or its transpose) to another matrix at ``O(m n k)`` cost —
the right tool whenever a product with Q is needed once, since forming
Q explicitly costs as much and wastes the memory.

Downstream use: reconstructing from an LQ (``A = L Q``), orthogonal
projections in iterative refinements, and tests that validate the
factorizations without materializing Q.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["apply_q", "apply_q_lq"]


def _reflectors_qr(packed: np.ndarray, taus: np.ndarray):
    m, n = packed.shape
    for j in range(len(taus)):
        v = np.empty(m - j, dtype=packed.dtype)
        v[0] = 1
        v[1:] = packed[j + 1 :, j]
        yield j, v, taus[j]


def apply_q(
    packed: np.ndarray,
    taus: np.ndarray,
    C: np.ndarray,
    *,
    trans: bool = False,
) -> np.ndarray:
    """Compute ``Q @ C`` (or ``Q^T @ C``) for a ``qr_factor`` result.

    ``Q`` is the implicit ``m x m`` orthogonal factor; ``C`` must have
    ``m`` rows.  Returns a new array (``C`` is not modified).

    ``Q = H_0 H_1 ... H_{k-1}``: applying ``Q`` uses reflectors in
    reverse order, ``Q^T`` in forward order.
    """
    packed = np.asarray(packed)
    C = np.array(C, copy=True)
    if C.ndim == 1:
        C = C[:, None]
        squeeze = True
    else:
        squeeze = False
    m = packed.shape[0]
    if C.shape[0] != m:
        raise ShapeError(f"C must have {m} rows, got {C.shape[0]}")
    order = range(len(taus)) if trans else range(len(taus) - 1, -1, -1)
    refl = {j: (v, t) for j, v, t in _reflectors_qr(packed, taus)}
    for j in order:
        v, tau = refl[j]
        if tau == 0:
            continue
        w = v @ C[j:, :]
        C[j:, :] -= tau * np.outer(v, w)
    return C[:, 0] if squeeze else C


def apply_q_lq(
    packed: np.ndarray,
    taus: np.ndarray,
    C: np.ndarray,
    *,
    trans: bool = False,
) -> np.ndarray:
    """Compute ``C @ Q`` (or ``C @ Q^T``) for an ``lq_factor`` result.

    ``Q`` is the implicit ``n x n`` row-orthogonal factor of the LQ;
    ``C`` must have ``n`` columns.  With ``trans=False`` this maps the
    row space the way ``A = L Q`` requires: ``apply_q_lq(packed, taus,
    L_padded)`` reconstructs ``A``.
    """
    packed = np.asarray(packed)
    C = np.array(C, copy=True)
    if C.ndim != 2:
        raise ShapeError("C must be a matrix")
    n = packed.shape[1]
    if C.shape[1] != n:
        raise ShapeError(f"C must have {n} columns, got {C.shape[1]}")
    k = len(taus)
    # lq_factor computes L = A H_0 H_1 ... H_{k-1}, so Q = H_{k-1}...H_0:
    # C @ Q applies reflectors from k-1 down to 0; C @ Q^T forward.
    order = range(k - 1, -1, -1) if not trans else range(k)
    for j in order:
        tau = taus[j]
        if tau == 0:
            continue
        v = np.empty(n - j, dtype=packed.dtype)
        v[0] = 1
        v[1:] = packed[j, j + 1 :]
        w = C[:, j:] @ v
        C[:, j:] -= tau * np.outer(w, v)
    return C
