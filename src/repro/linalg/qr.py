"""QR/LQ driver routines (``geqr`` / ``gelq`` equivalents).

The paper calls LAPACK's driver routines for any row- or column-major
submatrix and reserves the structured ``tpqrt`` kernel for the tree
steps (Sec. 4.2.1).  We mirror that split: these drivers delegate to
LAPACK (through SciPy) by default for performance, with our own
Householder kernels available as a backend both for validation and for
platforms where the vendor library is untrusted.  Both backends produce
a valid triangular factor (they may differ by row/column signs, which is
immaterial to the SVD that consumes them).
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..errors import ConfigurationError, ShapeError
from ..faults.injector import current_injector
from ..instrument import FlopCounter, PHASE_LQ
from ..obs.tracer import trace_span
from .flops import qr_flops, lq_flops
from .householder import qr_r, lq_l

__all__ = ["geqr", "gelq", "BACKENDS"]

BACKENDS = ("lapack", "householder", "blocked")


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ConfigurationError(f"backend must be one of {BACKENDS}, got {backend!r}")


def _inject(kernel: str, M: np.ndarray) -> np.ndarray:
    """Fault-injection hook (one thread-local read when disabled)."""
    inj = current_injector()
    if inj is not None:
        M, _ = inj.kernel_fault(kernel, M)
    return M


def geqr(
    A: np.ndarray,
    *,
    backend: str = "lapack",
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> np.ndarray:
    """R factor of a QR decomposition (``min(m,n) x n`` upper trapezoid).

    Use for tall (or any) matrices where QR of the stored layout is the
    natural operation — e.g. the transposed row-major last-mode
    unfolding.
    """
    _check_backend(backend)
    A = np.asarray(A)
    if A.ndim != 2:
        raise ShapeError("geqr expects a matrix")
    m, n = A.shape
    with trace_span("geqr", phase=PHASE_LQ, mode=mode, rows=m, cols=n,
                    backend=backend):
        if backend == "householder":
            return _inject("geqr", qr_r(A, counter=counter, mode=mode))
        if backend == "blocked":
            from .blocked import qr_r_blocked

            return _inject("geqr", qr_r_blocked(A, counter=counter, mode=mode))
        R = scipy.linalg.qr(A, mode="r", check_finite=False)[0]
        R = np.ascontiguousarray(R[: min(m, n), :])
        if counter is not None:
            k = min(m, n)
            counter.add(qr_flops(max(m, n), k), phase=PHASE_LQ, mode=mode)
        return _inject("geqr", R)


def gelq(
    A: np.ndarray,
    *,
    backend: str = "lapack",
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> np.ndarray:
    """L factor of an LQ decomposition (``m x min(m,n)`` lower trapezoid).

    The short-fat case (``m <= n``) returns the ``m x m`` lower triangle
    whose SVD yields the left singular vectors of ``A`` (Sec. 3.1).
    """
    _check_backend(backend)
    A = np.asarray(A)
    if A.ndim != 2:
        raise ShapeError("gelq expects a matrix")
    m, n = A.shape
    with trace_span("gelq", phase=PHASE_LQ, mode=mode, rows=m, cols=n,
                    backend=backend):
        if backend == "householder":
            return _inject("gelq", lq_l(A, counter=counter, mode=mode))
        if backend == "blocked":
            from .blocked import qr_r_blocked

            R = qr_r_blocked(A.T, counter=counter, mode=mode)
            return _inject("gelq", np.ascontiguousarray(R.T))
        # LQ(A) = QR(A^T)^T; A.T is a zero-copy view, and LAPACK handles
        # either memory order.
        R = scipy.linalg.qr(A.T, mode="r", check_finite=False)[0]
        L = np.ascontiguousarray(R[: min(m, n), :].T)
        if counter is not None:
            k = min(m, n)
            counter.add(lq_flops(k, max(m, n)), phase=PHASE_LQ, mode=mode)
        return _inject("gelq", L)
