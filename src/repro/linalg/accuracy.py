"""Accuracy-floor utilities from the paper's Theorems 1 and 2 (Sec. 3.2).

These quantify when computed singular values stop being trustworthy:

* QR-SVD:   values below ``O(eps * ||A||)`` are roundoff noise;
* Gram-SVD: values below ``O(sqrt(eps) * ||A||)`` are roundoff noise.

Consequently ST-HOSVD cannot honour an error tolerance tighter than the
corresponding floor, which is exactly the behaviour Tables 2-3 document
(Gram-single failing at 1e-4, QR-single at 1e-6, Gram-double at 1e-8).
"""

from __future__ import annotations

import numpy as np

from ..precision import Precision, resolve_precision

__all__ = [
    "singular_value_floor",
    "trustworthy_count",
    "min_reachable_tolerance",
    "subspace_angle",
]


def singular_value_floor(norm: float, method: str, precision) -> float:
    """Smallest singular value magnitude the method can resolve.

    Parameters
    ----------
    norm:
        ``||A||`` (spectral or Frobenius — the bounds are big-O either way).
    method:
        ``"qr"`` or ``"gram"``.
    precision:
        Anything :func:`repro.precision.resolve_precision` accepts.
    """
    prec: Precision = resolve_precision(precision)
    if method == "qr":
        return prec.qr_svd_floor * norm
    if method == "gram":
        return prec.gram_svd_floor * norm
    raise ValueError(f"method must be 'qr' or 'gram', got {method!r}")


def trustworthy_count(sigma: np.ndarray, norm: float, method: str, precision) -> int:
    """How many leading computed singular values exceed the noise floor."""
    floor = singular_value_floor(norm, method, precision)
    return int(np.count_nonzero(np.asarray(sigma, dtype=np.float64) > floor))


def min_reachable_tolerance(method: str, precision) -> float:
    """Tightest relative ST-HOSVD tolerance the method/precision can honour.

    ``O(eps)`` for QR-SVD, ``O(sqrt(eps))`` for Gram-SVD (Sec. 3.2).
    """
    prec: Precision = resolve_precision(precision)
    return prec.qr_svd_floor if method == "qr" else prec.gram_svd_floor


def subspace_angle(U: np.ndarray, V: np.ndarray) -> float:
    """Largest principal angle between the column spaces of U and V (radians).

    Used in tests to check the subspace bounds of Theorems 1-2.  Both
    inputs are orthonormalized defensively, and the angle is computed
    through its **sine** — ``sin(theta) = ||(I - U U^T) V||_2`` — because
    the cosine formula loses half the working digits for small angles
    (``arccos`` near 1 cannot resolve below ``sqrt(eps)``).
    """
    U = np.linalg.qr(np.asarray(U, dtype=np.float64))[0]
    V = np.linalg.qr(np.asarray(V, dtype=np.float64))[0]
    residual = V - U @ (U.T @ V)
    s = np.linalg.svd(residual, compute_uv=False)
    sin_theta = float(np.clip(s[0] if s.size else 0.0, 0.0, 1.0))
    return float(np.arcsin(sin_theta))
