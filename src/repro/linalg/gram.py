"""Gram-matrix computation of tensor unfoldings (TuckerMPI [6, Alg. 2]).

The Gram matrix ``G = Y_(n) Y_(n)^T`` is accumulated with one symmetric
rank-``prod_before`` update (syrk) per contiguous column block of the
unfolding, streaming through the tensor exactly once without forming the
unfolding.  The accumulation happens **in working precision** — that is
the source of Gram-SVD's ``sqrt(eps)`` accuracy floor that the paper's
QR-SVD avoids.
"""

from __future__ import annotations

import numpy as np

from ..instrument import FlopCounter, PHASE_GRAM
from ..obs.tracer import trace_span
from ..tensor.dense import DenseTensor
from .flops import gram_flops

__all__ = ["gram_matrix", "tensor_gram"]


def gram_matrix(
    A: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    mode: int | None = None,
    accumulate: str | None = None,
) -> np.ndarray:
    """``A @ A.T`` in the working precision of ``A`` (syrk equivalent).

    ``accumulate="double"`` implements the paper's future-work idea of
    mixed precision within Gram-SVD: float32 inputs are multiplied with
    float64 accumulation, pushing the Gram matrix's rounding error from
    ``eps_single * ||A||^2`` down to ``eps_double * ||A||^2`` and the
    singular-value floor from ``sqrt(eps_s)`` to ``~eps_s`` — at Gram
    cost rather than QR cost.  The result stays in float64 so the
    eigensolve benefits too.
    """
    A = np.asarray(A)
    if accumulate not in (None, "double"):
        raise ValueError(f"accumulate must be None or 'double', got {accumulate!r}")
    with trace_span("syrk", phase=PHASE_GRAM, mode=mode,
                    rows=A.shape[0], cols=A.shape[1]):
        if accumulate == "double" and A.dtype == np.float32:
            Ad = A.astype(np.float64)
            G = Ad @ Ad.T
        else:
            G = A @ A.T
        # symmetrize against rounding asymmetry from the general gemm path
        G = (G + G.T) * G.dtype.type(0.5)
        if counter is not None:
            counter.add(
                gram_flops(A.shape[0], A.shape[1]), phase=PHASE_GRAM, mode=mode
            )
        return G


def tensor_gram(
    tensor: DenseTensor,
    n: int,
    *,
    counter: FlopCounter | None = None,
    accumulate: str | None = None,
) -> np.ndarray:
    """Gram matrix of the mode-``n`` unfolding via block-wise syrk updates.

    Zero-copy: each contiguous row-major column block contributes
    ``B_j @ B_j^T``.  Mode 0's unfolding is a single column-major matrix
    and is handled by one product.  ``accumulate="double"`` selects the
    mixed-precision variant (see :func:`gram_matrix`).
    """
    if not isinstance(tensor, DenseTensor):
        tensor = DenseTensor(tensor)
    if accumulate not in (None, "double"):
        raise ValueError(f"accumulate must be None or 'double', got {accumulate!r}")
    mixed = accumulate == "double" and tensor.dtype == np.float32
    if n == 0:
        Y0 = tensor.unfold(0)
        return gram_matrix(Y0, counter=counter, mode=0, accumulate=accumulate)
    rows = tensor.shape[n]
    acc_dtype = np.float64 if mixed else tensor.dtype
    with trace_span("syrk", phase=PHASE_GRAM, mode=n, rows=rows,
                    cols=tensor.size // max(rows, 1)):
        G = np.zeros((rows, rows), dtype=acc_dtype)
        for j in range(tensor.num_column_blocks(n)):
            B = tensor.column_block(n, j)
            if mixed:
                B = B.astype(np.float64)
            G += B @ B.T
        G = (G + G.T) * G.dtype.type(0.5)
        if counter is not None:
            _, cols = (rows, tensor.size // rows)
            counter.add(gram_flops(rows, cols), phase=PHASE_GRAM, mode=n)
        return G
