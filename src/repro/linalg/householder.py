"""From-scratch Householder orthogonal factorization kernels.

These implement the LAPACK-style elementary reflector (``larfg``) and
unblocked QR/LQ factorizations (``geqrf``/``gelqf``) used by the
TSQR-based algorithms in this package.  The kernels preserve the working
precision of their inputs (float32 stays float32 throughout), which is
essential: the paper's entire single-precision pipeline depends on no
silent upcasting.

Only the triangular factor is ever needed by ST-HOSVD ("neither Q nor
V_L need be computed", Sec. 3.1), but explicit-Q formation is provided
for testing and for downstream users.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..instrument import FlopCounter, PHASE_LQ
from .flops import qr_flops, lq_flops

__all__ = [
    "householder_reflector",
    "qr_factor",
    "lq_factor",
    "qr_r",
    "lq_l",
    "form_q",
    "form_q_lq",
]


def householder_reflector(x: np.ndarray) -> tuple[np.ndarray, float, float]:
    """Compute an elementary reflector annihilating ``x[1:]``.

    Returns ``(v, tau, beta)`` with ``v[0] == 1`` such that
    ``(I - tau * v v^T) x = beta * e_0``.  Matches LAPACK ``larfg``
    semantics: if ``x[1:]`` is already zero, ``tau = 0`` and ``beta = x[0]``.
    """
    x = np.asarray(x)
    if x.ndim != 1 or x.size == 0:
        raise ShapeError("reflector input must be a nonempty vector")
    dt = x.dtype
    alpha = x[0]
    if x.size == 1:
        return np.ones(1, dtype=dt), dt.type(0.0), alpha
    signorm = np.linalg.norm(x[1:])
    if signorm == 0:
        v = np.zeros_like(x)
        v[0] = 1
        return v, dt.type(0.0), alpha
    full = np.hypot(alpha, signorm)
    beta = -full if alpha >= 0 else full
    v0 = alpha - beta
    v = np.empty_like(x)
    v[0] = 1
    np.divide(x[1:], v0, out=v[1:])
    tau = dt.type((beta - alpha) / beta)
    return v, tau, dt.type(beta)


def qr_factor(A: np.ndarray, *, overwrite: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Unblocked Householder QR.

    Returns ``(packed, taus)`` where ``packed`` holds R in its upper
    triangle and the reflector vectors (sans the implicit leading 1)
    below the diagonal — the LAPACK ``geqrf`` storage scheme.
    """
    A = np.array(A, copy=not overwrite, order="F")
    if A.ndim != 2:
        raise ShapeError("qr_factor expects a matrix")
    m, n = A.shape
    k = min(m, n)
    taus = np.zeros(k, dtype=A.dtype)
    for j in range(k):
        v, tau, beta = householder_reflector(A[j:, j])
        taus[j] = tau
        A[j, j] = beta
        A[j + 1 :, j] = v[1:]
        if tau != 0 and j + 1 < n:
            w = v @ A[j:, j + 1 :]
            A[j:, j + 1 :] -= tau * np.outer(v, w)
    return A, taus


def lq_factor(A: np.ndarray, *, overwrite: bool = False) -> tuple[np.ndarray, np.ndarray]:
    """Unblocked Householder LQ (``gelqf`` storage: L lower, reflectors upper)."""
    A = np.array(A, copy=not overwrite, order="C")
    if A.ndim != 2:
        raise ShapeError("lq_factor expects a matrix")
    m, n = A.shape
    k = min(m, n)
    taus = np.zeros(k, dtype=A.dtype)
    for j in range(k):
        v, tau, beta = householder_reflector(A[j, j:])
        taus[j] = tau
        A[j, j] = beta
        A[j, j + 1 :] = v[1:]
        if tau != 0 and j + 1 < m:
            w = A[j + 1 :, j:] @ v
            A[j + 1 :, j:] -= tau * np.outer(w, v)
    return A, taus


def qr_r(A: np.ndarray, *, counter: FlopCounter | None = None, mode: int | None = None) -> np.ndarray:
    """R factor of the QR decomposition (upper-trapezoidal ``min(m,n) x n``)."""
    m, n = np.shape(A)
    packed, _ = qr_factor(A)
    if counter is not None:
        counter.add(qr_flops(max(m, n), min(m, n)), phase=PHASE_LQ, mode=mode)
    return np.triu(packed[: min(m, n), :])


def lq_l(A: np.ndarray, *, counter: FlopCounter | None = None, mode: int | None = None) -> np.ndarray:
    """L factor of the LQ decomposition (lower-trapezoidal ``m x min(m,n)``)."""
    m, n = np.shape(A)
    packed, _ = lq_factor(A)
    if counter is not None:
        counter.add(lq_flops(min(m, n), max(m, n)), phase=PHASE_LQ, mode=mode)
    return np.tril(packed[:, : min(m, n)])


def form_q(packed: np.ndarray, taus: np.ndarray, ncols: int | None = None) -> np.ndarray:
    """Accumulate the explicit Q from ``qr_factor`` output (``orgqr``).

    ``ncols`` selects the thin Q (default ``min(m, n)`` columns).
    """
    m, n = packed.shape
    k = len(taus)
    if ncols is None:
        ncols = k
    if not 0 < ncols <= m:
        raise ShapeError(f"cannot form {ncols} columns of Q for an {m}-row factorization")
    Q = np.eye(m, ncols, dtype=packed.dtype)
    for j in range(k - 1, -1, -1):
        tau = taus[j]
        if tau == 0:
            continue
        v = np.empty(m - j, dtype=packed.dtype)
        v[0] = 1
        v[1:] = packed[j + 1 :, j]
        w = v @ Q[j:, :]
        Q[j:, :] -= tau * np.outer(v, w)
    return Q


def form_q_lq(packed: np.ndarray, taus: np.ndarray, nrows: int | None = None) -> np.ndarray:
    """Accumulate the explicit Q (rows orthonormal) from ``lq_factor`` output."""
    m, n = packed.shape
    k = len(taus)
    if nrows is None:
        nrows = k
    if not 0 < nrows <= n:
        raise ShapeError(f"cannot form {nrows} rows of Q for an {n}-column factorization")
    Q = np.eye(nrows, n, dtype=packed.dtype)
    for j in range(k - 1, -1, -1):
        tau = taus[j]
        if tau == 0:
            continue
        v = np.empty(n - j, dtype=packed.dtype)
        v[0] = 1
        v[1:] = packed[j, j + 1 :]
        w = Q[:, j:] @ v
        Q[:, j:] -= tau * np.outer(w, v)
    return Q
