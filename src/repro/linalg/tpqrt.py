"""Structured QR of a triangle stacked on a pentagon (LAPACK ``tpqrt``).

This is the workhorse of both TSQR variants in the paper:

* **flat tree** (sequential Alg. 2): the current triangular factor is
  updated against each rectangular column block of the unfolding
  (``structure="rect"``);
* **butterfly tree** (parallel Alg. 3): two triangular factors from
  partner processors are reduced into one (``structure="tri"``).

Given ``R`` (``n x n`` upper triangular) and ``B`` (``m x n``; fully
rectangular, or upper triangular when ``m == n``), the routine computes
the QR decomposition of the stacked ``[R; B]`` matrix, overwriting ``R``
with the new triangular factor and (optionally) ``B`` with the
Householder reflectors.  The sparsity of both blocks is exploited: R's
zero lower triangle is never touched, and for triangular ``B`` column
``j``'s reflector only involves rows ``0..j``, cutting the reduction
cost from ``2n^3`` to ``~(2/3) n^3`` flops.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..instrument import FlopCounter, PHASE_LQ
from ..obs.tracer import trace_span
from .flops import tpqrt_flops

__all__ = ["tpqrt", "tpqrt_reduce_triangles"]


def tpqrt(
    R: np.ndarray,
    B: np.ndarray,
    *,
    structure: str = "rect",
    counter: FlopCounter | None = None,
    mode: int | None = None,
    keep_reflectors: bool = False,
) -> np.ndarray:
    """QR of ``[R; B]`` in place; returns the updated ``R``.

    Parameters
    ----------
    R:
        ``n x n`` upper triangular, overwritten with the new R factor.
        Must be writable; entries below the diagonal are ignored.
    B:
        ``m x n`` block to annihilate.  Overwritten (with reflectors if
        ``keep_reflectors``, zeros otherwise — B is conceptually
        eliminated).
    structure:
        ``"rect"`` for a dense ``B`` (flat-tree block step), ``"tri"``
        for an upper-triangular ``B`` with ``m == n`` (tree reduction).
    counter:
        Optional flop counter credited under the LQ phase.
    keep_reflectors:
        Keep the Householder vectors in ``B`` (needed only if a caller
        wants to apply/form Q, which ST-HOSVD never does).

    Notes
    -----
    The reflector for column ``j`` is ``[e_j; v_B]`` with the implicit 1
    at ``R[j, j]`` and support only in the active rows of ``B``; rows
    ``j+1..n-1`` of ``R`` are untouched, preserving its triangularity.
    """
    if R.ndim != 2 or R.shape[0] != R.shape[1]:
        raise ShapeError("R must be square upper triangular")
    n = R.shape[1]
    if B.ndim != 2 or B.shape[1] != n:
        raise ShapeError(f"B must have {n} columns to match R")
    m = B.shape[0]
    if structure not in ("rect", "tri"):
        raise ShapeError(f"unknown structure {structure!r}")
    if structure == "tri" and m != n:
        raise ShapeError("triangular B must be square")
    if R.dtype != B.dtype:
        raise ShapeError(f"dtype mismatch: R {R.dtype} vs B {B.dtype}")
    dt = R.dtype

    for j in range(n):
        nb = m if structure == "rect" else min(j + 1, m)
        if nb == 0:
            continue
        xb = B[:nb, j]
        alpha = R[j, j]
        signorm = np.linalg.norm(xb)
        if signorm == 0:
            continue
        full = np.hypot(alpha, signorm)
        beta = -full if alpha >= 0 else full
        v0 = alpha - beta
        vb = xb / v0
        tau = dt.type((beta - alpha) / beta)
        R[j, j] = beta
        if j + 1 < n:
            # w = (row j of R) + vb^T B for the trailing columns
            w = R[j, j + 1 :] + vb @ B[:nb, j + 1 :]
            R[j, j + 1 :] -= tau * w
            B[:nb, j + 1 :] -= tau * np.outer(vb, w)
        if keep_reflectors:
            B[:nb, j] = vb
        else:
            B[:nb, j] = 0
    if counter is not None:
        l = n if structure == "tri" else 0
        counter.add(tpqrt_flops(n, m, l), phase=PHASE_LQ, mode=mode)
    return R


def tpqrt_reduce_triangles(
    R_top: np.ndarray,
    R_bottom: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> np.ndarray:
    """TSQR tree-reduction step: R factor of two stacked upper triangles.

    Neither input is modified; a fresh ``n x n`` upper triangular array
    is returned.  This is the deterministic reduction operator used by
    the butterfly all-reduce in parallel Alg. 3 — both partners stack
    (lower-rank factor on top) and obtain bitwise-identical results.
    """
    if R_top.shape != R_bottom.shape or R_top.shape[0] != R_top.shape[1]:
        raise ShapeError("tree reduction expects two equal square triangles")
    with trace_span("tpqrt", phase=PHASE_LQ, mode=mode, n=R_top.shape[0]):
        R = np.triu(R_top).copy()
        B = np.triu(R_bottom).copy()
        return tpqrt(R, B, structure="tri", counter=counter, mode=mode)
