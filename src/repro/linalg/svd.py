"""The two SVD algorithms under study: Gram-SVD and QR-SVD (Secs. 2.3, 3.1).

Both compute only what ST-HOSVD needs — singular values and **left**
singular vectors of a short-fat matrix (or tensor unfolding):

* :func:`gram_svd` — eigendecomposition of ``A A^T`` (TuckerMPI's
  method): half the flops, but squares the condition number, so singular
  values below ``sqrt(eps) * ||A||`` are roundoff noise.
* :func:`qr_svd` — LQ preprocessing then SVD of the small triangular
  factor (R-bidiagonalization): backward stable, resolving values down
  to ``eps * ||A||`` at ~2x the flops.

Negative Gram eigenvalues (which appear exactly when accuracy is lost)
are handled the way the paper's experiment does: take the square root of
the absolute value, then sort descending.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from ..errors import ShapeError
from ..faults.injector import current_injector
from ..instrument import FlopCounter, PHASE_SVD, PHASE_EVD
from ..obs.tracer import trace_span
from ..tensor.dense import DenseTensor
from .flops import eigh_flops, svd_flops
from .gram import gram_matrix, tensor_gram
from .qr import gelq
from .tensor_lq import tensor_lq

__all__ = [
    "svd_from_gram",
    "left_svd_of_triangle",
    "gram_svd",
    "qr_svd",
    "tensor_gram_svd",
    "tensor_qr_svd",
]


def svd_from_gram(
    G: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Left singular vectors and values from a Gram matrix.

    Computes the symmetric eigendecomposition of ``G`` in its working
    precision, maps eigenvalues to singular values via
    ``sigma = sqrt(|lambda|)`` (absolute value because lost-accuracy
    eigenvalues can come out negative), and returns ``(U, sigma)``
    sorted by descending sigma.
    """
    G = np.asarray(G)
    if G.ndim != 2 or G.shape[0] != G.shape[1]:
        raise ShapeError("Gram matrix must be square")
    with trace_span("eigh", phase=PHASE_EVD, mode=mode, n=G.shape[0]):
        w, V = np.linalg.eigh(G)
        sigma = np.sqrt(np.abs(w))
        order = np.argsort(sigma)[::-1]
        if counter is not None:
            counter.add(eigh_flops(G.shape[0]), phase=PHASE_EVD, mode=mode)
        U, sigma = V[:, order], sigma[order]
        # Fault-injection hook (one thread-local read when disabled):
        # a KernelFaultRule targeting "eigh" corrupts this call's output.
        inj = current_injector()
        if inj is not None:
            U, sigma = inj.kernel_fault("eigh", U, sigma)
        return U, sigma


def left_svd_of_triangle(
    L: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Singular values and left vectors of the (small) triangular factor.

    Uses the QR-iteration driver ``gesvd`` — the routine the paper calls —
    rather than divide-and-conquer, and discards right vectors.
    """
    L = np.asarray(L)
    if L.ndim != 2:
        raise ShapeError("expected a matrix")
    with trace_span("gesvd", phase=PHASE_SVD, mode=mode,
                    rows=L.shape[0], cols=L.shape[1]):
        U, sigma, _ = scipy.linalg.svd(
            L, full_matrices=False, lapack_driver="gesvd", check_finite=False
        )
        if counter is not None:
            counter.add(svd_flops(*L.shape), phase=PHASE_SVD, mode=mode)
        # Fault-injection hook (one thread-local read when disabled).
        inj = current_injector()
        if inj is not None:
            U, sigma = inj.kernel_fault("gesvd", U, sigma)
        return U, sigma


def gram_svd(
    A: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gram-SVD of a matrix: ``(U, sigma)`` with U the left singular vectors."""
    G = gram_matrix(np.asarray(A), counter=counter, mode=mode)
    return svd_from_gram(G, counter=counter, mode=mode)


def qr_svd(
    A: np.ndarray,
    *,
    backend: str = "lapack",
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """QR-SVD of a matrix: LQ then SVD of L; returns ``(U, sigma)``."""
    L = gelq(np.asarray(A), backend=backend, counter=counter, mode=mode)
    return left_svd_of_triangle(L, counter=counter, mode=mode)


def tensor_gram_svd(
    tensor: DenseTensor,
    n: int,
    *,
    counter: FlopCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Gram-SVD of the mode-``n`` unfolding via block syrk accumulation."""
    G = tensor_gram(tensor, n, counter=counter)
    return svd_from_gram(G, counter=counter, mode=n)


def tensor_qr_svd(
    tensor: DenseTensor,
    n: int,
    *,
    backend: str = "lapack",
    counter: FlopCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """QR-SVD of the mode-``n`` unfolding via TensorLQ (Alg. 2)."""
    L = tensor_lq(tensor, n, backend=backend, counter=counter)
    return left_svd_of_triangle(L, counter=counter, mode=n)
