"""Command-line drivers, in the spirit of TuckerMPI's shipped binaries.

Three subcommands operate on raw natural-order tensor files (the
:mod:`repro.data.io` format, which is TuckerMPI's):

* ``compress``    — ST-HOSVD a raw file (in memory or out of core) into
  a Tucker archive directory (core + factors + manifest);
* ``reconstruct`` — expand an archive back to a raw file, optionally a
  sub-region only;
* ``info``        — inspect an archive: ranks, compression, diagnostics.

Beyond the archive commands: ``simulate``/``tune`` (model-only runs),
``trace`` (a traced — and optionally sanitized — parallel ST-HOSVD with
observability artifacts), ``lint`` (the static per-function SPMD lint
of :mod:`repro.sanitize`), ``verify`` (the whole-program SPMD verifier:
interprocedural comm-trace matching, ownership, and deadlock analysis,
with per-driver comm-graph artifacts — together with ``lint`` the CI
gate), ``top`` (a live telemetry view of a running SPMD world),
``postmortem`` (render a crash bundle), and ``bench --compare`` (diff
two benchmark snapshots with tolerance bands).

Usage::

    python -m repro.cli compress data.bin --shape 64 64 33 64 --tol 1e-4 \
        --method qr --precision single --out archive/
    python -m repro.cli info archive/
    python -m repro.cli reconstruct archive/ --out restored.bin
    python -m repro.cli trace --shape 32 32 32 --grid 2 2 1 \
        --tol 1e-4 --out artifacts --sanitize
    python -m repro.cli lint --strict src/repro examples
    python -m repro.cli verify --strict --graph-dir artifacts/commgraphs
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from .core import sthosvd, sthosvd_out_of_core, validate_tucker, core_statistics
from .core.tucker import TuckerTensor
from .data.io import load_raw, save_raw
from .tensor.dense import DenseTensor

__all__ = ["main", "save_archive", "load_archive"]

MANIFEST = "manifest.json"


def save_archive(tucker: TuckerTensor, directory: str, extra: dict | None = None) -> None:
    """Write a Tucker archive: core.bin, factor<n>.npy, manifest.json."""
    os.makedirs(directory, exist_ok=True)
    save_raw(tucker.core, os.path.join(directory, "core.bin"))
    for n, U in enumerate(tucker.factors):
        np.save(os.path.join(directory, f"factor{n}.npy"), U)
    manifest = {
        "format": "repro-tucker-archive-v1",
        "shape": list(tucker.shape),
        "ranks": list(tucker.ranks),
        "dtype": tucker.dtype.name,
        "compression_ratio": tucker.compression_ratio(),
    }
    if extra:
        manifest.update(extra)
    with open(os.path.join(directory, MANIFEST), "w") as f:
        json.dump(manifest, f, indent=2)


def load_archive(directory: str) -> tuple[TuckerTensor, dict]:
    """Read a Tucker archive back into memory."""
    with open(os.path.join(directory, MANIFEST)) as f:
        manifest = json.load(f)
    core = load_raw(os.path.join(directory, "core.bin"))
    factors = tuple(
        np.load(os.path.join(directory, f"factor{n}.npy"))
        for n in range(len(manifest["shape"]))
    )
    return TuckerTensor(core=core, factors=factors), manifest


def _parse_slices(spec: str | None, ndim: int):
    """Parse '0:3,:,2,:' into per-mode slices."""
    if spec is None:
        return None
    parts = spec.split(",")
    if len(parts) != ndim:
        raise SystemExit(f"--region needs {ndim} comma-separated entries")
    out = []
    for p in parts:
        p = p.strip()
        if p == ":":
            out.append(slice(None))
        elif ":" in p:
            a, b = p.split(":")
            out.append(slice(int(a) if a else None, int(b) if b else None))
        else:
            out.append(int(p))
    return tuple(out)


def _cmd_compress(args) -> int:
    shape = tuple(args.shape)
    method, precision = args.method, args.precision
    if args.auto:
        if args.tol is None:
            raise SystemExit("--auto requires --tol")
        from .core import choose_variant

        choice = choose_variant(args.tol)
        method, precision = choice.method, str(choice.precision)
        print(f"auto-selected: {choice.label} "
              f"(floor {choice.floor:.1e}, margin {choice.margin:.0f}x)")
    if args.out_of_core:
        progress = None
        if args.verbose:
            def progress(info):
                print(
                    f"  mode {info['mode']} done "
                    f"({info['step']}/{info['total_steps']}), "
                    f"rank {info['rank']}, {info['seconds']:.1f}s elapsed"
                )
        res = sthosvd_out_of_core(
            args.input, shape, dtype=args.file_dtype, precision=precision,
            tol=args.tol, ranks=tuple(args.ranks) if args.ranks else None,
            method=method, mode_order=args.order,
            checkpoint_dir=args.checkpoint_dir, progress=progress,
        )
    else:
        X = load_raw(args.input, shape=shape, dtype=args.file_dtype)
        res = sthosvd(
            X, tol=args.tol, ranks=tuple(args.ranks) if args.ranks else None,
            method=method, precision=precision, mode_order=args.order,
        )
    save_archive(
        res.tucker, args.out,
        extra={
            "method": res.method,
            "precision": str(res.precision),
            "mode_order": list(res.mode_order),
            "estimated_rel_error": res.estimated_rel_error(),
            "source": os.path.abspath(args.input),
        },
    )
    print(f"ranks:        {res.ranks}")
    print(f"compression:  {res.tucker.compression_ratio():.2f}x")
    print(f"est. error:   {res.estimated_rel_error():.3e}")
    print(f"archive:      {args.out}")
    return 0


def _cmd_reconstruct(args) -> int:
    tucker, manifest = load_archive(args.archive)
    if args.region:
        region = _parse_slices(args.region, tucker.ndim)
        out = tucker.reconstruct_slice(region)
    else:
        out = tucker.reconstruct()
    save_raw(out, args.out)
    print(f"wrote {out.shape} tensor ({out.nbytes} bytes) to {args.out}")
    return 0


def _cmd_info(args) -> int:
    tucker, manifest = load_archive(args.archive)
    diag = validate_tucker(tucker)
    stats = core_statistics(tucker)
    print(f"archive:       {args.archive}")
    print(f"shape:         {manifest['shape']}")
    print(f"ranks:         {manifest['ranks']}")
    print(f"dtype:         {manifest['dtype']}")
    print(f"method:        {manifest.get('method', '?')}")
    print(f"compression:   {manifest['compression_ratio']:.2f}x")
    print(f"est. error:    {manifest.get('estimated_rel_error', float('nan')):.3e}")
    print(f"factors orth:  {diag.factors_orthonormal()}")
    print(f"core norm:     {stats['norm']:.6g}")
    print(f"core range:    [{stats['min']:.3g}, {stats['max']:.3g}]")
    return 0


def _cmd_recompress(args) -> int:
    from .core import recompress

    tucker, manifest = load_archive(args.archive)
    prior = float(manifest.get("estimated_rel_error", 0.0) or 0.0)
    out_tucker, bound = recompress(
        tucker,
        tol=args.tol,
        ranks=tuple(args.ranks) if args.ranks else None,
        prior_rel_error=prior,
    )
    save_archive(
        out_tucker, args.out,
        extra={
            "method": manifest.get("method", "qr"),
            "precision": manifest.get("precision", "double"),
            "estimated_rel_error": bound,
            "recompressed_from": os.path.abspath(args.archive),
        },
    )
    print(f"ranks:        {manifest['ranks']} -> {list(out_tucker.ranks)}")
    print(f"compression:  {manifest['compression_ratio']:.2f}x -> "
          f"{out_tucker.compression_ratio():.2f}x")
    print(f"error bound:  {bound:.3e}")
    print(f"archive:      {args.out}")
    return 0


def _machine(name: str):
    from .perf import ANDES, CASCADE_LAKE

    return ANDES if name == "andes" else CASCADE_LAKE


def _cmd_simulate(args) -> int:
    from .perf import simulate_sthosvd, simulate_memory, PHASE_LABELS

    run = simulate_sthosvd(
        tuple(args.shape), tuple(args.ranks), tuple(args.grid),
        method=args.method, precision=args.precision,
        mode_order=args.order, machine=_machine(args.machine),
    )
    mem = simulate_memory(
        tuple(args.shape), tuple(args.ranks), tuple(args.grid),
        method=args.method, precision=args.precision, mode_order=args.order,
    )
    print(f"modeled time:      {run.total_seconds:.4g} s on {run.nprocs} procs")
    print(f"sustained:         {run.gflops_per_core():.2f} GFLOPS/core")
    print(f"peak memory:       {mem.peak_gib:.3f} GiB/rank (mode {mem.peak_mode})")
    print("breakdown by phase:")
    for phase, secs in sorted(run.seconds_by_phase().items(), key=lambda kv: -kv[1]):
        label = PHASE_LABELS.get(phase, phase)
        print(f"  {label:<6} {secs:10.4g} s  ({100 * secs / run.total_seconds:5.1f} %)")
    return 0


def _backend_arg(args):
    """Resolve ``--backend``/``--hosts`` into a run_spmd backend value.

    Plain ``--backend NAME`` passes the name through.  ``--hosts``
    switches the socket transport into spawn mode: workers are launched
    as ``python -m repro.mpi.transport.sockworker`` subprocesses that
    join the master over the address-book TCP handshake — which is why
    the CLI rank programs are module-level functions (they must pickle
    into the boot blob).
    """
    hosts = getattr(args, "hosts", None)
    if not hosts:
        return args.backend
    if args.backend not in (None, "sockets"):
        raise SystemExit(f"--hosts requires --backend sockets, "
                         f"got --backend {args.backend}")
    from .mpi.transport import SocketTransport

    return SocketTransport(hosts=list(hosts))


def _backend_name(args) -> str:
    if getattr(args, "hosts", None):
        return "sockets"
    return args.backend or os.environ.get("REPRO_SPMD_BACKEND", "threads")


def _print_progress(info):
    print(
        f"  mode {info['mode']} done "
        f"({info['step']}/{info['total_steps']}), "
        f"ranks {info['ranks']}, {info['seconds']:.3f}s"
    )


def _trace_program(comm, X, grid, tol, ranks, method, mode_order, verbose):
    """Rank program of ``repro trace`` (module-level: picklable for
    socket-transport spawn mode)."""
    from .core.sthosvd_parallel import sthosvd_parallel
    from .dist import DistributedTensor, GridComms
    from .dist.grid import ProcessorGrid

    comms = GridComms(comm, ProcessorGrid(grid))
    dt = DistributedTensor.from_full(comms, X)
    return sthosvd_parallel(
        dt, tol=tol, ranks=ranks, method=method, mode_order=mode_order,
        progress=_print_progress if verbose else None,
    )


def _chaos_program(comm, X, tol, ranks, method, recover="shrink",
                   ckpt_dir=None):
    """Rank program of ``repro chaos`` (module-level: picklable for
    socket-transport spawn mode)."""
    from .core.ft import sthosvd_fault_tolerant

    res = sthosvd_fault_tolerant(
        comm, X if comm.rank == 0 else None,
        tol=tol, ranks=ranks, method=method,
        recover=recover, ckpt_dir=ckpt_dir,
    )
    tucker = res.result.to_tucker()  # collective: every rank calls
    err = None
    if res.comm.rank == 0:
        rec = np.asarray(tucker.reconstruct().data)
        err = float(
            np.linalg.norm((rec - X).ravel()) / np.linalg.norm(X.ravel())
        )
    return {"err": err, "survivors": res.comm.size,
            "recoveries": res.recoveries,
            # The replay-determinism check compares this sequence across
            # replays: same fault plan, same recovery story.
            "recovery_seq": [
                (kind, detail.get("mode"), detail.get("survivors"),
                 detail.get("resumed_step"))
                for kind, detail in res.events
            ]}


def _cmd_trace(args) -> int:
    """Run a traced parallel ST-HOSVD on a synthetic tensor and export
    the observability artifacts (Chrome trace, phase/imbalance/comm
    tables, metrics, measured-vs-modeled diff)."""
    from .data.synthetic import tensor_with_mode_spectra
    from .mpi import run_spmd
    from .mpi.tracing import CommTrace
    from .obs import (
        Tracer,
        chrome_trace,
        imbalance_summary,
        imbalance_table,
        model_diff_table,
        modeled_run,
        phase_table,
    )

    shape = tuple(args.shape)
    grid = tuple(args.grid)
    if len(grid) != len(shape):
        raise SystemExit(f"--grid needs {len(shape)} entries")
    nprocs = 1
    for g in grid:
        nprocs *= g

    # Synthetic input with geometrically decaying mode spectra, so the
    # tolerance-based truncation has something real to cut.
    rng = np.random.default_rng(args.seed)
    spectra = [
        [args.decay ** k for k in range(extent)] for extent in shape
    ]
    X = tensor_with_mode_spectra(shape, spectra, rng=rng).data
    if args.precision == "single":
        X = X.astype(np.float32)

    tracer = Tracer()
    comm_trace = CommTrace()
    recorder = None
    if args.postmortem_dir:
        from .obs import FlightRecorder

        recorder = FlightRecorder(postmortem_dir=args.postmortem_dir)
    ranks = tuple(args.ranks) if args.ranks else None

    import time as _time

    start_unix = _time.time()
    try:
        res = run_spmd(
            _trace_program, nprocs,
            X, grid, args.tol, ranks, args.method, args.order,
            bool(args.verbose),
            tracer=tracer, comm_trace=comm_trace,
            sanitize=args.sanitize, backend=_backend_arg(args),
            recorder=recorder,
        )
    except Exception:
        if recorder is not None and recorder.last_postmortem_path:
            print(f"postmortem:    {recorder.last_postmortem_path}",
                  file=sys.stderr)
        raise
    result = res[0]

    os.makedirs(args.out, exist_ok=True)

    def write(name: str, text: str) -> str:
        path = os.path.join(args.out, name)
        with open(path, "w") as f:
            f.write(text if text.endswith("\n") else text + "\n")
        return path

    trace_path = os.path.join(args.out, "trace.json")
    with open(trace_path, "w") as f:
        json.dump(
            chrome_trace(
                tracer, comm_trace=comm_trace,
                metadata={
                    "backend": _backend_name(args),
                    "start_unix": start_unix,
                },
            ),
            f,
        )
    write("phases.txt", phase_table(tracer))
    write("imbalance.txt", imbalance_table(tracer))
    write("comm.txt", comm_trace.as_table())
    from .obs import ingest_comm_trace, ingest_flop_counter

    ingest_comm_trace(tracer.metrics, comm_trace)
    ingest_flop_counter(tracer.metrics, result.flops)
    write("metrics.txt", tracer.metrics.as_table())
    modeled = modeled_run(
        shape, result.ranks, grid, method=args.method,
        precision=args.precision, mode_order=args.order,
        machine=args.machine,
    )
    write("model_diff.txt", model_diff_table(
        tracer, modeled, title="Measured (slowest rank) vs alpha-beta-gamma model"
    ))

    summary = imbalance_summary(tracer)
    print(f"ranks:         {result.ranks}")
    print(f"est. error:    {result.estimated_rel_error():.3e}")
    print(f"spans:         {len(tracer.spans)} across {nprocs} ranks")
    print(f"critical path: {summary['critical_path_seconds']:.4g} s "
          f"(mean busy {summary['mean_busy_seconds']:.4g} s)")
    worst = max(
        summary["phases"].items(),
        key=lambda kv: kv[1]["imbalance"],
        default=(None, None),
    )
    if worst[0] is not None:
        print(f"worst phase:   {worst[0]} "
              f"(max/mean {worst[1]['imbalance']:.3f})")
    if args.sanitize:
        n = len(res.sanitizer.findings)
        print(f"sanitizer:     {'clean' if n == 0 else f'{n} finding(s)'}")
    print(f"artifacts:     {args.out}/ (trace.json, phases.txt, "
          f"imbalance.txt, comm.txt, metrics.txt, model_diff.txt)")
    return 0


def _cmd_chaos(args) -> int:
    """Seeded fault matrix over the fault-tolerant parallel ST-HOSVD.

    Calibrates crash points from a fault-free run's operation counts,
    then replays each scenario ``--replays`` times, asserting: the run
    completes (shrinking when a rank was killed), the reconstruction
    error stays within ``--error-factor`` of the fault-free error, and
    the fired-fault trace is identical on every replay (determinism).
    """
    from .data.synthetic import tensor_with_mode_spectra
    from .faults import CrashRule, FaultPlan, KernelFaultRule, MessageFaultRule
    from .mpi import run_spmd
    from .util.tables import format_table

    shape = tuple(args.shape)
    nprocs = args.procs
    rng = np.random.default_rng(args.seed)
    spectra = [[args.decay ** k for k in range(extent)] for extent in shape]
    X = tensor_with_mode_spectra(shape, spectra, rng=rng).data
    if args.precision == "single":
        X = X.astype(np.float32)
    ranks = tuple(args.ranks) if args.ranks else None

    def launch(plan, ckpt_dir=None):
        recorder = None
        if args.postmortem_dir:
            from .obs import FlightRecorder

            recorder = FlightRecorder(postmortem_dir=args.postmortem_dir)
        try:
            return run_spmd(_chaos_program, nprocs,
                            X, args.tol, ranks, args.method,
                            args.recover, ckpt_dir,
                            faults=plan, resilience=True,
                            backend=_backend_arg(args), recorder=recorder)
        except Exception:
            if recorder is not None and recorder.last_postmortem_path:
                print(f"postmortem: {recorder.last_postmortem_path}",
                      file=sys.stderr)
            raise

    # Fault-free baseline: the reference error, and per-rank operation
    # counts that place injected crashes mid-run (after the first
    # checkpoint exists, before the final mode completes).
    base = launch(FaultPlan(seed=args.seed))
    base_err = next(v["err"] for v in base.values if v and v["err"] is not None)
    ops = base.faults.ops_per_rank()
    print(f"baseline: rel error {base_err:.3e}, "
          f"ops/rank {[ops.get(r, 0) for r in range(nprocs)]}")

    scenarios = [
        (f"crash-rank{r}", FaultPlan(
            seed=args.seed,
            crashes=(CrashRule(rank=r, at_op=max(2, ops.get(r, 2) // 2)),),
        ))
        for r in range(nprocs)
    ]
    scenarios += [
        ("drop-1pct", FaultPlan(
            seed=args.seed,
            messages=(MessageFaultRule(kind="drop", prob=args.drop),),
        )),
        ("kernel-nan", FaultPlan(
            seed=args.seed,
            kernels=(KernelFaultRule(
                kernel="gesvd" if args.method == "qr" else "eigh",
                call_index=0, kind="nan",
            ),),
        )),
        ("crash+drop", FaultPlan(
            seed=args.seed,
            crashes=(CrashRule(
                rank=nprocs - 1,
                at_op=max(2, ops.get(nprocs - 1, 2) // 2),
            ),),
            messages=(MessageFaultRule(kind="drop", prob=args.drop),),
        )),
    ]

    rows = []
    failures = 0
    for name, plan in scenarios:
        keys, errs, survivors, recoveries, fired = [], [], None, None, 0
        recovery_seqs = []
        for replay in range(args.replays):
            ckpt_dir = None
            if args.ckpt_dir:
                # Fresh directory per replay: replays must be identical,
                # not resume each other's checkpoints.
                ckpt_dir = os.path.join(args.ckpt_dir, f"{name}-r{replay}")
            res = launch(plan, ckpt_dir)
            keys.append(res.faults.trace_key())
            fired = len(res.faults.trace)
            done = [v for v in res.values if v is not None]
            errs.append(next(v["err"] for v in done if v["err"] is not None))
            survivors = done[0]["survivors"]
            recoveries = done[0]["recoveries"]
            recovery_seqs.append(done[0]["recovery_seq"])
        # Replaying the same fault trace must yield the identical
        # recovery sequence (same mode, same survivors, same resumed
        # steps) — not just the same fired faults.
        deterministic = (
            all(k == keys[0] for k in keys)
            and all(s == recovery_seqs[0] for s in recovery_seqs)
        )
        ratio = errs[0] / base_err if base_err else 1.0
        ok = deterministic and ratio <= args.error_factor
        if args.recover == "replace":
            ok = ok and survivors == nprocs
        failures += not ok
        rows.append([
            name, fired, survivors, recoveries,
            f"{errs[0]:.3e}", f"{ratio:.3f}",
            "yes" if deterministic else "NO",
            "ok" if ok else "FAIL",
        ])
    print(format_table(
        ["scenario", "faults", "survivors", "recoveries", "rel error",
         "vs baseline", "deterministic", "status"],
        rows, title=f"chaos matrix ({args.replays} replays each)",
    ))
    if failures:
        print(f"chaos: {failures} scenario(s) FAILED")
        return 1
    print(f"chaos: all scenarios ok ({len(scenarios)} scenarios x "
          f"{args.replays} replays)")
    return 0


def _cmd_postmortem(args) -> int:
    """Render a postmortem bundle written by a crashed run."""
    from .obs import load_postmortem, render_postmortem

    bundle = load_postmortem(args.bundle)
    print(render_postmortem(bundle, events=args.events))
    return 0


def _cmd_top(args) -> int:
    """Live telemetry view of a running SPMD world (``repro top``).

    Launches the same synthetic parallel ST-HOSVD as ``repro trace`` in
    a background thread with an always-on flight recorder, and repaints
    the per-rank telemetry table (status, heartbeat age, event counts,
    comm totals, innermost open span) at ``--interval`` until the run
    finishes — a scaled-down ``htop`` for simulated ranks.  On a crash
    the postmortem path (when ``--postmortem-dir`` is set) is printed.
    """
    import threading
    import time as _time

    from .core.sthosvd_parallel import sthosvd_parallel
    from .data.synthetic import tensor_with_mode_spectra
    from .dist import DistributedTensor, GridComms
    from .dist.grid import ProcessorGrid
    from .mpi import run_spmd
    from .mpi.tracing import CommTrace
    from .obs import FlightRecorder, TelemetryHub

    shape = tuple(args.shape)
    grid = tuple(args.grid)
    if len(grid) != len(shape):
        raise SystemExit(f"--grid needs {len(shape)} entries")
    nprocs = 1
    for g in grid:
        nprocs *= g

    rng = np.random.default_rng(args.seed)
    spectra = [[args.decay ** k for k in range(extent)] for extent in shape]
    X = tensor_with_mode_spectra(shape, spectra, rng=rng).data
    ranks = tuple(args.ranks) if args.ranks else None

    recorder = FlightRecorder(
        heartbeat_interval=args.interval / 2,
        postmortem_dir=args.postmortem_dir,
    )
    hub = TelemetryHub()
    comm_trace = CommTrace()

    def program(comm):
        for _ in range(args.repeat):
            comms = GridComms(comm, ProcessorGrid(grid))
            dt = DistributedTensor.from_full(comms, X)
            res = sthosvd_parallel(dt, tol=args.tol, ranks=ranks,
                                   method=args.method)
        return res.ranks

    outcome: dict = {}

    def runner():
        try:
            outcome["result"] = run_spmd(
                program, nprocs, recorder=recorder, telemetry=hub,
                comm_trace=comm_trace, backend=args.backend,
            )
        except Exception as exc:  # rendered below, after the last frame
            outcome["error"] = exc

    worker = threading.Thread(target=runner, name="repro-top-run")
    worker.start()
    frames = 0
    try:
        while worker.is_alive():
            _time.sleep(args.interval)
            print(hub.render())
            frames += 1
    finally:
        worker.join()
    print(hub.render())  # final frame: terminal rank states
    if "error" in outcome:
        err = outcome["error"]
        print(f"run failed: {type(err).__name__}: {err}", file=sys.stderr)
        if recorder.last_postmortem_path:
            print(f"postmortem: {recorder.last_postmortem_path}",
                  file=sys.stderr)
        return 1
    print(f"done: ranks {outcome['result'][0]} "
          f"({frames} live frames rendered)")
    return 0


def _cmd_bench(args) -> int:
    """Compare two benchmark snapshots (``repro bench --compare``)."""
    from .perf.benchdiff import compare_snapshots, format_comparison, load_snapshot

    old_path, new_path = args.compare
    old = load_snapshot(old_path)
    new = load_snapshot(new_path)
    tolerances = {prefix: float(tol) for prefix, tol in (args.tolerance_for or [])}
    report = compare_snapshots(
        old, new, tolerance=args.tolerance, tolerances=tolerances,
    )
    print(format_comparison(report, all_metrics=args.all))
    if not report["comparable"]:
        return 2
    if report["regressions"] or (args.strict_missing and report["missing"]):
        return 1
    return 0


def _cmd_lint(args) -> int:
    """Static SPMD lint over source trees (see repro.sanitize.lint)."""
    from .sanitize import format_diagnostics, lint_paths
    from .sanitize.lint import DEFAULT_RULES, default_lint_roots

    rules = tuple(args.rules) if args.rules else DEFAULT_RULES
    paths = args.paths or default_lint_roots()
    findings = lint_paths(paths, rules=rules)
    if findings:
        print(format_diagnostics(
            findings, header=f"repro lint: {len(findings)} finding(s)"
        ))
    else:
        roots = ", ".join(paths)
        print(f"repro lint: clean ({roots})")
    if args.strict and findings:
        return 1
    return 0


def _cmd_verify(args) -> int:
    """Whole-program SPMD verification (see repro.sanitize.verify)."""
    import json as _json

    from .sanitize import format_diagnostics
    from .sanitize.verify import (
        default_verify_roots,
        verify_paths,
        write_comm_graph,
    )

    paths = args.paths or default_verify_roots()
    result = verify_paths(paths, world_size=args.world_size,
                          entries=args.entries)
    findings = result.findings
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as f:
            known = {(b["kind"], b["file"], b.get("line"))
                     for b in _json.load(f)}
        findings = [d for d in findings
                    if (d.kind, d.file, d.line) not in known]
    if args.graph_dir:
        for report in result.reports:
            write_comm_graph(result.project, report.entry, args.graph_dir,
                             world_size=args.world_size, report=report)
    analyzed = result.functions_analyzed
    incomplete = sum(1 for r in result.reports if not r.complete)
    if findings:
        print(format_diagnostics(
            findings,
            header=f"repro verify: {len(findings)} finding(s) across "
                   f"{analyzed} driver(s)"))
    else:
        roots = ", ".join(paths)
        print(f"repro verify: clean ({analyzed} driver(s), "
              f"{incomplete} with incomplete traces; {roots})")
    if args.strict and findings:
        return 1
    return 0


def _cmd_tune(args) -> int:
    from .perf import tune_grid

    limit = None if args.memory_limit_gib is None else args.memory_limit_gib * 2**30
    configs = tune_grid(
        tuple(args.shape), tuple(args.ranks), args.procs,
        method=args.method, precision=args.precision,
        machine=_machine(args.machine), memory_limit_bytes=limit,
        top_k=args.top,
    )
    print(f"{'grid':>20} {'ordering':>9} {'modeled s':>11} {'GiB/rank':>9}")
    for c in configs:
        print(
            f"{'x'.join(map(str, c.grid)):>20} {c.mode_order:>9} "
            f"{c.seconds:11.4g} {c.peak_bytes / 2**30:9.3f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    ap = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = ap.add_subparsers(dest="command", required=True)

    c = sub.add_parser("compress", help="ST-HOSVD a raw tensor file")
    c.add_argument("input")
    c.add_argument("--shape", type=int, nargs="+", required=True)
    c.add_argument("--file-dtype", default="double", choices=["single", "double"],
                   help="precision the file is stored in")
    c.add_argument("--precision", default="double", choices=["single", "double"],
                   help="working precision of the computation")
    c.add_argument("--tol", type=float, default=None)
    c.add_argument("--ranks", type=int, nargs="+", default=None)
    c.add_argument("--method", default="qr",
                   choices=["qr", "gram", "gram-mixed", "randomized"])
    c.add_argument("--auto", action="store_true",
                   help="pick method and precision from --tol (paper Sec. 5)")
    c.add_argument("--order", default="forward", choices=["forward", "backward"])
    c.add_argument("--out", required=True)
    c.add_argument("--out-of-core", action="store_true",
                   help="stream from disk instead of loading the tensor")
    c.add_argument("--checkpoint-dir", default=None,
                   help="resumable checkpoints for --out-of-core runs")
    c.add_argument("--verbose", action="store_true",
                   help="per-mode progress for --out-of-core runs")
    c.set_defaults(fn=_cmd_compress)

    r = sub.add_parser("reconstruct", help="expand an archive to a raw file")
    r.add_argument("archive")
    r.add_argument("--out", required=True)
    r.add_argument("--region", default=None,
                   help="per-mode slices, e.g. '0:3,:,2,:' (partial reconstruction)")
    r.set_defaults(fn=_cmd_reconstruct)

    i = sub.add_parser("info", help="inspect an archive")
    i.add_argument("archive")
    i.set_defaults(fn=_cmd_info)

    rc = sub.add_parser("recompress",
                        help="re-truncate an archive (no original data needed)")
    rc.add_argument("archive")
    rc.add_argument("--tol", type=float, default=None)
    rc.add_argument("--ranks", type=int, nargs="+", default=None)
    rc.add_argument("--out", required=True)
    rc.set_defaults(fn=_cmd_recompress)

    s = sub.add_parser("simulate", help="model a parallel run (no computation)")
    s.add_argument("--shape", type=int, nargs="+", required=True)
    s.add_argument("--ranks", type=int, nargs="+", required=True)
    s.add_argument("--grid", type=int, nargs="+", required=True)
    s.add_argument("--method", default="qr", choices=["qr", "gram"])
    s.add_argument("--precision", default="double", choices=["single", "double"])
    s.add_argument("--order", default="forward", choices=["forward", "backward"])
    s.add_argument("--machine", default="andes", choices=["andes", "cascade-lake"])
    s.set_defaults(fn=_cmd_simulate)

    tr = sub.add_parser(
        "trace",
        help="run a traced parallel ST-HOSVD and export observability artifacts",
    )
    tr.add_argument("--shape", type=int, nargs="+", required=True)
    tr.add_argument("--grid", type=int, nargs="+", required=True,
                    help="processor grid (one entry per mode; product = nprocs)")
    tr.add_argument("--tol", type=float, default=None)
    tr.add_argument("--ranks", type=int, nargs="+", default=None)
    tr.add_argument("--method", default="qr", choices=["qr", "gram"])
    tr.add_argument("--precision", default="double", choices=["single", "double"])
    tr.add_argument("--order", default="forward", choices=["forward", "backward"])
    tr.add_argument("--machine", default="andes", choices=["andes", "cascade-lake"],
                    help="machine model for the measured-vs-modeled diff")
    tr.add_argument("--seed", type=int, default=0)
    tr.add_argument("--decay", type=float, default=0.7,
                    help="geometric decay of the synthetic mode spectra")
    tr.add_argument("--out", required=True,
                    help="directory for trace.json and the report tables")
    tr.add_argument("--verbose", action="store_true",
                    help="per-mode progress events from rank 0")
    tr.add_argument("--backend", default=None,
                    choices=["threads", "procs", "sockets"],
                    help="SPMD transport (default: REPRO_SPMD_BACKEND or threads)")
    tr.add_argument("--hosts", nargs="+", default=None, metavar="HOST",
                    help="sockets backend only: spawn workers as "
                         "subprocesses joining over TCP (one address-book "
                         "entry per rank, cycled over HOSTs)")
    tr.add_argument("--sanitize", action="store_true",
                    help="run under the SPMD sanitizer (collective matching, "
                         "deadlock detection, move enforcement)")
    tr.add_argument("--postmortem-dir", default=None,
                    help="enable the flight recorder; on a crash/deadlock "
                         "write a postmortem bundle here")
    tr.set_defaults(fn=_cmd_trace)

    ch = sub.add_parser(
        "chaos",
        help="seeded fault matrix over the fault-tolerant parallel "
             "ST-HOSVD (crashes, drops, kernel NaN), with replay "
             "determinism checks",
    )
    ch.add_argument("--shape", type=int, nargs="+", required=True)
    ch.add_argument("--procs", type=int, required=True)
    ch.add_argument("--tol", type=float, default=None)
    ch.add_argument("--ranks", type=int, nargs="+", default=None)
    ch.add_argument("--method", default="qr", choices=["qr", "gram"])
    ch.add_argument("--precision", default="double", choices=["single", "double"])
    ch.add_argument("--seed", type=int, default=0,
                    help="fault plan seed (and synthetic data seed)")
    ch.add_argument("--decay", type=float, default=0.7,
                    help="geometric decay of the synthetic mode spectra")
    ch.add_argument("--drop", type=float, default=0.01,
                    help="message drop probability for the drop scenarios")
    ch.add_argument("--replays", type=int, default=3,
                    help="runs per scenario; fault traces must be identical")
    ch.add_argument("--error-factor", type=float, default=10.0,
                    help="max allowed reconstruction error relative to the "
                         "fault-free run")
    ch.add_argument("--recover", default="shrink",
                    choices=["shrink", "replace"],
                    help="recovery mode after an injected crash: shrink "
                         "to the survivors, or respawn the dead rank and "
                         "keep the grid shape")
    ch.add_argument("--ckpt-dir", default=None,
                    help="durable checkpoint tier: mirror checkpoints to "
                         "per-replay subdirectories of this path")
    ch.add_argument("--backend", default=None,
                    choices=["threads", "procs", "sockets"],
                    help="SPMD transport (default: REPRO_SPMD_BACKEND or threads)")
    ch.add_argument("--hosts", nargs="+", default=None, metavar="HOST",
                    help="sockets backend only: spawn workers as "
                         "subprocesses joining over TCP")
    ch.add_argument("--postmortem-dir", default=None,
                    help="enable the flight recorder; if a scenario escapes "
                         "recovery and aborts the world, write a postmortem "
                         "bundle here")
    ch.set_defaults(fn=_cmd_chaos)

    pm = sub.add_parser(
        "postmortem",
        help="render a crash postmortem bundle (written by runs launched "
             "with a FlightRecorder(postmortem_dir=...) or --postmortem-dir)",
    )
    pm.add_argument("bundle", help="path to a postmortem-*.json bundle")
    pm.add_argument("--events", type=int, default=10,
                    help="trailing flight-recorder events shown per rank "
                         "(0 disables the per-rank tails)")
    pm.set_defaults(fn=_cmd_postmortem)

    tp = sub.add_parser(
        "top",
        help="live per-rank telemetry of a synthetic parallel ST-HOSVD "
             "(status, heartbeat age, recorded events, comm counters)",
    )
    tp.add_argument("--shape", type=int, nargs="+", required=True)
    tp.add_argument("--grid", type=int, nargs="+", required=True,
                    help="processor grid (one entry per mode; product = nprocs)")
    tp.add_argument("--tol", type=float, default=None)
    tp.add_argument("--ranks", type=int, nargs="+", default=None)
    tp.add_argument("--method", default="qr", choices=["qr", "gram"])
    tp.add_argument("--seed", type=int, default=0)
    tp.add_argument("--decay", type=float, default=0.7,
                    help="geometric decay of the synthetic mode spectra")
    tp.add_argument("--repeat", type=int, default=1,
                    help="run the decomposition this many times (longer runs "
                         "give the live view something to watch)")
    tp.add_argument("--interval", type=float, default=0.5,
                    help="seconds between repaints (heartbeats tick at half "
                         "this)")
    tp.add_argument("--backend", default=None,
                    choices=["threads", "procs", "sockets"],
                    help="SPMD transport (default: REPRO_SPMD_BACKEND or threads)")
    tp.add_argument("--postmortem-dir", default=None,
                    help="write a postmortem bundle here if the run aborts")
    tp.set_defaults(fn=_cmd_top)

    be = sub.add_parser(
        "bench",
        help="compare two versioned benchmark snapshots "
             "(BENCH_*.json) with per-metric tolerance bands",
    )
    be.add_argument("--compare", nargs=2, required=True,
                    metavar=("OLD", "NEW"),
                    help="baseline and candidate snapshot paths")
    be.add_argument("--tolerance", type=float, default=0.25,
                    help="default relative tolerance band (0.25 = 25%%)")
    be.add_argument("--tolerance-for", nargs=2, action="append",
                    metavar=("PREFIX", "TOL"), default=None,
                    help="per-metric override: dotted-path prefix and its "
                         "band (repeatable; longest prefix wins)")
    be.add_argument("--all", action="store_true",
                    help="list every shared metric, not only the ones "
                         "outside their band")
    be.add_argument("--strict-missing", action="store_true",
                    help="also fail when the new snapshot lost metrics the "
                         "baseline had")
    be.set_defaults(fn=_cmd_bench)

    ln = sub.add_parser(
        "lint",
        help="static SPMD lint: rank-divergent collectives, use-after-move, "
             "tag mismatches, raw LAPACK calls",
    )
    ln.add_argument("paths", nargs="*",
                    help="files or directories (default: the repro package "
                         "and ./examples)")
    ln.add_argument("--strict", action="store_true",
                    help="exit non-zero when any finding is reported (CI gate)")
    ln.add_argument("--rules", nargs="+", default=None,
                    metavar="RULE",
                    help="subset of rules to run (default: all of "
                         "rank-divergent-collective, use-after-move, "
                         "tag-mismatch, raw-lapack)")
    ln.set_defaults(fn=_cmd_lint)

    vf = sub.add_parser(
        "verify",
        help="whole-program SPMD verifier: interprocedural comm-trace "
             "matching, ownership, and deadlock analysis",
    )
    vf.add_argument("paths", nargs="*",
                    help="files or directories (default: the repro package "
                         "and ./examples)")
    vf.add_argument("--strict", action="store_true",
                    help="exit non-zero when any finding is reported (CI gate)")
    vf.add_argument("--world-size", type=int, default=2,
                    help="abstract ranks to execute per driver (default 2)")
    vf.add_argument("--entries", nargs="+", default=None, metavar="FUNC",
                    help="only analyze these functions (name or qualname; "
                         "default: every comm-taking call-graph root)")
    vf.add_argument("--graph-dir", default=None,
                    help="write per-driver comm-graph artifacts "
                         "(<entry>.dot + <entry>.json) into this directory")
    vf.add_argument("--baseline", default=None,
                    help="JSON file of known findings "
                         "([{kind,file,line}, ...]) to subtract")
    vf.set_defaults(fn=_cmd_verify)

    t = sub.add_parser("tune", help="search processor grids via the model")
    t.add_argument("--shape", type=int, nargs="+", required=True)
    t.add_argument("--ranks", type=int, nargs="+", required=True)
    t.add_argument("--procs", type=int, required=True)
    t.add_argument("--method", default="qr", choices=["qr", "gram"])
    t.add_argument("--precision", default="double", choices=["single", "double"])
    t.add_argument("--machine", default="andes", choices=["andes", "cascade-lake"])
    t.add_argument("--memory-limit-gib", type=float, default=None)
    t.add_argument("--top", type=int, default=5)
    t.set_defaults(fn=_cmd_tune)
    return ap


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("compress", "recompress", "trace", "chaos", "top") and (
        args.tol is None
    ) == (args.ranks is None):
        raise SystemExit(f"{args.command}: pass exactly one of --tol / --ranks")
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
