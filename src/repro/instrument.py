"""Lightweight instrumentation: flop counters and phase timers.

Every kernel in :mod:`repro.linalg` accepts an optional
:class:`FlopCounter`; the parallel drivers thread one through per rank.
The counters feed two consumers:

* the performance model (:mod:`repro.perf`), which converts flops to
  modeled time via per-precision flop rates, and
* the benchmark harness, which reports the per-phase breakdowns
  (LQ/Gram vs SVD/EVD vs TTM) shown in the paper's stacked-bar figures.

Phases follow the paper's breakdown categories; per-mode attribution is
kept so reports can mirror "computations of each mode ordered 0..N-1".
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["FlopCounter", "PhaseTimer", "PHASE_LQ", "PHASE_GRAM", "PHASE_SVD", "PHASE_EVD", "PHASE_TTM", "PHASE_COMM"]

PHASE_LQ = "lq"
PHASE_GRAM = "gram"
PHASE_SVD = "svd"
PHASE_EVD = "evd"
PHASE_TTM = "ttm"
PHASE_COMM = "comm"


@dataclass
class FlopCounter:
    """Accumulates floating-point operation counts by (phase, mode).

    ``mode=None`` buckets flops not attributable to a tensor mode.
    """

    total: int = 0
    by_phase: dict = field(default_factory=lambda: defaultdict(int))
    by_phase_mode: dict = field(default_factory=lambda: defaultdict(int))

    def add(self, flops: int, phase: str = "other", mode: int | None = None) -> None:
        """Record ``flops`` operations under ``phase`` (and optionally a mode)."""
        flops = int(flops)
        if flops < 0:
            raise ValueError("flop count cannot be negative")
        self.total += flops
        self.by_phase[phase] += flops
        self.by_phase_mode[(phase, mode)] += flops

    def phase_total(self, phase: str) -> int:
        """Flops recorded under one phase."""
        return self.by_phase.get(phase, 0)

    def merge(self, other: "FlopCounter") -> None:
        """Fold another counter's tallies into this one."""
        self.total += other.total
        for k, v in other.by_phase.items():
            self.by_phase[k] += v
        for k, v in other.by_phase_mode.items():
            self.by_phase_mode[k] += v

    def snapshot(self) -> dict:
        """Plain-dict summary (for reports / assertions)."""
        return {
            "total": self.total,
            "by_phase": dict(self.by_phase),
        }


@dataclass
class PhaseTimer:
    """Wall-clock timer with the same phase/mode bucketing as FlopCounter."""

    by_phase: dict = field(default_factory=lambda: defaultdict(float))
    by_phase_mode: dict = field(default_factory=lambda: defaultdict(float))

    @contextmanager
    def phase(self, name: str, mode: int | None = None):
        """Context manager accumulating elapsed seconds into a bucket."""
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self.by_phase[name] += elapsed
            self.by_phase_mode[(name, mode)] += elapsed

    @property
    def total(self) -> float:
        return sum(self.by_phase.values())

    def attribute_comm(
        self, seconds: float, from_phase: str, mode: int | None = None
    ) -> None:
        """Move ``seconds`` out of ``from_phase`` into the Comm bucket.

        The drivers time whole per-mode blocks (LQ, Gram, TTM) with
        :meth:`phase`; the span tracer separately measures how much of
        each block was spent inside communicator operations.  Moving
        (not adding) that time keeps the breakdown rows disjoint and
        :attr:`total` unchanged.  No-op for non-positive ``seconds``;
        clamps to the donor bucket so rows never go negative.
        """
        if seconds <= 0.0:
            return
        seconds = min(
            seconds,
            self.by_phase.get(from_phase, 0.0),
            self.by_phase_mode.get((from_phase, mode), 0.0),
        )
        if seconds <= 0.0:
            return
        self.by_phase[from_phase] -= seconds
        self.by_phase[PHASE_COMM] += seconds
        self.by_phase_mode[(from_phase, mode)] -= seconds
        self.by_phase_mode[(PHASE_COMM, mode)] += seconds

    def merge_max(self, other: "PhaseTimer") -> None:
        """Keep the per-phase maximum (the paper reports the slowest rank)."""
        for k, v in other.by_phase.items():
            self.by_phase[k] = max(self.by_phase.get(k, 0.0), v)
        for k, v in other.by_phase_mode.items():
            self.by_phase_mode[k] = max(self.by_phase_mode.get(k, 0.0), v)
