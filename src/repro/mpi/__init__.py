"""Simulated MPI runtime: threads-as-ranks, mailboxes, collectives, clocks.

This package stands in for MPI/mpi4py (not available in this
environment): the parallel algorithms are written in pure
message-passing style against :class:`Communicator`, and
:func:`run_spmd` plays the role of ``mpiexec``.  An optional
alpha-beta-gamma :class:`CostModel` gives every rank a logical clock
advanced by the actual message schedule, which is what the scaling
benchmarks report.
"""

from .communicator import Communicator
from .context import SpmdContext
from .costmodel import CommCosts, ComputeRates, CostModel, RankClock
from .launcher import run_spmd, SpmdResult
from .request import Request, waitall
from .tracing import CommTrace
from .transport import Transport, available_backends
from .tuning import CollectiveTuning
from .cart import CartComm
from .algorithms import (
    allreduce_recursive_doubling,
    allgather_ring,
    bcast_scatter_allgather,
    reduce_scatter_ring,
)

__all__ = [
    "Communicator",
    "SpmdContext",
    "CommCosts",
    "ComputeRates",
    "CostModel",
    "RankClock",
    "run_spmd",
    "SpmdResult",
    "Request",
    "waitall",
    "CommTrace",
    "Transport",
    "available_backends",
    "CollectiveTuning",
    "CartComm",
    "allreduce_recursive_doubling",
    "allgather_ring",
    "bcast_scatter_allgather",
    "reduce_scatter_ring",
]
