"""Cartesian topology communicator (MPI_Cart_* equivalents).

TuckerMPI organizes its processes with MPI's Cartesian topology API:
``MPI_Cart_create`` to build the grid, ``MPI_Cart_sub`` to carve out the
per-mode processor fibers, ``MPI_Cart_shift`` for neighbor exchanges.
:class:`CartComm` provides those on top of the simulated runtime, and
:class:`repro.dist.dtensor.GridComms` is its thin consumer.

Linearization is mode-0-fastest, consistent with tensor layout and
:class:`repro.dist.grid.ProcessorGrid` (which remains the pure-math
view; ``CartComm`` owns the communication side).
"""

from __future__ import annotations

from typing import Sequence

from ..errors import CommunicatorError, DistributionError
from .communicator import Communicator

__all__ = ["CartComm"]


class CartComm:
    """A communicator with an attached Cartesian grid topology."""

    def __init__(self, comm: Communicator, dims: Sequence[int], *,
                 periodic: Sequence[bool] | None = None) -> None:
        dims = tuple(int(d) for d in dims)
        if any(d <= 0 for d in dims) or not dims:
            raise DistributionError(f"grid dims must be positive, got {dims}")
        size = 1
        for d in dims:
            size *= d
        if size != comm.size:
            raise DistributionError(
                f"grid {dims} needs {size} ranks, communicator has {comm.size}"
            )
        self.comm = comm
        self.dims = dims
        self.periodic = tuple(bool(p) for p in (periodic or (False,) * len(dims)))
        if len(self.periodic) != len(dims):
            raise DistributionError("periodic flags must match grid dimensionality")

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.dims)

    @property
    def rank(self) -> int:
        return self.comm.rank

    @property
    def size(self) -> int:
        return self.comm.size

    def coords_of(self, rank: int) -> tuple[int, ...]:
        """MPI_Cart_coords."""
        if not 0 <= rank < self.size:
            raise DistributionError(f"rank {rank} out of range")
        out = []
        for d in self.dims:
            out.append(rank % d)
            rank //= d
        return tuple(out)

    def rank_of(self, coords: Sequence[int]) -> int:
        """MPI_Cart_rank (with periodic wraparound where enabled)."""
        if len(coords) != self.ndim:
            raise DistributionError(f"expected {self.ndim} coordinates")
        r = 0
        stride = 1
        for c, d, per in zip(coords, self.dims, self.periodic):
            c = int(c)
            if per:
                c %= d
            elif not 0 <= c < d:
                raise DistributionError(f"coordinate {c} out of range for dim {d}")
            r += c * stride
            stride *= d
        return r

    @property
    def coords(self) -> tuple[int, ...]:
        return self.coords_of(self.rank)

    # ------------------------------------------------------------------
    def shift(self, dim: int, disp: int = 1) -> tuple[int | None, int | None]:
        """MPI_Cart_shift: (source, destination) ranks for a shift.

        Returns ``None`` in a slot that falls off a non-periodic edge
        (MPI's ``MPI_PROC_NULL``).
        """
        if not 0 <= dim < self.ndim:
            raise DistributionError(f"dimension {dim} out of range")
        me = list(self.coords)

        def neighbour(offset: int) -> int | None:
            c = me[dim] + offset
            if self.periodic[dim]:
                c %= self.dims[dim]
            elif not 0 <= c < self.dims[dim]:
                return None
            coords = list(me)
            coords[dim] = c
            return self.rank_of(coords)

        return neighbour(-disp), neighbour(disp)

    def sub(self, keep: Sequence[bool]) -> "CartComm":
        """MPI_Cart_sub: slice the grid, keeping the flagged dimensions.

        Ranks sharing coordinates in the *dropped* dimensions form a new
        Cartesian communicator over the kept ones — the operation that
        produces mode fibers (keep exactly one dimension).  Collective.
        """
        keep = tuple(bool(k) for k in keep)
        if len(keep) != self.ndim:
            raise DistributionError("keep flags must match grid dimensionality")
        me = self.coords
        color = 0
        stride = 1
        for c, d, k in zip(me, self.dims, keep):
            if not k:
                color += c * stride
                stride *= d
        # key: linearized coords within kept dims, preserving order
        key = 0
        stride = 1
        for c, d, k in zip(me, self.dims, keep):
            if k:
                key += c * stride
                stride *= d
        sub = self.comm.split(color=color, key=key)
        assert sub is not None
        sub_dims = tuple(d for d, k in zip(self.dims, keep) if k)
        sub_per = tuple(p for p, k in zip(self.periodic, keep) if k)
        if not sub_dims:
            raise CommunicatorError("cannot drop every dimension")
        return CartComm(sub, sub_dims, periodic=sub_per)

    def fiber(self, dim: int) -> "CartComm":
        """The mode-``dim`` processor fiber through this rank."""
        keep = [False] * self.ndim
        keep[dim] = True
        return self.sub(keep)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CartComm(dims={'x'.join(map(str, self.dims))}, rank={self.rank})"
