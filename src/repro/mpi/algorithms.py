"""Alternative collective algorithms (selectable, equivalently correct).

The default collectives in :class:`~repro.mpi.communicator.Communicator`
use one textbook algorithm each.  Real MPI implementations switch
algorithms by message size and communicator shape; this module provides
the classic alternatives so (a) the cost model can compare their modeled
critical paths and (b) equivalence tests pin down the collectives'
semantics independent of any one implementation:

* ``allreduce_recursive_doubling`` — log P rounds of pairwise exchanges
  (halves the latency of reduce+broadcast; the short-message champion);
* ``allgather_ring`` — P−1 neighbor shifts of one slot each (bandwidth-
  optimal for long messages);
* ``bcast_scatter_allgather`` — van de Geijn long-message broadcast:
  scatter the payload then ring-allgather the pieces;
* ``reduce_scatter_ring`` — P−1 shift-and-accumulate rounds moving one
  slot per step (bandwidth-optimal reduce_scatter).

All operate on NumPy-array payloads and any communicator size.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import CommunicatorError
from .communicator import Communicator

__all__ = [
    "allreduce_recursive_doubling",
    "allgather_ring",
    "bcast_scatter_allgather",
    "reduce_scatter_ring",
]

_TAG = 31


def allreduce_recursive_doubling(
    comm: Communicator,
    value: np.ndarray,
    op: Callable | None = None,
) -> np.ndarray:
    """Recursive-doubling allreduce (deterministic combine order).

    Non-power-of-two sizes use the standard fold: the first ``2r`` ranks
    pre-combine pairwise so a power-of-two subset runs the butterfly,
    then results fan back out.
    """
    if op is None:
        op = lambda a, b: a + b  # noqa: E731
    acc = np.array(value, copy=True)
    p, me = comm.size, comm.rank
    if p == 1:
        return acc
    p2 = 1 << (p.bit_length() - 1)
    rem = p - p2

    # Fold phase: ranks [p2, p) send into [0, rem).
    if me >= p2:
        comm.send(acc, me - p2, tag=_TAG)
        active = False
    else:
        active = True
        if me < rem:
            other = comm.recv(me + p2, tag=_TAG)
            acc = op(acc, other)

    if active:
        mask = 1
        while mask < p2:
            partner = me ^ mask
            other = comm.sendrecv(acc, partner, tag=_TAG)
            # Deterministic order: lower rank's contribution first.
            acc = op(other, acc) if partner < me else op(acc, other)
            mask <<= 1

    # Unfold phase.
    if me >= p2:
        acc = comm.recv(me - p2, tag=_TAG)
    elif me < rem:
        comm.send(acc, me + p2, tag=_TAG)
    return acc


def allgather_ring(comm: Communicator, value: np.ndarray) -> list:
    """Ring allgather: P−1 shifts, each forwarding one received slot."""
    p, me = comm.size, comm.rank
    slots: list = [None] * p
    slots[me] = np.array(value, copy=True)
    right = (me + 1) % p
    left = (me - 1) % p
    carry = slots[me]
    for step in range(p - 1):
        comm.send(carry, right, tag=_TAG)
        carry = comm.recv(left, tag=_TAG)
        slots[(me - step - 1) % p] = carry
    return slots


def bcast_scatter_allgather(
    comm: Communicator, value: np.ndarray | None, root: int = 0
) -> np.ndarray:
    """van de Geijn broadcast: scatter slices from root, ring-allgather.

    Long-message algorithm: total traffic ~2x the payload instead of the
    binomial tree's ``payload * log P``.  The payload must be a 1-D
    array on the root (reshape around the call for higher ranks).
    """
    p, me = comm.size, comm.rank
    if me == root:
        if value is None:
            raise CommunicatorError("root must supply the broadcast payload")
        value = np.asarray(value)
        if value.ndim != 1:
            raise CommunicatorError("scatter-allgather bcast expects a 1-D array")
        meta = (value.shape[0], value.dtype.name)
    else:
        meta = None
    # Small metadata via the tree bcast (as real MPI does internally).
    length, dtype_name = comm.bcast(meta, root=root)
    bounds = np.linspace(0, length, p + 1).astype(int)
    if me == root:
        pieces = [np.ascontiguousarray(value[bounds[q] : bounds[q + 1]]) for q in range(p)]
    else:
        pieces = None
    mine = comm.scatter(pieces, root=root)
    gathered = allgather_ring(comm, mine)
    return np.concatenate(gathered)


def reduce_scatter_ring(
    comm: Communicator,
    values: Sequence[np.ndarray],
    op: Callable | None = None,
) -> np.ndarray:
    """Ring reduce-scatter: P−1 shift-accumulate rounds of one slot each.

    Slot ``q`` ends on rank ``q``, reduced over every rank's ``values[q]``.
    Bandwidth-optimal: each rank moves ``(P-1)/P`` of one slot per round.
    """
    if op is None:
        op = lambda a, b: a + b  # noqa: E731
    p, me = comm.size, comm.rank
    if len(values) != p:
        raise CommunicatorError(f"reduce_scatter needs exactly {p} payloads")
    if p == 1:
        return np.array(values[0], copy=True)
    right = (me + 1) % p
    left = (me - 1) % p
    # Slot j originates at rank j+1 and travels the ring once, each rank
    # folding in its contribution; after P-1 rounds rank j holds the
    # full reduction of slot j.  At step s this rank sends its partial
    # for slot (me-1-s) and receives/extends the one for (me-2-s).
    carry = None
    for s in range(p - 1):
        send_slot = (me - 1 - s) % p
        to_send = carry if s > 0 else np.array(values[send_slot], copy=True)
        comm.send(to_send, right, tag=_TAG)
        incoming = comm.recv(left, tag=_TAG)
        recv_slot = (me - 2 - s) % p
        carry = op(incoming, values[recv_slot])
    return carry
