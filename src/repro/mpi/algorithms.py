"""Named entry points for the collective algorithms (forced selection).

The algorithms themselves now live inside
:class:`~repro.mpi.communicator.Communicator`, which dispatches between
them by message size and communicator shape (see
:mod:`repro.mpi.tuning`).  These wrappers force one specific algorithm —
useful for equivalence tests pinning down collective semantics
independent of the dispatch table, and for modeled-cost comparisons in
the benchmarks:

* ``allreduce_recursive_doubling`` — log P rounds of pairwise exchanges
  (halves the latency of reduce+broadcast; the short-message champion);
* ``allgather_ring`` — P−1 neighbor shifts of one slot each (bandwidth-
  optimal for long messages);
* ``bcast_scatter_allgather`` — van de Geijn long-message broadcast:
  scatter the payload then ring-allgather the pieces;
* ``reduce_scatter_ring`` — P−1 shift-and-accumulate rounds moving one
  slot per step (bandwidth-optimal reduce_scatter).

All operate on NumPy-array payloads and any communicator size.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..errors import CommunicatorError
from .communicator import Communicator

__all__ = [
    "allreduce_recursive_doubling",
    "allgather_ring",
    "bcast_scatter_allgather",
    "reduce_scatter_ring",
]


def allreduce_recursive_doubling(
    comm: Communicator,
    value: np.ndarray,
    op: Callable | None = None,
) -> np.ndarray:
    """Recursive-doubling allreduce (deterministic combine order).

    Non-power-of-two sizes use the standard fold: the first ``2r`` ranks
    pre-combine pairwise so a power-of-two subset runs the butterfly,
    then results fan back out.
    """
    return comm.allreduce(value, op=op, algorithm="recursive_doubling")


def allgather_ring(comm: Communicator, value: np.ndarray) -> list:
    """Ring allgather: P−1 shifts, each forwarding one received slot."""
    return comm.allgather(value, algorithm="ring")


def bcast_scatter_allgather(
    comm: Communicator, value: np.ndarray | None, root: int = 0
) -> np.ndarray:
    """van de Geijn broadcast: scatter slices from root, ring-allgather.

    Long-message algorithm: total traffic ~2x the payload instead of the
    binomial tree's ``payload * log P``.  The payload must be a 1-D
    array on the root (reshape around the call for higher ranks; the
    communicator-level dispatch handles N-D payloads internally).
    """
    if comm.rank == root:
        if value is None:
            raise CommunicatorError("root must supply the broadcast payload")
        value = np.asarray(value)
        if value.ndim != 1:
            raise CommunicatorError("scatter-allgather bcast expects a 1-D array")
    return comm.bcast(value, root=root, algorithm="scatter_allgather")


def reduce_scatter_ring(
    comm: Communicator,
    values: Sequence[np.ndarray],
    op: Callable | None = None,
) -> np.ndarray:
    """Ring reduce-scatter: P−1 shift-accumulate rounds of one slot each.

    Slot ``q`` ends on rank ``q``, reduced over every rank's ``values[q]``.
    Bandwidth-optimal: each rank moves ``(P-1)/P`` of one slot per round.
    """
    return comm.reduce_scatter(values, op=op, algorithm="ring")
