"""Shared state of a simulated SPMD world.

A :class:`SpmdContext` owns the mailboxes through which the ranks of a
world exchange messages, the coordination structures backing collective
setup operations (communicator split), and an abort flag so one rank's
exception unblocks everyone instead of deadlocking the world.

Messages are addressed by ``(comm_id, destination world rank)`` and
matched on ``(source comm rank, tag)``, giving each (sub)communicator an
isolated message space with MPI's per-channel FIFO ordering guarantee.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import CommunicatorError
from .costmodel import CostModel
from .tuning import CollectiveTuning

__all__ = ["SpmdContext", "Envelope"]

# Default seconds a blocking receive waits before declaring deadlock.
# Functional tests run in milliseconds; a stuck match is a bug, not load.
DEFAULT_RECV_TIMEOUT = 120.0


@dataclass
class Envelope:
    """A message in flight: payload plus logical-clock send timestamp.

    ``moved`` records whether the payload was transferred by reference
    (zero-copy move semantics) rather than snapshotted; moved ndarray
    payloads are frozen (read-only) so sender-side reuse cannot race
    the receiver.  ``nbytes`` carries the sender's modeled wire size so
    receive-side tallies never re-measure the payload.
    """

    payload: Any
    send_time: float
    moved: bool = False
    nbytes: int = 0
    # Sender provenance (a repro.sanitize MoveOrigin / call-site record),
    # populated only when a Sanitizer is attached to the world.
    origin: Any = None


class _Mailbox:
    """Per-(comm, destination-rank) mailbox with blocking matched receive."""

    def __init__(self, abort_event: threading.Event) -> None:
        self._cond = threading.Condition()
        self._queues: dict[tuple[int, int], deque[Envelope]] = defaultdict(deque)
        self._abort = abort_event

    def put(self, source: int, tag: int, envelope: Envelope) -> None:
        with self._cond:
            self._queues[(source, tag)].append(envelope)
            self._cond.notify_all()

    def get(
        self,
        source: int,
        tag: int,
        timeout: float,
        poll: Callable[[], None] | None = None,
        interval: float | None = None,
    ) -> Envelope:
        """Blocking matched receive.

        ``poll``, when given, is invoked *outside* the mailbox lock each
        time the wait wakes without a match (message on another key,
        world state change, or every ``interval`` seconds).  It may
        raise to abort the receive — the hook through which the
        sanitizer's deadlock watchdog and the rank-failure detector
        interrupt a wait that can never be satisfied.  ``poll`` must not
        be called while holding any mailbox lock (it may inspect other
        mailboxes), which is why the loop releases the condition first.
        """
        key = (source, tag)
        deadline = time.monotonic() + timeout
        step = timeout if interval is None else min(interval, timeout)
        while True:
            with self._cond:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if self._abort.is_set():
                    raise CommunicatorError(
                        "SPMD world aborted while receiving"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CommunicatorError(
                        f"receive timed out after {timeout}s waiting for "
                        f"(source={source}, tag={tag}) — likely deadlock"
                    )
                self._cond.wait(timeout=min(step, remaining))
            if poll is not None:
                poll()

    def has(self, source: int, tag: int) -> bool:
        """True when a matched message is queued (no dequeue)."""
        with self._cond:
            q = self._queues.get((source, tag))
            return bool(q)

    def pending(self) -> dict[tuple[int, int], int]:
        """Snapshot of queued message counts per (source, tag)."""
        with self._cond:
            return {k: len(q) for k, q in self._queues.items() if q}

    def pending_envelopes(self) -> dict[tuple[int, int], list[Envelope]]:
        """Snapshot of the queued envelopes per (source, tag)."""
        with self._cond:
            return {k: list(q) for k, q in self._queues.items() if q}

    def try_get(self, source: int, tag: int) -> Envelope | None:
        """Non-blocking matched receive; None when no message is ready."""
        with self._cond:
            if self._abort.is_set():
                raise CommunicatorError("SPMD world aborted while receiving")
            q = self._queues.get((source, tag))
            if q:
                return q.popleft()
            return None

    def wake_all(self) -> None:
        with self._cond:
            self._cond.notify_all()


class _SplitBarrier:
    """Rendezvous used by collective setup ops (split/dup).

    Every member of the parent communicator contributes a value; the
    last arrival computes the result via ``combine`` and publishes it.
    A fresh instance serves each collective call, keyed by the parent's
    per-communicator operation sequence number.
    """

    def __init__(self, size: int) -> None:
        self._size = size
        self._cond = threading.Condition()
        self._contributions: dict[int, Any] = {}
        self._result: Any = None
        self._done = False

    def contribute(self, rank: int, value: Any, combine, timeout: float):
        with self._cond:
            if rank in self._contributions:
                raise CommunicatorError(f"rank {rank} contributed twice to a split")
            self._contributions[rank] = value
            if len(self._contributions) == self._size:
                self._result = combine(self._contributions)
                self._done = True
                self._cond.notify_all()
            else:
                while not self._done:
                    if not self._cond.wait(timeout=timeout):
                        raise CommunicatorError("collective setup timed out — likely deadlock")
            return self._result


class SpmdContext:
    """All shared state for one simulated world of ``world_size`` ranks."""

    def __init__(
        self,
        world_size: int,
        *,
        cost_model: CostModel | None = None,
        recv_timeout: float = DEFAULT_RECV_TIMEOUT,
        comm_trace=None,
        tuning: CollectiveTuning | None = None,
        tracer=None,
        sanitizer=None,
    ) -> None:
        if world_size <= 0:
            raise CommunicatorError("world size must be positive")
        self.world_size = world_size
        self.cost_model = cost_model
        self.recv_timeout = recv_timeout
        self.comm_trace = comm_trace
        self.tracer = tracer  # repro.obs.Tracer bound per rank thread
        self.sanitizer = sanitizer  # repro.sanitize.Sanitizer, or None
        self.tuning = tuning if tuning is not None else CollectiveTuning()
        self.abort_event = threading.Event()
        self.abort_reason: str | None = None
        self._mailboxes: dict[tuple[int, int], _Mailbox] = {}
        self._mailbox_lock = threading.Lock()
        self._comm_id_counter = itertools.count(1)
        self._comm_id_lock = threading.Lock()
        self._split_tables: dict[tuple[int, int], _SplitBarrier] = {}
        self._split_lock = threading.Lock()
        # Lifecycle of each world rank: "running" -> "finalized"|"failed".
        # Blocked receives consult this (via their poll hook) so waiting
        # on a rank that can never send again raises RankFailedError
        # instead of deadlocking until the receive timeout.
        self._rank_status = ["running"] * world_size
        self._status_lock = threading.Lock()
        if sanitizer is not None:
            sanitizer.attach(self)

    # -- mailboxes -----------------------------------------------------
    def mailbox(self, comm_id: int, world_rank: int) -> _Mailbox:
        """The (lazily created) mailbox of one rank in one communicator."""
        key = (comm_id, world_rank)
        with self._mailbox_lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = _Mailbox(self.abort_event)
                self._mailboxes[key] = box
            return box

    def mailboxes(self):
        """Snapshot of ``((comm_id, world_rank), mailbox)`` pairs."""
        with self._mailbox_lock:
            return list(self._mailboxes.items())

    def wake_all_mailboxes(self) -> None:
        """Wake every blocked receiver so it re-runs its poll hook."""
        for _key, box in self.mailboxes():
            box.wake_all()

    # -- rank lifecycle ------------------------------------------------
    def rank_status(self, world_rank: int) -> str:
        """``"running"``, ``"finalized"``, or ``"failed"``."""
        with self._status_lock:
            return self._rank_status[world_rank]

    def mark_finalized(self, world_rank: int) -> None:
        """Record a rank's normal return and wake blocked receivers."""
        with self._status_lock:
            if self._rank_status[world_rank] == "running":
                self._rank_status[world_rank] = "finalized"
        self.wake_all_mailboxes()

    def mark_failed(self, world_rank: int) -> None:
        """Record a rank's death (exception) and wake blocked receivers."""
        with self._status_lock:
            self._rank_status[world_rank] = "failed"
        self.wake_all_mailboxes()

    # -- abort handling ------------------------------------------------
    def abort(self, reason: str) -> None:
        """Mark the world dead and wake every blocked receiver."""
        self.abort_reason = reason
        self.abort_event.set()
        with self._mailbox_lock:
            boxes = list(self._mailboxes.values())
        for box in boxes:
            box.wake_all()

    def check_alive(self) -> None:
        """Raise CommunicatorError if the world has been aborted."""
        if self.abort_event.is_set():
            raise CommunicatorError(
                f"SPMD world aborted: {self.abort_reason or 'unknown reason'}"
            )

    # -- collective setup ----------------------------------------------
    def allocate_comm_id(self) -> int:
        """Hand out a fresh communicator id (thread-safe)."""
        with self._comm_id_lock:
            return next(self._comm_id_counter)

    def split_barrier(self, parent_comm_id: int, seqno: int, size: int) -> _SplitBarrier:
        """Rendezvous table for the ``seqno``-th collective setup op."""
        key = (parent_comm_id, seqno)
        with self._split_lock:
            table = self._split_tables.get(key)
            if table is None:
                table = _SplitBarrier(size)
                self._split_tables[key] = table
            return table
