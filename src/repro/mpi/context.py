"""Shared state of a simulated SPMD world.

A :class:`SpmdContext` owns the mailboxes through which the ranks of a
world exchange messages, the coordination structures backing collective
setup operations (communicator split), and an abort flag so one rank's
exception unblocks everyone instead of deadlocking the world.

Messages are addressed by ``(comm_id, destination world rank)`` and
matched on ``(source comm rank, tag)``, giving each (sub)communicator an
isolated message space with MPI's per-channel FIFO ordering guarantee.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable

from ..errors import CommunicatorError, RankFailedError, WorldAbortedError
from .costmodel import CostModel
from .tuning import CollectiveTuning

__all__ = ["SpmdContext", "Envelope"]

# Default seconds a blocking receive waits before declaring deadlock.
# Functional tests run in milliseconds; a stuck match is a bug, not load.
DEFAULT_RECV_TIMEOUT = 120.0


@dataclass
class Envelope:
    """A message in flight: payload plus logical-clock send timestamp.

    ``moved`` records whether the payload was transferred by reference
    (zero-copy move semantics) rather than snapshotted; moved ndarray
    payloads are frozen (read-only) so sender-side reuse cannot race
    the receiver.  ``nbytes`` carries the sender's modeled wire size so
    receive-side tallies never re-measure the payload.

    ``seq`` and ``checksum`` are populated only under a
    :class:`~repro.faults.Resilience` configuration: ``seq`` is the
    sender's per-(destination, tag) sequence number (receivers discard
    duplicates), ``checksum`` the payload digest receivers verify to
    detect injected bit corruption and wait for the retransmission.
    """

    payload: Any
    send_time: float
    moved: bool = False
    nbytes: int = 0
    # Sender provenance (a repro.sanitize MoveOrigin / call-site record),
    # populated only when a Sanitizer is attached to the world.
    origin: Any = None
    seq: int | None = None
    checksum: int | None = None


class _Mailbox:
    """Per-(comm, destination-rank) mailbox with blocking matched receive."""

    def __init__(self, abort_event: threading.Event) -> None:
        self._cond = threading.Condition()
        self._queues: dict[tuple[int, int], deque[Envelope]] = defaultdict(deque)
        self._abort = abort_event

    def put(self, source: int, tag: int, envelope: Envelope) -> None:
        with self._cond:
            self._queues[(source, tag)].append(envelope)
            self._cond.notify_all()

    def get(
        self,
        source: int,
        tag: int,
        timeout: float,
        poll: Callable[[], None] | None = None,
        interval: float | None = None,
    ) -> Envelope:
        """Blocking matched receive.

        ``poll``, when given, is invoked *outside* the mailbox lock each
        time the wait wakes without a match (message on another key,
        world state change, or every ``interval`` seconds).  It may
        raise to abort the receive — the hook through which the
        sanitizer's deadlock watchdog and the rank-failure detector
        interrupt a wait that can never be satisfied.  ``poll`` must not
        be called while holding any mailbox lock (it may inspect other
        mailboxes), which is why the loop releases the condition first.
        """
        key = (source, tag)
        deadline = time.monotonic() + timeout
        step = timeout if interval is None else min(interval, timeout)
        while True:
            with self._cond:
                q = self._queues.get(key)
                if q:
                    return q.popleft()
                if self._abort.is_set():
                    raise WorldAbortedError(
                        "SPMD world aborted while receiving"
                    )
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CommunicatorError(
                        f"receive timed out after {timeout}s waiting for "
                        f"(source={source}, tag={tag}) — likely deadlock"
                    )
                self._cond.wait(timeout=min(step, remaining))
            if poll is not None:
                poll()

    def has(self, source: int, tag: int) -> bool:
        """True when a matched message is queued (no dequeue)."""
        with self._cond:
            q = self._queues.get((source, tag))
            return bool(q)

    def pending(self) -> dict[tuple[int, int], int]:
        """Snapshot of queued message counts per (source, tag)."""
        with self._cond:
            return {k: len(q) for k, q in self._queues.items() if q}

    def pending_envelopes(self) -> dict[tuple[int, int], list[Envelope]]:
        """Snapshot of the queued envelopes per (source, tag)."""
        with self._cond:
            return {k: list(q) for k, q in self._queues.items() if q}

    def try_get(self, source: int, tag: int) -> Envelope | None:
        """Non-blocking matched receive; None when no message is ready."""
        with self._cond:
            if self._abort.is_set():
                raise WorldAbortedError("SPMD world aborted while receiving")
            q = self._queues.get((source, tag))
            if q:
                return q.popleft()
            return None

    def wake_all(self) -> None:
        with self._cond:
            self._cond.notify_all()


class _SplitBarrier:
    """Rendezvous used by collective setup ops (split/dup).

    Every member of the parent communicator contributes a value; the
    last arrival computes the result via ``combine`` and publishes it.
    A fresh instance serves each collective call, keyed by the parent's
    per-communicator operation sequence number.
    """

    def __init__(self, size: int) -> None:
        self._size = size
        self._cond = threading.Condition()
        self._contributions: dict[int, Any] = {}
        self._result: Any = None
        self._done = False

    def contribute(
        self,
        rank: int,
        value: Any,
        combine,
        timeout: float,
        poll: Callable[[set], None] | None = None,
        interval: float | None = None,
    ):
        """Contribute and block until every member has (honors ``timeout``).

        ``poll``, when given, runs (outside the lock) with the set of
        ranks that have contributed so far each time the wait wakes
        without a result — every ``interval`` seconds, or whenever the
        context wakes rendezvous tables on an abort/rank-death/revoke.
        It may raise to abort the wait, which is how a split blocked on
        a member that has already died fails fast with
        :class:`~repro.errors.RankFailedError` instead of sitting out
        the full timeout.
        """
        deadline = time.monotonic() + timeout
        step = timeout if interval is None else min(interval, timeout)
        with self._cond:
            if rank in self._contributions:
                raise CommunicatorError(f"rank {rank} contributed twice to a split")
            self._contributions[rank] = value
            if len(self._contributions) == self._size:
                self._result = combine(self._contributions)
                self._done = True
                self._cond.notify_all()
                return self._result
        while True:
            with self._cond:
                if self._done:
                    return self._result
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CommunicatorError(
                        "collective setup timed out — likely deadlock"
                    )
                self._cond.wait(timeout=min(step, remaining))
                contributed = set(self._contributions)
            if poll is not None:
                poll(contributed)

    def wake(self) -> None:
        """Wake blocked contributors so they re-run their poll hooks."""
        with self._cond:
            self._cond.notify_all()


class _ShrinkTable:
    """Rendezvous for :meth:`Communicator.shrink` (ULFM shrink analogue).

    Unlike :class:`_SplitBarrier`, the membership is *discovered*, not
    fixed: the table freezes its result once every member of the parent
    communicator that is still running has contributed.  Ranks that die
    mid-shrink simply fall out of the survivor set on the next poll, so
    the rendezvous tolerates exactly the failures it exists to recover
    from.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._contributions: dict[int, int] = {}  # old rank -> world rank
        self._result: tuple[int, list[int]] | None = None

    def contribute(
        self,
        rank: int,
        world_rank: int,
        running_old_ranks: Callable[[], set],
        allocate_comm_id: Callable[[], int],
        timeout: float,
        interval: float,
    ) -> tuple[int, list[int]]:
        """Register a survivor; returns ``(new_comm_id, ordered old ranks)``.

        ``running_old_ranks`` is re-evaluated on every wake (it may also
        raise, e.g. on world abort); the freeze happens when the set of
        contributors covers every still-running member, and the *new*
        communicator id is allocated inside the freeze — after any
        survivor's revocation, so the fresh epoch is never poisoned by
        the revocation threshold.
        """
        deadline = time.monotonic() + timeout
        while True:
            survivors = running_old_ranks()
            with self._cond:
                self._contributions.setdefault(rank, world_rank)
                if self._result is None and survivors <= set(self._contributions):
                    ordered = sorted(r for r in self._contributions if r in survivors)
                    self._result = (allocate_comm_id(), ordered)
                    self._cond.notify_all()
                if self._result is not None:
                    return self._result
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CommunicatorError(
                        f"shrink timed out after {timeout}s waiting for "
                        f"survivors {sorted(survivors - set(self._contributions))}"
                    )
                self._cond.wait(timeout=min(interval, remaining))

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()


class _ReplaceTable:
    """Rendezvous for :meth:`Communicator.replace` (elastic rebuild).

    Unlike :class:`_ShrinkTable`, the target membership is *fixed* — the
    full original world — and part of it does not exist yet when the
    round opens: the failed ranks still have to be respawned.  The
    waiters therefore drive the replacement protocol themselves: every
    poll asks the context to respawn any failed rank that has not yet
    joined, which also re-drives the respawn when a replacement dies
    before contributing (a ``repeat`` crash rule, say).  The table
    freezes — and allocates the fresh epoch's communicator id — once
    all ``world_size`` ranks have contributed.
    """

    def __init__(self, round_no: int, world_size: int) -> None:
        self.round_no = round_no
        self._size = world_size
        self._cond = threading.Condition()
        self._contributions: set[int] = set()
        self._result: int | None = None
        # world rank -> respawns issued this round (capped by the
        # context so a rank that dies instantly forever cannot spin).
        self.respawns: dict[int, int] = {}

    @property
    def done(self) -> bool:
        with self._cond:
            return self._result is not None

    def contributed(self) -> set[int]:
        with self._cond:
            return set(self._contributions)

    def contribute(
        self,
        world_rank: int,
        allocate_comm_id: Callable[[], int],
        ensure_replacements: Callable[["_ReplaceTable"], None],
        timeout: float,
        interval: float,
    ) -> int:
        """Register one rank; blocks until the whole world has rejoined.

        The new communicator id is allocated inside the freeze — after
        every participant (survivors *and* replacements) has revoked
        and contributed — so the fresh epoch is never poisoned by the
        revocation threshold.
        """
        deadline = time.monotonic() + timeout
        with self._cond:
            self._contributions.add(world_rank)
            if self._result is None and len(self._contributions) == self._size:
                self._result = allocate_comm_id()
                self._cond.notify_all()
            if self._result is not None:
                return self._result
        while True:
            # Outside the lock: may fork/spawn a worker or raise.
            ensure_replacements(self)
            with self._cond:
                if self._result is not None:
                    return self._result
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    missing = sorted(set(range(self._size)) - self._contributions)
                    raise CommunicatorError(
                        f"replace timed out after {timeout}s waiting for "
                        f"ranks {missing} to rejoin"
                    )
                self._cond.wait(timeout=min(interval, remaining))

    def wake(self) -> None:
        with self._cond:
            self._cond.notify_all()


class SpmdContext:
    """All shared state for one simulated world of ``world_size`` ranks."""

    def __init__(
        self,
        world_size: int,
        *,
        cost_model: CostModel | None = None,
        recv_timeout: float = DEFAULT_RECV_TIMEOUT,
        comm_trace=None,
        tuning: CollectiveTuning | None = None,
        tracer=None,
        sanitizer=None,
        faults=None,
        resilience=None,
        transport=None,
        recorder=None,
        telemetry=None,
    ) -> None:
        if world_size <= 0:
            raise CommunicatorError("world size must be positive")
        if transport is None:
            from .transport.threads import ThreadTransport

            transport = ThreadTransport()
        self.transport = transport
        self.world_size = world_size
        self.cost_model = cost_model
        self.recv_timeout = recv_timeout
        self.comm_trace = comm_trace
        self.tracer = tracer  # repro.obs.Tracer bound per rank thread
        self.sanitizer = sanitizer  # repro.sanitize.Sanitizer, or None
        self.faults = faults  # repro.faults.FaultInjector, or None
        self.resilience = resilience  # repro.faults.Resilience, or None
        self.recorder = recorder  # repro.obs.FlightRecorder, or None
        self.telemetry = telemetry  # repro.obs.TelemetryHub, or None
        # Sanitizer deadlock report (wait-for-graph edges + open spans),
        # stored by the watchdog just before it aborts the world so the
        # postmortem bundle can carry it.
        self.last_deadlock: dict | None = None
        self.tuning = tuning if tuning is not None else CollectiveTuning()
        self.abort_event = threading.Event()
        self.abort_reason: str | None = None
        self._mailboxes: dict[tuple[int, int], _Mailbox] = {}
        self._mailbox_lock = threading.Lock()
        self._comm_id_counter = itertools.count(1)
        self._comm_id_lock = threading.Lock()
        self._last_comm_id = 0
        self._split_tables: dict[tuple[int, int], _SplitBarrier] = {}
        self._split_lock = threading.Lock()
        self._shrink_tables: dict[tuple[int, int], _ShrinkTable] = {}
        self._shrink_lock = threading.Lock()
        # Epoch revocation (ULFM MPI_Comm_revoke analogue): operations on
        # any communicator with id below this threshold raise
        # CommRevokedError.  Monotone non-decreasing; 0 disables.
        self.revoked_below = 0
        self.revoke_reason: str | None = None
        # Per-rank revocation *visibility*: entry-point checks compare
        # against the threshold each rank has observed — at a blocking
        # wait, at its own revoke(), or seeded at respawn — never the
        # live global above.  A survivor is therefore interrupted at an
        # op index that is a function of program state alone, not of
        # when the asynchronous revocation happened to land, which keeps
        # fault-injection op counters and rng draw streams replayable.
        self._revoked_seen: dict[int, int] = defaultdict(int)
        # World ranks between "caught a failure" (their revoke) and
        # "joined the recovery rendezvous" (table freeze).  A blocked
        # wait on a revoked epoch raises only when the awaited partner
        # is dead, finalized, or in this set — i.e. when the message
        # can never arrive — so consume-vs-raise is never a wall-clock
        # race against a still-progressing peer.
        self._recovering: set[int] = set()
        # Per-rank "node memory" for in-memory distributed checkpoints:
        # holder world rank -> {key: entry}.  A holder only ever reads
        # its *own* slot (buddy copies travel as real messages), so rank
        # death makes the dead rank's slot unreachable — exactly the
        # failure model of node-local RAM checkpoints.
        self._node_store: dict[int, dict] = defaultdict(dict)
        self._node_store_lock = threading.Lock()
        # Lifecycle of each world rank: "running" -> "finalized"|"failed".
        # Blocked receives consult this (via their poll hook) so waiting
        # on a rank that can never send again raises RankFailedError
        # instead of deadlocking until the receive timeout.
        self._rank_status = ["running"] * world_size
        self._status_lock = threading.Lock()
        # Transport hooks: run on abort / revocation so backends with
        # out-of-process ranks can propagate the state change promptly.
        self._abort_hooks: list = []
        self._revoke_hooks: list = []
        # Elastic recovery: the transport installs a respawner so a
        # replace rendezvous can relaunch failed ranks at their original
        # position; the context tracks incarnations and a recovery log
        # for the postmortem bundle and live telemetry.
        self._respawner = None
        self._respawn_lock = threading.Lock()
        self._replace_table: _ReplaceTable | None = None
        self._replace_round = 0
        self._replace_lock = threading.Lock()
        self.max_respawns_per_round = 8
        self.rank_incarnations = [0] * world_size
        self.recovery_log: list[dict] = []
        self._recovery_log_lock = threading.Lock()
        if sanitizer is not None:
            sanitizer.attach(self)

    # -- mailboxes -----------------------------------------------------
    def mailbox(self, comm_id: int, world_rank: int) -> _Mailbox:
        """The (lazily created) mailbox of one rank in one communicator."""
        key = (comm_id, world_rank)
        with self._mailbox_lock:
            box = self._mailboxes.get(key)
            if box is None:
                box = _Mailbox(self.abort_event)
                self._mailboxes[key] = box
            return box

    def mailboxes(self):
        """Snapshot of ``((comm_id, world_rank), mailbox)`` pairs."""
        with self._mailbox_lock:
            return list(self._mailboxes.items())

    # -- delivery (routed through the transport) -----------------------
    def deliver(self, comm_id: int, dest_world: int, source: int,
                tag: int, envelope: Envelope) -> None:
        """Hand one envelope to the transport (blocking handoff)."""
        self.transport.deliver(
            self, comm_id, dest_world, source, tag, envelope
        )

    def deliver_async(self, comm_id: int, dest_world: int, source: int,
                      tag: int, envelope: Envelope):
        """Nonblocking handoff; a completion token, or None when done."""
        return self.transport.deliver_async(
            self, comm_id, dest_world, source, tag, envelope
        )

    def wake_all_mailboxes(self) -> None:
        """Wake every blocked receiver so it re-runs its poll hook."""
        for _key, box in self.mailboxes():
            box.wake_all()
        self.wake_rendezvous()

    def wake_rendezvous(self) -> None:
        """Wake ranks blocked in split/shrink rendezvous (re-poll)."""
        with self._split_lock:
            split_tables = list(self._split_tables.values())
        for table in split_tables:
            table.wake()
        with self._shrink_lock:
            shrink_tables = list(self._shrink_tables.values())
        for table in shrink_tables:
            table.wake()
        with self._replace_lock:
            replace_table = self._replace_table
        if replace_table is not None:
            replace_table.wake()

    # -- rank lifecycle ------------------------------------------------
    def rank_status(self, world_rank: int) -> str:
        """``"running"``, ``"finalized"``, or ``"failed"``."""
        with self._status_lock:
            return self._rank_status[world_rank]

    def mark_finalized(self, world_rank: int) -> None:
        """Record a rank's normal return and wake blocked receivers."""
        with self._status_lock:
            if self._rank_status[world_rank] == "running":
                self._rank_status[world_rank] = "finalized"
        self.wake_all_mailboxes()

    def mark_failed(self, world_rank: int) -> None:
        """Record a rank's death (exception) and wake blocked receivers."""
        with self._status_lock:
            self._rank_status[world_rank] = "failed"
        self.wake_all_mailboxes()

    def set_respawner(self, respawner) -> None:
        """Install ``respawner(world_rank)`` for elastic replacement.

        The transport provides it while the world is live; it must
        relaunch the rank's program at the same world position and
        clear any transport-held error slot for the dead incarnation.
        """
        self._respawner = respawner

    @property
    def supports_replace(self) -> bool:
        """True when the transport can respawn failed ranks in place."""
        return self._respawner is not None

    def log_recovery(self, action: str, **detail) -> None:
        """Append one event to the world's recovery timeline.

        The timeline feeds the postmortem bundle's ``recovery`` section
        and the telemetry snapshot, so operators can see *how* a run
        survived, not just that it did.
        """
        event = {"action": action, "time": time.time(), **detail}
        with self._recovery_log_lock:
            self.recovery_log.append(event)

    def recovery_events(self) -> list[dict]:
        """Snapshot of the recovery timeline."""
        with self._recovery_log_lock:
            return list(self.recovery_log)

    def mark_respawned(self, world_rank: int) -> None:
        """Flip a failed rank back to running ahead of its replacement.

        The dead incarnation's node-local store slot is dropped — its
        "RAM" died with the process; replacements restore state from a
        buddy copy or from the durable checkpoint tier — and the rank's
        incarnation counter advances.  The status flip happens *before*
        the transport launches the replacement so no blocked waiter
        observes a half-replaced world as failed.
        """
        with self._status_lock:
            self._rank_status[world_rank] = "running"
            self.rank_incarnations[world_rank] += 1
            incarnation = self.rank_incarnations[world_rank]
        # A replacement joins a world whose current epoch is already
        # revoked, and must say so deterministically from its first
        # instruction: seed its observed threshold so its opening
        # operation on any pre-crash communicator raises immediately
        # instead of exchanging stale traffic with survivors.
        self._revoked_seen[world_rank] = self.revoked_below
        self._recovering.discard(world_rank)
        with self._node_store_lock:
            self._node_store.pop(world_rank, None)
        self.log_recovery(
            "respawn", rank=world_rank, incarnation=incarnation,
        )
        if self.recorder is not None:
            self.recorder.record(
                world_rank, "recovery", name="respawn",
                incarnation=incarnation,
            )
        self.wake_all_mailboxes()

    def failed_ranks(self) -> list[int]:
        """World ranks currently marked failed."""
        with self._status_lock:
            return [
                r for r, s in enumerate(self._rank_status) if s == "failed"
            ]

    def running_world_ranks(self) -> set[int]:
        """World ranks still marked running."""
        with self._status_lock:
            return {
                r for r, s in enumerate(self._rank_status) if s == "running"
            }

    # -- abort handling ------------------------------------------------
    def add_abort_hook(self, hook) -> None:
        """Register ``hook(reason)`` to run on :meth:`abort`.

        The process transport uses this to push the abort out-of-band
        to every worker process, whose local abort mirrors would
        otherwise only learn of it at their next RPC.
        """
        self._abort_hooks.append(hook)

    def add_revoke_hook(self, hook) -> None:
        """Register ``hook(threshold, reason)`` to run on a revocation."""
        self._revoke_hooks.append(hook)

    def abort(self, reason: str) -> None:
        """Mark the world dead and wake every blocked receiver."""
        self.abort_reason = reason
        self.abort_event.set()
        with self._mailbox_lock:
            boxes = list(self._mailboxes.values())
        for box in boxes:
            box.wake_all()
        self.wake_rendezvous()
        for hook in self._abort_hooks:
            hook(reason)

    def check_alive(self) -> None:
        """Raise WorldAbortedError if the world has been aborted."""
        if self.abort_event.is_set():
            raise WorldAbortedError(
                f"SPMD world aborted: {self.abort_reason or 'unknown reason'}"
            )

    # -- collective setup ----------------------------------------------
    def allocate_comm_id(self) -> int:
        """Hand out a fresh communicator id (thread-safe)."""
        with self._comm_id_lock:
            self._last_comm_id = next(self._comm_id_counter)
            return self._last_comm_id

    def split_barrier(self, parent_comm_id: int, seqno: int, size: int) -> _SplitBarrier:
        """Rendezvous table for the ``seqno``-th collective setup op."""
        key = (parent_comm_id, seqno)
        with self._split_lock:
            table = self._split_tables.get(key)
            if table is None:
                table = _SplitBarrier(size)
                self._split_tables[key] = table
            return table

    def shrink_table(self, parent_comm_id: int, seqno: int) -> _ShrinkTable:
        """Rendezvous table for the ``seqno``-th shrink of one communicator."""
        key = (parent_comm_id, seqno)
        with self._shrink_lock:
            table = self._shrink_tables.get(key)
            if table is None:
                table = _ShrinkTable()
                self._shrink_tables[key] = table
            return table

    def _rendezvous_interval(self) -> float:
        """Poll cadence for rendezvous waits (dead-member detection)."""
        interval = (
            self.sanitizer.watchdog_interval if self.sanitizer is not None
            else self.fault_poll_interval
        )
        # Dead-member detection even without faults or a sanitizer.
        return 0.25 if interval is None else interval

    def split_rendezvous(
        self,
        parent_comm_id: int,
        seqno: int,
        size: int,
        rank: int,
        value: tuple,
        members: list[int],
        world_rank: int,
    ) -> dict:
        """One rank's contribution to a collective split, blocking for all.

        Runs entirely on the side that owns the world state (the caller
        for the threads backend, the master for the process backend):
        grouping, ordering, *and the new communicator-id allocation*
        happen once, inside the last contributor's combine, so ids are
        handed out exactly once per color group regardless of which
        process asked.  Returns the full ``{color: (new_comm_id,
        world_members, old_ranks)}`` map.
        """
        table = self.split_barrier(parent_comm_id, seqno, size)

        def combine(contributions: dict[int, tuple]) -> dict:
            groups: dict[int, list] = {}
            for old_rank, (c, k) in contributions.items():
                if c is not None:
                    groups.setdefault(c, []).append((k, old_rank))
            out = {}
            for c, group in groups.items():
                group.sort()
                new_id = self.allocate_comm_id()
                out[c] = (
                    new_id,
                    [members[old] for _, old in group],
                    [old for _, old in group],
                )
            return out

        def poll(contributed: set) -> None:
            # A split blocked on a member that can never contribute —
            # dead, finalized, or off recovering a revoked epoch — can
            # never complete; fail fast like a blocked receive would.
            # Members that are still making progress get to contribute
            # even after a revocation lands, so whether this split
            # completes or raises is decided by program state alone.
            self.check_alive()
            revoked = parent_comm_id < self.revoked_below
            for old, world in enumerate(members):
                if old in contributed:
                    continue
                status = self.rank_status(world)
                if revoked and (status != "running"
                                or self.is_recovering(world)):
                    self.note_revocation_seen(world_rank)
                    self.check_revoked(parent_comm_id)
                if status != "running":
                    raise RankFailedError(
                        f"rank {world_rank} blocked in split "
                        f"but member rank {world} already {status}"
                    )

        return table.contribute(
            rank, value, combine, self.recv_timeout,
            poll=poll, interval=self._rendezvous_interval(),
        )

    def shrink_rendezvous(
        self,
        parent_comm_id: int,
        seqno: int,
        rank: int,
        world_rank: int,
        members: list[int],
    ) -> tuple[int, list[int]]:
        """One survivor's contribution to a shrink, blocking for the rest.

        Like :meth:`split_rendezvous`, this runs where the world state
        lives, so the survivor discovery (``running_world_ranks``) and
        the post-revocation communicator-id allocation are a single
        authoritative computation.  Returns ``(new_comm_id, ordered old
        ranks)``.
        """
        table = self.shrink_table(parent_comm_id, seqno)

        def running_old_ranks() -> set:
            self.check_alive()
            running = self.running_world_ranks()
            return {i for i, w in enumerate(members) if w in running}

        def allocate() -> int:
            # Freeze point: every survivor has arrived, the recovery is
            # committed — nobody is "recovering" any more, so the next
            # failure round starts with a clean visibility slate.
            self._recovering.clear()
            return self.allocate_comm_id()

        interval = self.fault_poll_interval or 0.25
        return table.contribute(
            rank, world_rank, running_old_ranks,
            allocate, self.recv_timeout, interval,
        )

    def replace_rendezvous(self, world_rank: int) -> tuple[int, int]:
        """One rank's contribution to a full-world replace.

        Survivors and freshly respawned replacements all land here; the
        round's table respawns any failed rank that has not yet joined
        (and respawns it *again* if the replacement dies first), then
        freezes once the entire original world has contributed.
        Returns ``(new_comm_id, replace_round)``.

        Keyed by a world-global round counter rather than the parent
        communicator's operation sequence, because a replacement worker
        shares no communicator history with the survivors — the round
        number is the only rendezvous coordinate both sides can derive.
        """
        if self._respawner is None:
            raise CommunicatorError(
                "recover='replace' needs a transport that can respawn "
                "ranks; run under run_spmd with the threads, procs, or "
                "sockets backend"
            )
        with self._replace_lock:
            table = self._replace_table
            if table is None or table.done:
                self._replace_round += 1
                table = _ReplaceTable(self._replace_round, self.world_size)
                self._replace_table = table

        def allocate() -> int:
            self._recovering.clear()
            new_id = self.allocate_comm_id()
            self.log_recovery(
                "replace_commit", round=table.round_no, comm_id=new_id,
                respawns=dict(table.respawns),
            )
            return new_id

        interval = self.fault_poll_interval or 0.25
        new_id = table.contribute(
            world_rank, allocate, self._ensure_replacements,
            self.recv_timeout, interval,
        )
        return new_id, table.round_no

    def _ensure_replacements(self, table: _ReplaceTable) -> None:
        """Respawn every failed rank that has not yet joined ``table``.

        Serialized by a dedicated lock so concurrent pollers issue each
        respawn exactly once: :meth:`mark_respawned` flips the rank
        back to "running" before the transport launches it, and only
        "failed" ranks are eligible here.
        """
        self.check_alive()
        with self._respawn_lock:
            joined = table.contributed()
            for r in range(self.world_size):
                if r in joined or self.rank_status(r) != "failed":
                    continue
                count = table.respawns.get(r, 0)
                if count >= self.max_respawns_per_round:
                    raise CommunicatorError(
                        f"rank {r} died {count} times during replace "
                        f"round {table.round_no}; giving up on replacement"
                    )
                table.respawns[r] = count + 1
                self.mark_respawned(r)
                self._respawner(r)

    # -- epoch revocation ----------------------------------------------
    def revoke_current(self, reason: str, world_rank: int | None = None) -> None:
        """Poison every communicator allocated so far (MPI_Comm_revoke).

        Any operation on a communicator whose id predates this call
        raises :class:`~repro.errors.CommRevokedError`; blocked
        receivers and rendezvous waiters are woken so they observe it
        immediately.  Communicator ids allocated *after* the revocation
        (the post-shrink epoch) are unaffected.  Idempotent and safe to
        call concurrently from several survivors: the threshold only
        ever grows, and :class:`_ShrinkTable` allocates the new epoch's
        id strictly after every survivor has revoked and contributed.
        """
        with self._comm_id_lock:
            threshold = self._last_comm_id + 1
            if threshold > self.revoked_below:
                self.revoked_below = threshold
                self.revoke_reason = reason
        if world_rank is not None:
            # The revoking rank has by definition observed the
            # revocation, and is now in recovery: peers blocked on a
            # message from it may stop waiting.
            self._recovering.add(world_rank)
            self.note_revocation_seen(world_rank)
        self.wake_all_mailboxes()
        for hook in self._revoke_hooks:
            hook(self.revoked_below, reason)

    def check_revoked(self, comm_id: int) -> None:
        """Raise CommRevokedError when ``comm_id`` belongs to a revoked epoch."""
        if comm_id < self.revoked_below:
            from ..errors import CommRevokedError

            raise CommRevokedError(
                f"communicator {comm_id} was revoked: "
                f"{self.revoke_reason or 'rank failure'}"
            )

    def revocation_seen(self, world_rank: int) -> int:
        """Threshold ``world_rank`` has observed (gates entry checks)."""
        return self._revoked_seen[world_rank]

    def note_revocation_seen(self, world_rank: int) -> None:
        """Record that ``world_rank`` observed the current revocation."""
        if self.revoked_below > self._revoked_seen[world_rank]:
            self._revoked_seen[world_rank] = self.revoked_below

    def is_recovering(self, world_rank: int) -> bool:
        """True between a rank's revoke() and the next rendezvous freeze."""
        return world_rank in self._recovering

    # -- fault-tolerance plumbing --------------------------------------
    @property
    def fault_poll_interval(self) -> float | None:
        """Seconds between dead-partner polls while blocked (or None).

        Populated when faults or resilience are active so blocked
        receives notice revocation and rank death promptly even without
        the sanitizer's watchdog.
        """
        if self.resilience is not None:
            return self.resilience.poll_interval
        if self.faults is not None:
            return 0.05
        return None

    # -- node-local checkpoint store -----------------------------------
    def store_put(self, holder: int, key, value) -> None:
        """Stash ``value`` in ``holder``'s node-local slot."""
        with self._node_store_lock:
            self._node_store[holder][key] = value

    def store_items(self, holder: int) -> list[tuple]:
        """Snapshot of ``holder``'s (key, value) pairs."""
        with self._node_store_lock:
            return list(self._node_store.get(holder, {}).items())

    def store_delete(self, holder: int, key) -> None:
        """Drop one entry from ``holder``'s slot (no-op when absent)."""
        with self._node_store_lock:
            self._node_store.get(holder, {}).pop(key, None)
