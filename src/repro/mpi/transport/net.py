"""Network robustness primitives shared by every transport connection.

Three concerns live here, deliberately free of any transport state so
the socket backend, the resilience layer, and the request poller all
reuse the same arithmetic:

* :class:`RetryPolicy` — bounded exponential backoff with optional
  jitter.  One policy object serves three very different consumers:
  TCP connect/reconnect loops (wall-clock sleeps with jitter to avoid
  reconnect stampedes), the :class:`~repro.faults.Resilience` sender
  retry (logical-clock charges, jitter-free so replays stay
  deterministic), and :meth:`repro.mpi.request.Request.test`'s poll
  backoff (1 µs doubling to a 1 ms cap).

* :class:`FramedSocket` — length-prefixed envelope framing over a TCP
  stream using the shared :mod:`~repro.mpi.transport.codec`: each frame
  is a pickled array-free header plus the raw bytes of its lifted
  ndarrays.  Receives take a *poll timeout* that only fires between
  frames — once the first byte of a frame has arrived the reader
  switches to a generous intra-frame deadline, so a slow sender never
  desynchronizes the stream and a dead one surfaces as
  :class:`LinkClosed` instead of a hang.  Alongside the pickled
  framing, :meth:`~FramedSocket.send_json`/:meth:`~FramedSocket.
  recv_json` carry bounded, pickle-free JSON control frames — the
  rendezvous hello runs on those exclusively, so nothing from an
  unauthenticated connection is ever unpickled.

* :func:`configure_keepalive` — OS-level TCP keepalive, the last-ditch
  detector under the application-level heartbeats the socket transport
  runs (see ``docs/mpi-runtime.md``, Sockets backend).
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
import time
from dataclasses import dataclass

from ...errors import CommunicatorError
from .codec import descr_nbytes, materialize_array

__all__ = [
    "RetryPolicy",
    "FramedSocket",
    "LinkClosed",
    "LinkTimeout",
    "configure_keepalive",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_LIVENESS_TIMEOUT",
    "DEFAULT_CONNECT_POLICY",
]

#: Application-level heartbeat cadence on the socket transport when the
#: caller attached no flight recorder (which otherwise sets the pace).
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: Seconds of total link silence (no frames, no heartbeats) after which
#: the master declares a worker's link broken and fails the rank.
DEFAULT_LIVENESS_TIMEOUT = 10.0

# Intra-frame deadline: once a frame has started arriving, how long the
# reader will wait for the rest before declaring the link torn.
_FRAME_DEADLINE = 30.0

# Upper bound on a JSON control frame (the pre-auth hello exchange).
# An unauthenticated peer must not be able to make the master buffer
# an arbitrarily large frame, so the length prefix is checked against
# this before a single payload byte is read.
_JSON_FRAME_MAX = 65536

_LEN = struct.Struct("<I")


class LinkClosed(CommunicatorError):
    """The peer's end of a framed link is gone (EOF, reset, torn frame)."""


class LinkTimeout(CommunicatorError):
    """No frame started arriving within the poll timeout (link still up)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with optional jitter.

    ``max_retries``
        Attempts beyond the first before :meth:`run` re-raises (a
        ``Request`` poller ignores this — polling has no budget).
    ``backoff_base``
        Delay before the first retry, in seconds.
    ``backoff_cap``
        Upper bound on any single delay; ``None`` leaves the doubling
        unbounded (the resilience layer's logical clock wants the raw
        exponential the tests assert on).
    ``jitter``
        Fraction of each delay randomized symmetrically around it
        (``0.25`` → ±25 %).  Callers that need determinism pass a
        seeded ``rng`` to :meth:`delay`/:meth:`run` or keep jitter 0.
    """

    max_retries: int = 8
    backoff_base: float = 1e-6
    backoff_cap: float | None = 1e-3
    jitter: float = 0.0

    def delay(self, attempt: int, rng=None) -> float:
        """Backoff before 0-based retry ``attempt`` (exponential, capped).

        The exponent is clamped before exponentiating: a ``Request``
        poller calls this with an unbounded attempt counter, and
        ``2.0 ** 1024`` would overflow long before the cap applied.
        """
        d = self.backoff_base * (2.0 ** min(attempt, 64))
        if self.backoff_cap is not None:
            d = min(d, self.backoff_cap)
        if self.jitter and rng is not None:
            d *= 1.0 + self.jitter * (2.0 * float(rng.random()) - 1.0)
        return d

    def run(self, fn, *, retry_on, on_retry=None, rng=None,
            sleep=time.sleep):
        """Call ``fn()`` with bounded retry on ``retry_on`` exceptions.

        ``on_retry(attempt, exc)`` fires before each backoff sleep —
        the hook retry counters and flight-recorder events hang off.
        The final failure re-raises the last exception unchanged.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except retry_on as exc:
                if attempt >= self.max_retries:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.delay(attempt, rng=rng))
                attempt += 1


#: Connect/reconnect default: ~6 s of total patience (50 ms doubling to
#: 1 s, ±25 % jitter against reconnect stampedes), enough to ride out a
#: master that is still binding its listener or a briefly dropped link.
DEFAULT_CONNECT_POLICY = RetryPolicy(
    max_retries=8, backoff_base=0.05, backoff_cap=1.0, jitter=0.25
)


def configure_keepalive(sock: socket.socket, *, idle: int = 1,
                        interval: int = 2, count: int = 5) -> None:
    """Enable OS-level TCP keepalive probes on ``sock`` (best effort).

    The platform-specific knobs are guarded — on hosts that lack them
    the bare ``SO_KEEPALIVE`` still stands, and the application-level
    heartbeat remains the primary liveness signal either way.
    """
    try:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)
        for opt, value in (
            (getattr(socket, "TCP_KEEPIDLE", None), idle),
            (getattr(socket, "TCP_KEEPINTVL", None), interval),
            (getattr(socket, "TCP_KEEPCNT", None), count),
        ):
            if opt is not None:
                sock.setsockopt(socket.IPPROTO_TCP, opt, value)
    except OSError:  # pragma: no cover - exotic stacks
        pass


class FramedSocket:
    """Length-prefixed message framing over one TCP connection.

    A frame is ``<u32 header length><pickled (header, descrs)><raw
    array bytes...>`` where ``descrs`` are the shared codec's array
    descriptors; the array bytes are streamed straight from the sender's
    buffer views and rebuilt with :func:`~repro.mpi.transport.codec.
    materialize_array` on arrival — ndarray data is never pickled.

    Reads are buffered; :meth:`recv` takes a poll timeout that applies
    only *between* frames so a liveness-checking reader can wake
    periodically without ever desynchronizing mid-frame.
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.setblocking(True)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # pragma: no cover - non-TCP test doubles
            pass
        configure_keepalive(sock)
        self._sock = sock
        self._rbuf = bytearray()

    def fileno(self) -> int:
        return self._sock.fileno()

    @property
    def peer(self):
        try:
            return self._sock.getpeername()
        except OSError:
            return None

    def close(self, *, reset: bool = False) -> None:
        """Close the link; ``reset=True`` aborts with an RST (SO_LINGER 0)."""
        try:
            if reset:
                self._sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER,
                    struct.pack("ii", 1, 0),
                )
            self._sock.close()
        except OSError:
            pass

    # -- send -----------------------------------------------------------
    def send(self, header, descrs: list = (), views: list = ()) -> None:
        """Write one frame; raises :class:`LinkClosed` on a dead peer."""
        blob = pickle.dumps((header, list(descrs)), protocol=4)
        try:
            self._sock.settimeout(None)
            self._sock.sendall(_LEN.pack(len(blob)))
            self._sock.sendall(blob)
            for view in views:
                self._sock.sendall(view)
        except (OSError, ValueError) as exc:
            raise LinkClosed(f"socket send failed: {exc}") from None

    def send_json(self, obj: dict) -> None:
        """Write one pickle-free control frame (same length prefix).

        The hello handshake runs on these exclusively: JSON carries
        only primitive fields, so neither side deserializes anything
        executable before the rendezvous token has been verified.
        """
        blob = json.dumps(obj, separators=(",", ":")).encode("utf-8")
        try:
            self._sock.settimeout(None)
            self._sock.sendall(_LEN.pack(len(blob)))
            self._sock.sendall(blob)
        except (OSError, ValueError) as exc:
            raise LinkClosed(f"socket send failed: {exc}") from None

    # -- recv -----------------------------------------------------------
    def _read_exact(self, n: int, deadline: float | None) -> bytearray:
        """Read exactly ``n`` bytes (buffered), honoring ``deadline``.

        Returns a *mutable* buffer: received arrays are materialized
        over it directly, and a payload that was writeable on the
        sender side must stay writeable on arrival.
        """
        while len(self._rbuf) < n:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise LinkClosed(
                        "socket frame torn: peer stopped mid-frame"
                    )
                self._sock.settimeout(min(remaining, _FRAME_DEADLINE))
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                continue
            except OSError as exc:
                raise LinkClosed(f"socket recv failed: {exc}") from None
            if not chunk:
                raise LinkClosed("socket closed by peer")
            self._rbuf += chunk
        out = self._rbuf[:n]
        del self._rbuf[:n]
        return out

    def recv(self, timeout: float | None = None):
        """Read one frame; returns ``(header, arrays)``.

        ``timeout`` bounds only the wait for the frame to *start*
        (raising :class:`LinkTimeout`); once the length prefix is in,
        the intra-frame deadline takes over and a stalled sender
        surfaces as :class:`LinkClosed`.
        """
        if not self._rbuf:
            if timeout is not None:
                self._sock.settimeout(timeout)
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise LinkTimeout("no frame within poll timeout") from None
            except OSError as exc:
                raise LinkClosed(f"socket recv failed: {exc}") from None
            if not chunk:
                raise LinkClosed("socket closed by peer")
            self._rbuf += chunk
        deadline = time.monotonic() + _FRAME_DEADLINE
        (length,) = _LEN.unpack(self._read_exact(4, deadline))
        header, descrs = pickle.loads(self._read_exact(length, deadline))
        arrays = [
            materialize_array(d, self._read_exact(descr_nbytes(d), deadline))
            for d in descrs
        ]
        return header, arrays

    def recv_json(self, timeout: float | None = None) -> dict:
        """Read one pickle-free control frame; returns the decoded dict.

        Safe to call on an **unauthenticated** connection: the frame
        length is bounded by ``_JSON_FRAME_MAX`` before any payload is
        buffered, the payload is parsed with :func:`json.loads` (never
        pickle), and anything malformed — oversized prefix, invalid
        UTF-8/JSON, a non-object top level — raises
        :class:`LinkClosed` so the caller drops the connection.
        ``timeout`` bounds the wait for the frame to start
        (:class:`LinkTimeout`), like :meth:`recv`.
        """
        if not self._rbuf:
            self._sock.settimeout(timeout)
            try:
                chunk = self._sock.recv(65536)
            except socket.timeout:
                raise LinkTimeout("no frame within poll timeout") from None
            except OSError as exc:
                raise LinkClosed(f"socket recv failed: {exc}") from None
            if not chunk:
                raise LinkClosed("socket closed by peer")
            self._rbuf += chunk
        deadline = time.monotonic() + _FRAME_DEADLINE
        (length,) = _LEN.unpack(self._read_exact(4, deadline))
        if length > _JSON_FRAME_MAX:
            raise LinkClosed(
                f"oversized control frame ({length} bytes) rejected"
            )
        blob = self._read_exact(length, deadline)
        try:
            obj = json.loads(bytes(blob).decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise LinkClosed(f"malformed control frame: {exc}") from None
        if not isinstance(obj, dict):
            raise LinkClosed("malformed control frame: not an object")
        return obj

    def poll(self, timeout: float = 0.0) -> bool:
        """True when at least one buffered/readable byte is pending."""
        if self._rbuf:
            return True
        import select

        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):
            return False
        return bool(ready)
