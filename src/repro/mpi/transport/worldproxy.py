"""Wire-agnostic worker/master halves of a master-resident world.

The procs and sockets backends share one execution model: rank workers
in their own processes, the *world* (mailboxes, rendezvous, rank
status, node-local store, sanitizer) resident in the master, reached
through a per-rank duplex RPC channel plus a one-way data path for
message deliveries.  What differs is only the wire — pipes and
shared-memory rings for forked local workers, framed TCP sockets for
networked ones.

This module holds everything *above* the wire:

* the worker side — :class:`WorkerContext` (the rank-local
  ``SpmdContext`` stand-in), :class:`MailboxProxy`,
  :class:`WorkerSanitizer`, the observability shard
  machinery (:func:`delta_shards` / :func:`collect_shards` /
  :class:`Heartbeat`), and :func:`run_worker`, the worker main loop;
* the master side — :class:`WorldServerMixin`, the RPC dispatch table
  with the canonical blocked-receive protocol, the delivery-drain
  lifecycle barrier, and the telemetry/shard merge paths.

A transport supplies two duck-typed worker objects:

``channel``
    ``call(method, *args)`` — blocking RPC returning the master's
    reply (raising its error); ``drain_oob()`` — apply queued
    abort/revoke pushes without blocking; a ``state`` attribute the
    worker context is assigned to (for out-of-band dispatch).
``pump``
    ``enqueue(comm_id, dest_world, source, tag, env)`` — stage a
    delivery, returning a :class:`SendToken` completion token (set
    once staged, carrying the staging error if the wire failed);
    ``enqueue_raw(header)`` — stage a bookkeeping message
    (heartbeat, netfault) outside the drain barrier; ``sent`` — count
    of deliveries accepted; ``failure`` — the first staging error (or
    ``None``), shipped with the lifecycle RPC so the master can skip
    the drain barrier for puts that will never arrive and attribute
    the loss to the send path instead of a clean finalize.

and, master-side, per-rank ``link`` objects carrying ``rank``,
``put_cond`` (a condition), and ``puts_received`` (deliveries folded
into mailboxes so far) for the drain barrier.
"""

from __future__ import annotations

import pickle
import threading
import time
from typing import Any

from ...errors import (
    CommunicatorError,
    CommRevokedError,
    RankFailedError,
    WorldAbortedError,
)
from ..context import Envelope
from .codec import decode_envelope, decode_exception, encode_envelope, encode_exception
from .threads import WORLD_COMM_ID, run_rank_program

__all__ = [
    "DRAIN_TIMEOUT",
    "SendToken",
    "WorkerConfig",
    "MailboxProxy",
    "WorkerSanitizer",
    "WorkerContext",
    "delta_shards",
    "collect_shards",
    "Heartbeat",
    "run_worker",
    "WorldServerMixin",
]

# Seconds the master waits for a finishing worker's in-flight
# deliveries to drain before processing its lifecycle message.
DRAIN_TIMEOUT = 30.0


class SendToken(threading.Event):
    """``isend`` completion token the send pumps hand out.

    Set once the payload has been staged onto the wire — or once the
    pump knows it never will be, in which case ``error`` carries the
    staging failure and the waiter (:meth:`~repro.mpi.request.Request.
    from_token`) re-raises it instead of reporting a successful stage.
    """

    def __init__(self) -> None:
        super().__init__()
        self.error: BaseException | None = None


class WorkerConfig:
    """World parameters a worker inherits through the fork (or boot blob).

    ``comm_trace``, ``tracer``, and ``faults`` are the *caller's*
    objects — forked by reference so rank-program closures over them
    keep working; the worker ships back post-fork deltas only.  In a
    spawned (non-forked) worker they are fresh unpickles carrying the
    state at ship time, which the baseline diffs cancel out the same
    way.
    """

    __slots__ = (
        "world_size", "cost_model", "recv_timeout", "tuning", "resilience",
        "faults", "comm_trace", "tracer", "has_sanitizer",
        "watchdog_interval", "recorder", "heartbeat_interval",
        "respawn_info",
    )

    def __init__(self, context) -> None:
        self.world_size = context.world_size
        self.cost_model = context.cost_model
        self.recv_timeout = context.recv_timeout
        self.tuning = context.tuning
        self.resilience = context.resilience
        self.faults = context.faults
        self.comm_trace = context.comm_trace
        self.tracer = context.tracer
        self.has_sanitizer = context.sanitizer is not None
        self.watchdog_interval = (
            context.sanitizer.watchdog_interval
            if context.sanitizer is not None else None
        )
        self.recorder = getattr(context, "recorder", None)
        # Telemetry streaming cadence; None disables the worker
        # heartbeat thread entirely (no recorder, no telemetry hub).
        if self.recorder is not None:
            self.heartbeat_interval = self.recorder.heartbeat_interval
        elif getattr(context, "telemetry", None) is not None:
            self.heartbeat_interval = 0.5
        else:
            self.heartbeat_interval = None
        # Populated by a transport respawner for a replacement worker:
        # {"incarnation", "crash_fired", "revoked_below",
        # "revoke_reason"}.  Tells the worker which incarnation it is
        # (so the fault injector counts its operations from zero) and
        # seeds its local revocation threshold, because the replacement
        # missed the out-of-band revoke push the survivors received.
        self.respawn_info = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class MailboxProxy:
    """Worker-side view of one master mailbox (receive RPCs)."""

    __slots__ = ("_channel", "_comm_id", "_world_rank")

    def __init__(self, channel, comm_id: int, world_rank: int) -> None:
        self._channel = channel
        self._comm_id = comm_id
        self._world_rank = world_rank

    def get(self, source: int, tag: int, timeout: float,
            poll=None, interval=None) -> Envelope:
        # poll/interval are intentionally unused: the canonical blocked-
        # receive protocol (dead-partner fast-fail, revocation, deadlock
        # watchdog) runs master-side inside this RPC.
        return decode_envelope(self._channel.call(
            "box_get", self._comm_id, self._world_rank, source, tag
        ))

    def try_get(self, source: int, tag: int) -> Envelope | None:
        return decode_envelope(self._channel.call(
            "box_try_get", self._comm_id, self._world_rank, source, tag
        ))

    def has(self, source: int, tag: int) -> bool:
        return bool(self._channel.call(
            "box_has", self._comm_id, self._world_rank, source, tag
        ))


class WorkerSanitizer:
    """Worker-side sanitizer proxy.

    Collective matching is world state and forwards to the master's
    sanitizer; the blocked-receive hooks (wait graph, stall watchdog,
    failed-partner diagnosis) run master-side inside ``box_get`` and
    are no-ops here.  Move-ownership tracking is *rank-local* state:
    a worker-resident :class:`~repro.sanitize.Sanitizer` ledger
    registers every buffer this rank relinquishes or receives frozen —
    with the real call sites, since moves originate in this very
    address space (receive-side origins arrive in the envelope wire
    metadata) — so use-after-move enforcement raises with the true
    send site instead of degrading to a bare NumPy ``ValueError``.
    The ledger's findings ship home with the lifecycle shards.
    """

    def __init__(self, channel, watchdog_interval: float) -> None:
        from ...sanitize import Sanitizer

        self._channel = channel
        self.watchdog_interval = watchdog_interval
        # Rank-local move/provenance ledger; never finalized (leak
        # reporting is master-side world state).
        self._local = Sanitizer(strict=False,
                                watchdog_interval=watchdog_interval)

    def check_collective(self, comm_id, seq, world_rank, op, signature,
                         comm_size) -> None:
        self._channel.call("check_collective", comm_id, seq, world_rank, op,
                           tuple(signature), comm_size)

    # Move/provenance hooks: the rank-local ledger.
    def note_send(self, world_rank):
        return self._local.note_send(world_rank)

    def note_move(self, payload, world_rank, op, dest=None):
        return self._local.note_move(payload, world_rank, op, dest=dest)

    def note_received_move(self, payload, world_rank, origin) -> None:
        self._local.note_received_move(payload, world_rank, origin)

    def explain_readonly_write(self, exc, rank):
        return self._local.explain_readonly_write(exc, rank)

    def local_findings(self) -> list:
        """Diagnostics recorded by the rank-local ledger (for shipping)."""
        return list(self._local.findings)

    def begin_wait(self, *a, **k) -> None:  # pragma: no cover - unused
        pass

    def end_wait(self, world_rank) -> None:  # pragma: no cover - unused
        pass

    def on_stall(self, world_rank) -> None:  # pragma: no cover - unused
        pass


class WorkerContext:
    """Rank-local stand-in for :class:`SpmdContext` inside a worker.

    World-authoritative operations (receive matching, rendezvous, rank
    status, the node-local store) are RPCs to the master; per-rank
    observability writes go to local copies shipped home as deltas at
    finalize.  ``remote_recv`` tells the communicator's blocking
    receive to defer its dead-partner/watchdog protocol to the master.
    """

    remote_recv = True

    def __init__(self, cfg: WorkerConfig, channel, pump) -> None:
        self.world_size = cfg.world_size
        self.cost_model = cfg.cost_model
        self.recv_timeout = cfg.recv_timeout
        self.tuning = cfg.tuning
        self.resilience = cfg.resilience
        self.faults = cfg.faults
        self.comm_trace = cfg.comm_trace
        self.tracer = cfg.tracer
        self.recorder = cfg.recorder
        self.sanitizer = (
            WorkerSanitizer(channel, cfg.watchdog_interval)
            if cfg.has_sanitizer else None
        )
        self.abort_event = threading.Event()
        self.abort_reason: str | None = None
        self.revoked_below = 0
        self.revoke_reason: str | None = None
        # Observed threshold for entry-point checks: ``revoked_below``
        # is pushed asynchronously by master OOB messages, so gating
        # ops on it directly would interrupt this worker at a
        # timing-dependent op.  ``revoked_seen`` advances only at
        # deterministic points — a blocking wait that raised, our own
        # revoke(), or the respawn seed below.
        self.revoked_seen = 0
        info = getattr(cfg, "respawn_info", None)
        if info is not None:
            # A replacement joins a world whose current epoch is already
            # revoked; without this seed its first operation would try a
            # real exchange on the poisoned world communicator.
            self.revoked_below = info.get("revoked_below", 0)
            self.revoke_reason = info.get("revoke_reason")
            self.revoked_seen = self.revoked_below
        self._channel = channel
        self._pump = pump
        self._proxies: dict = {}

    # -- out-of-band state pushed by the master -------------------------
    def apply_oob(self, msg: tuple) -> None:
        if msg[1] == "abort":
            self.abort_reason = msg[2]
            self.abort_event.set()
        elif msg[1] == "revoke":
            if msg[2] > self.revoked_below:
                self.revoked_below = msg[2]
                self.revoke_reason = msg[3]

    def check_alive(self) -> None:
        if self.abort_event.is_set():
            raise WorldAbortedError(
                f"SPMD world aborted: {self.abort_reason or 'unknown reason'}"
            )

    def check_revoked(self, comm_id: int) -> None:
        if comm_id < self.revoked_below:
            raise CommRevokedError(
                f"communicator {comm_id} was revoked: "
                f"{self.revoke_reason or 'rank failure'}"
            )

    def revocation_seen(self, world_rank: int) -> int:
        return self.revoked_seen

    def note_revocation_seen(self, world_rank: int) -> None:
        if self.revoked_below > self.revoked_seen:
            self.revoked_seen = self.revoked_below

    @property
    def fault_poll_interval(self) -> float | None:
        if self.resilience is not None:
            return self.resilience.poll_interval
        if self.faults is not None:
            return 0.05
        return None

    # -- message paths ---------------------------------------------------
    def mailbox(self, comm_id: int, world_rank: int) -> MailboxProxy:
        key = (comm_id, world_rank)
        proxy = self._proxies.get(key)
        if proxy is None:
            proxy = MailboxProxy(self._channel, comm_id, world_rank)
            self._proxies[key] = proxy
        return proxy

    def deliver(self, comm_id: int, dest_world: int, source: int, tag: int,
                envelope: Envelope) -> None:
        self._channel.drain_oob()
        self._pump.enqueue(comm_id, dest_world, source, tag, envelope)

    def deliver_async(self, comm_id: int, dest_world: int, source: int,
                      tag: int, envelope: Envelope) -> threading.Event:
        self._channel.drain_oob()
        return self._pump.enqueue(comm_id, dest_world, source, tag, envelope)

    # -- world-authoritative operations (RPC) ----------------------------
    def split_rendezvous(self, parent_comm_id, seqno, size, rank, value,
                        members, world_rank) -> dict:
        return self._channel.call(
            "split", parent_comm_id, seqno, size, rank, tuple(value),
            list(members), world_rank,
        )

    def shrink_rendezvous(self, parent_comm_id, seqno, rank, world_rank,
                          members) -> tuple:
        new_id, ordered_old = self._channel.call(
            "shrink", parent_comm_id, seqno, rank, world_rank, list(members)
        )
        return new_id, list(ordered_old)

    def replace_rendezvous(self, world_rank: int) -> tuple:
        new_id, round_no = self._channel.call("replace", world_rank)
        return new_id, round_no

    def rank_status(self, world_rank: int) -> str:
        return self._channel.call("rank_status", world_rank)

    def running_world_ranks(self) -> set:
        return set(self._channel.call("running_world_ranks"))

    def failed_ranks(self) -> list:
        return list(self._channel.call("failed_ranks"))

    def allocate_comm_id(self) -> int:
        return self._channel.call("allocate_comm_id")

    def abort(self, reason: str) -> None:
        self.abort_reason = reason
        self.abort_event.set()
        self._channel.call("abort", reason)

    def revoke_current(self, reason: str,
                       world_rank: int | None = None) -> None:
        threshold, why = self._channel.call("revoke_current", reason,
                                            world_rank)
        if threshold > self.revoked_below:
            self.revoked_below = threshold
            self.revoke_reason = why
        # The revoking worker has observed its own revocation.
        self.revoked_seen = self.revoked_below

    def store_put(self, holder: int, key, value) -> None:
        self._channel.call("store_put", holder, key, value)

    def store_items(self, holder: int) -> list:
        return list(self._channel.call("store_items", holder))

    def store_delete(self, holder: int, key) -> None:
        self._channel.call("store_delete", holder, key)

    # Rank lifecycle is reported through the worker main's lifecycle
    # RPC, not these (the master owns the status table).
    def mark_finalized(self, world_rank: int) -> None:
        pass

    def mark_failed(self, world_rank: int) -> None:
        pass

    def wake_all_mailboxes(self) -> None:  # pragma: no cover - master-side
        pass

    def wake_rendezvous(self) -> None:  # pragma: no cover - master-side
        pass


def delta_shards(cfg: WorkerConfig, rank: int, baselines: dict) -> dict:
    """Metrics/comm/recorder deltas since ``baselines``; advances them.

    The streaming slice of the observability shards: safe to call from
    the heartbeat thread (all three sources are lock-protected or
    append-only), unlike spans — ``tracer.local_spans`` is bound to the
    rank's main thread — which stay finalize-only.
    """
    from ...obs.metrics import MetricsRegistry
    from ..tracing import CommTrace

    delta: dict = {}
    if cfg.tracer is not None:
        snap = cfg.tracer.metrics.to_dict()
        diff = MetricsRegistry.diff_snapshots(snap, baselines["metrics"])
        baselines["metrics"] = snap
        if diff:
            delta["metrics"] = diff
    if cfg.comm_trace is not None:
        state = cfg.comm_trace.state()
        diff = CommTrace.diff_states(state, baselines["comm_trace"])
        baselines["comm_trace"] = state
        if any(diff.values()):
            delta["comm_trace"] = diff
    if cfg.recorder is not None:
        events = cfg.recorder.events_since(rank, baselines["recorder_seq"])
        if events:
            baselines["recorder_seq"] = events[-1][0] + 1
            delta["recorder"] = events
    return delta


def collect_shards(cfg: WorkerConfig, ctx: WorkerContext, comm, rank: int,
                   baselines: dict) -> dict:
    """Post-fork observability deltas to ship with the lifecycle RPC."""
    shards = delta_shards(cfg, rank, baselines)
    if comm is not None and comm.clock is not None:
        shards["clock"] = comm.clock
    if cfg.tracer is not None:
        # bind() gave this thread a fresh buffer, so local_spans is
        # already post-fork only; metrics were diffed above.
        shards["spans"] = cfg.tracer.local_spans()
    if cfg.faults is not None:
        events = cfg.faults.trace[baselines["fault_events"]:]
        shards["faults"] = (
            [e.as_tuple() for e in events], cfg.faults.ops_per_rank()
        )
    if ctx.sanitizer is not None:
        findings = ctx.sanitizer.local_findings()
        if findings:
            shards["sanitizer"] = findings
    return shards


class Heartbeat:
    """Worker-side telemetry streamer: ships deltas every interval.

    A daemon thread that periodically computes the streaming shard
    delta (:func:`delta_shards`) and stages a ``("hb", rank, ts,
    delta)`` header on the send pump — the data path's single writer —
    so the master can fold mid-run state into the caller's
    CommTrace/metrics/recorder and stamp the rank's heartbeat.  Stopped
    (and joined) before the finalize shard is computed, so baselines
    are never raced and nothing is double-counted.
    """

    def __init__(self, cfg: WorkerConfig, pump, rank: int,
                 baselines: dict, interval: float) -> None:
        self._cfg = cfg
        self._pump = pump
        self._rank = rank
        self._baselines = baselines
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"spmd-heartbeat-{rank}"
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                delta = delta_shards(self._cfg, self._rank, self._baselines)
            except Exception:  # pragma: no cover - telemetry best-effort
                continue
            self._pump.enqueue_raw(("hb", self._rank, time.time(), delta))

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_worker(cfg: WorkerConfig, rank: int, fn, args, kwargs,
               channel, pump) -> None:
    """The worker main loop, from first baseline to lifecycle report.

    Wire-agnostic: the transport's ``_worker_main`` builds the channel
    and pump over whatever wire it owns (pipes+rings, sockets), does
    its fd hygiene, then hands off here.
    """
    from ..communicator import Communicator

    baselines = {
        "metrics": (cfg.tracer.metrics.to_dict()
                    if cfg.tracer is not None else None),
        "comm_trace": (cfg.comm_trace.state()
                       if cfg.comm_trace is not None else None),
        "fault_events": (len(cfg.faults.trace)
                         if cfg.faults is not None else 0),
        "recorder_seq": (cfg.recorder.cursor(rank)
                         if cfg.recorder is not None else 0),
    }
    if cfg.comm_trace is not None:
        # This thread may be a fork-clone of the caller's: clear any
        # context label it inherited.
        cfg.comm_trace.set_context(None)

    ctx = WorkerContext(cfg, channel, pump)
    channel.state = ctx
    info = getattr(cfg, "respawn_info", None)
    if info is not None and cfg.faults is not None:
        # Fresh incarnation: operations count from zero so crash-rule
        # calibration means the same thing for every incarnation, and
        # the fire count is pinned from the master (this process's
        # injector copy never saw the previous incarnation's crash).
        cfg.faults.note_respawn(
            rank, incarnation=info["incarnation"],
            fired=info.get("crash_fired"),
        )

    heartbeat = None
    if cfg.heartbeat_interval is not None:
        heartbeat = Heartbeat(cfg, pump, rank, baselines,
                              cfg.heartbeat_interval)

    comm = None
    outcome = {"kind": "rank_error", "value": None,
               "exc": CommunicatorError(f"rank {rank} worker never ran")}
    try:
        comm = Communicator(ctx, WORLD_COMM_ID, list(range(cfg.world_size)),
                            rank)

        def on_value(value) -> None:
            outcome.update(kind="finalize", value=value, exc=None)

        def on_killed(exc) -> None:
            outcome.update(kind="rank_killed", exc=exc)

        def on_error(exc) -> None:
            outcome.update(kind="rank_error", exc=exc)

        run_rank_program(ctx, comm, fn, args, kwargs, rank,
                         on_value=on_value, on_killed=on_killed,
                         on_error=on_error)
    except BaseException as exc:  # noqa: BLE001 - report setup failures
        outcome.update(kind="rank_error", exc=exc)

    if heartbeat is not None:
        # Joined before the finalize shard is computed so the baselines
        # the heartbeat advanced are quiescent and nothing double-counts.
        heartbeat.stop()
    try:
        shards = collect_shards(cfg, ctx, comm, rank, baselines)
    except Exception:  # pragma: no cover - never lose the lifecycle msg
        shards = {}
    payload = (outcome["value"] if outcome["kind"] == "finalize"
               else encode_exception(outcome["exc"]))
    # The lifecycle message carries the pump's health alongside the
    # delivery count: a send path that failed can never drain its
    # remaining puts, and the master must know that rather than wait
    # out the drain barrier and let partners see a clean finalize.
    # Flush first so the pump has resolved every staged frame and
    # ``failure`` is authoritative, not a race with the pump thread.
    flush = getattr(pump, "flush", None)
    if flush is not None:
        try:
            flush(timeout=DRAIN_TIMEOUT)
        except Exception:  # pragma: no cover - never lose the lifecycle msg
            pass
    failure = getattr(pump, "failure", None)
    sent_info = (pump.sent,
                 None if failure is None
                 else f"{type(failure).__name__}: {failure}")
    try:
        channel.call(outcome["kind"], payload, shards, sent_info)
    except (pickle.PicklingError, TypeError, ValueError,
            AttributeError) as exc:
        # The return value would not cross the process boundary (e.g.
        # it holds live runtime handles).  Report a diagnostic instead
        # of dying silently, which would surface as a spurious
        # "worker process died unexpectedly".
        err = CommunicatorError(
            f"rank {rank} return value could not cross the process "
            f"boundary ({type(exc).__name__}: {exc}); return plain "
            f"arrays/containers from the rank program, or objects that "
            f"detach cleanly on pickle"
        )
        try:
            channel.call("rank_error", encode_exception(err), shards,
                         sent_info)
        except BaseException:  # noqa: BLE001 - master gone
            pass
    except BaseException:  # noqa: BLE001 - master gone; nothing to report to
        pass


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
class WorldServerMixin:
    """Master-side world service shared by master-resident transports.

    The deriving transport owns the wire (service threads, reply path)
    and provides ``self._values`` / ``self._clocks`` / ``self._errors``
    result slots, ``self._comm_members`` + ``self._members_lock`` for
    the comm-membership mirror, and per-rank link objects with
    ``rank`` / ``put_cond`` / ``puts_received`` for the drain barrier.
    """

    # -- RPC dispatch ----------------------------------------------------
    def _dispatch(self, context, link, method: str, args: tuple):
        if method == "box_get":
            comm_id, world_rank, source, tag = args
            return encode_envelope(
                self._blocking_get(context, comm_id, world_rank, source, tag)
            )
        if method == "box_try_get":
            comm_id, world_rank, source, tag = args
            return encode_envelope(
                context.mailbox(comm_id, world_rank).try_get(source, tag)
            )
        if method == "box_has":
            comm_id, world_rank, source, tag = args
            return context.mailbox(comm_id, world_rank).has(source, tag)
        if method == "split":
            parent_comm_id, seqno, size, rank, value, members, world_rank = args
            result = context.split_rendezvous(
                parent_comm_id, seqno, size, rank, tuple(value),
                list(members), world_rank,
            )
            with self._members_lock:
                for new_id, world_members, _old in result.values():
                    self._comm_members[new_id] = list(world_members)
            return result
        if method == "shrink":
            parent_comm_id, seqno, rank, world_rank, members = args
            new_id, ordered_old = context.shrink_rendezvous(
                parent_comm_id, seqno, rank, world_rank, list(members)
            )
            with self._members_lock:
                self._comm_members[new_id] = [members[i] for i in ordered_old]
            return (new_id, ordered_old)
        if method == "replace":
            new_id, round_no = context.replace_rendezvous(args[0])
            with self._members_lock:
                self._comm_members[new_id] = list(range(context.world_size))
            return (new_id, round_no)
        if method == "check_collective":
            comm_id, seq, world_rank, op, signature, comm_size = args
            context.sanitizer.check_collective(
                comm_id, seq, world_rank, op, tuple(signature), comm_size
            )
            return None
        if method == "rank_status":
            return context.rank_status(args[0])
        if method == "running_world_ranks":
            return sorted(context.running_world_ranks())
        if method == "failed_ranks":
            return context.failed_ranks()
        if method == "allocate_comm_id":
            return context.allocate_comm_id()
        if method == "abort":
            context.abort(args[0])
            return None
        if method == "revoke_current":
            context.revoke_current(args[0],
                                   args[1] if len(args) > 1 else None)
            return (context.revoked_below, context.revoke_reason)
        if method == "store_put":
            holder, key, value = args
            context.store_put(holder, key, value)
            return None
        if method == "store_items":
            return context.store_items(args[0])
        if method == "store_delete":
            context.store_delete(args[0], args[1])
            return None
        if method in ("finalize", "rank_killed", "rank_error"):
            payload, shards, sent_info = args
            if isinstance(sent_info, tuple):
                puts_sent, send_failure = sent_info
            else:  # a pump that ships a bare count has a healthy path
                puts_sent, send_failure = sent_info, None
            return self._finish_rank(context, link, method, payload, shards,
                                     puts_sent, send_failure)
        raise CommunicatorError(f"unknown transport RPC {method!r}")

    def _blocking_get(self, context, comm_id: int, me: int, source: int,
                      tag: int) -> Envelope:
        """The canonical blocked receive, run master-side for a worker.

        Mirrors ``Communicator._recv_blocking`` on the threads backend:
        dead-partner fast-fail with sanitizer diagnosis, revocation
        checks, and wait-for-graph bookkeeping, all against the
        master's authoritative world state.
        """
        box = context.mailbox(comm_id, me)
        san = context.sanitizer
        with self._members_lock:
            members = self._comm_members.get(comm_id)
        src_world = members[source] if members is not None else source

        def poll() -> None:
            status = context.rank_status(src_world)
            # Mirror of the threads-backend poll: on a revoked epoch,
            # raise only once the awaited message can never arrive
            # (partner dead, finalized, or recovering), so the worker's
            # interrupt point is program-determined and fault traces
            # replay identically.
            if (comm_id < context.revoked_below
                    and not box.has(source, tag)
                    and (status != "running"
                         or context.is_recovering(src_world))):
                context.note_revocation_seen(me)
                context.check_revoked(comm_id)
            if status != "running" and not box.has(source, tag):
                if san is not None:
                    diag = san.describe_failed_partner(
                        me, src_world, source, tag, status, box,
                        expected=(context.faults is not None
                                  and status == "failed"),
                    )
                    raise RankFailedError(diag.message, diagnostic=diag)
                where = (
                    f"recv(source={source}, tag={tag})" if tag >= 0
                    else f"a collective exchange with rank {source}"
                )
                raise RankFailedError(
                    f"rank {me} blocked in {where} "
                    f"but rank {src_world} already {status}"
                )
            if san is not None:
                san.on_stall(me)

        interval = (
            san.watchdog_interval if san is not None
            else context.fault_poll_interval
        )
        if san is not None:
            san.begin_wait(me, src_world, source, tag, comm_id, box)
        try:
            poll()  # the partner may already be gone
            return box.get(
                source, tag, context.recv_timeout, poll=poll,
                interval=interval,
            )
        finally:
            if san is not None:
                san.end_wait(me)

    def _finish_rank(self, context, link, method: str, payload,
                     shards: dict, puts_sent: int,
                     send_failure: str | None = None) -> bool:
        # Delivery-drain barrier: the rank is not done until every
        # payload it handed to the wire sits in a mailbox — otherwise a
        # partner could observe "failed with an empty queue" and raise
        # RankFailedError for a message that was actually sent.  A rank
        # whose send pump already failed can never drain its missing
        # puts: skip the doomed wait and attribute the loss below.
        with link.put_cond:
            if send_failure is None:
                deadline = time.monotonic() + DRAIN_TIMEOUT
                while (link.puts_received < puts_sent
                       and time.monotonic() < deadline):
                    link.put_cond.wait(timeout=0.1)
            lost = puts_sent - link.puts_received
        self._merge_shards(context, link.rank, shards)
        rank = link.rank
        if method == "finalize":
            if send_failure is not None and lost > 0:
                # The program completed but some accepted deliveries
                # never reached a mailbox; a clean finalize would make
                # the blocked receivers' diagnosis ("rank already
                # finalized with an empty queue") a lie.  Fail the rank
                # with the send path as the named cause instead.
                err = RankFailedError(
                    f"rank {rank} finished its program but its send "
                    f"path failed before {lost} staged "
                    f"{'delivery' if lost == 1 else 'deliveries'} "
                    f"reached the master ({send_failure})"
                )
                self._errors[rank] = err
                context.mark_failed(rank)
                return True
            self._values[rank] = payload
            context.mark_finalized(rank)
        elif method == "rank_killed":
            self._errors[rank] = decode_exception(payload)
            context.mark_failed(rank)
        else:
            exc = decode_exception(payload)
            self._errors[rank] = exc
            context.mark_failed(rank)
            context.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")
        return True

    def _ingest_heartbeat(self, context, rank: int, ts: float,
                          delta: dict) -> None:
        """Fold one heartbeat into the caller's telemetry objects."""
        try:
            self._merge_telemetry(context, rank, delta)
            hub = getattr(context, "telemetry", None)
            if hub is not None:
                hub.beat(rank, ts)
        except Exception:  # pragma: no cover - telemetry must not kill
            pass  # the data thread; deliveries matter more

    def _merge_telemetry(self, context, rank: int, shards: dict) -> None:
        """Merge the streaming shard slice (metrics/comm/recorder)."""
        tracer = context.tracer
        if tracer is not None and shards.get("metrics"):
            tracer.metrics.merge_snapshot(shards["metrics"])
        trace = context.comm_trace
        if trace is not None and shards.get("comm_trace"):
            trace.merge_state(shards["comm_trace"])
        recorder = getattr(context, "recorder", None)
        if recorder is not None and shards.get("recorder"):
            recorder.absorb_events(rank, shards["recorder"])

    def _merge_shards(self, context, rank: int, shards: dict) -> None:
        clock = shards.get("clock")
        if clock is not None:
            self._clocks[rank] = clock
        tracer = context.tracer
        if tracer is not None:
            spans = shards.get("spans")
            if spans:
                tracer.absorb_spans(spans)
        self._merge_telemetry(context, rank, shards)
        injector = context.faults
        if injector is not None and shards.get("faults"):
            events, ops = shards["faults"]
            injector.absorb(events, ops)
        sanitizer = context.sanitizer
        if sanitizer is not None and shards.get("sanitizer"):
            sanitizer.absorb_findings(shards["sanitizer"])
