"""Process transport: forked rank workers around a master-resident world.

True multi-core execution for the simulated runtime.  Each rank is a
forked worker process running the user's program against a
:class:`_WorkerContext` — a rank-local stand-in that duck-types the
:class:`~repro.mpi.context.SpmdContext` surface the communicator,
drivers, and checkpoint store use.  The *world* itself — mailboxes,
split/shrink rendezvous, rank status, the node-local store, and the
sanitizer — stays in the master process, which is the single source of
truth exactly like an MPI runtime daemon.

Wire layout per worker (all created *before* the fork so both sides
share the mappings):

* a duplex **control pipe** carrying RPC requests/replies and
  out-of-band abort/revoke pushes (small pickled tuples);
* a one-way **data pipe** carrying message-delivery headers;
* three :class:`~repro.mpi.transport.shm.ShmRing` shared-memory rings
  carrying raw ndarray bytes, pickle-free: ``data`` (worker→master,
  message payloads), ``ctl`` (worker→master, RPC-argument arrays), and
  ``reply`` (master→worker, RPC-result arrays).

The master runs two service threads per worker: a *data* thread
draining fire-and-forget deliveries into the destination mailbox (its
EOF is how a hard-died worker is detected and surfaced to partners as
:class:`~repro.errors.RankFailedError`), and a *control* thread
serving blocking RPCs — including the canonical blocked-receive
protocol with failed-partner fast-fail, revocation checks, and the
sanitizer's wait-for-graph bookkeeping, all of which therefore behave
identically to the threads backend.

Delivery counters (``puts sent`` vs ``puts received``) gate the rank
lifecycle: a worker's finalize/crash report is processed only after
every payload it handed to the ring has reached its mailbox, so a
partner never observes "dead with an empty queue" for a message that
was actually sent.

Observability is sharded: each worker records spans, metrics, comm
tallies, and fault events into its forked copies and ships the
post-fork *delta* home with its lifecycle message; the master folds
the shards into the caller's objects, so ``tracer.spans``,
``comm_trace`` tallies, and the fault trace look the same as a
threaded run.  When a flight recorder or telemetry hub is attached,
workers additionally run a *heartbeat* thread streaming the
metrics/comm/recorder delta to the master every
``recorder.heartbeat_interval`` seconds as ``("hb", ...)`` messages on
the data path (the pump keeps the pipe single-writer), so mid-run
snapshots and crash postmortems see near-live state instead of only
the finalize merge.

Zero-copy move enforcement works across the process boundary: each
worker keeps a rank-local move ledger (a worker-resident
:class:`~repro.sanitize.Sanitizer` serving only the move prongs) that
registers every relinquished/received frozen buffer with its real call
site, and the sending site travels in the envelope's wire metadata —
so a worker-side write into a moved buffer raises
:class:`~repro.errors.UseAfterMoveError` naming the originating
``send(..., copy=False)``, on either end of the move, exactly like the
threads backend.  Worker-side findings ship home with the lifecycle
shards and fold into the master sanitizer's report.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue
import threading
import time
from typing import Any

from ...errors import (
    CommunicatorError,
    CommRevokedError,
    RankFailedError,
    WorldAbortedError,
)
from ..context import Envelope
from .base import Transport
from .shm import (
    DEFAULT_RING_BYTES,
    ShmRing,
    join_arrays,
    prepare_arrays,
    recv_arrays,
    send_arrays,
    split_arrays,
)
from .threads import WORLD_COMM_ID, run_rank_program

__all__ = ["ProcessTransport"]

# Seconds the master waits for a finishing worker's in-flight ring
# deliveries to drain before processing its lifecycle message.
_DRAIN_TIMEOUT = 30.0


# ----------------------------------------------------------------------
# Wire codecs
# ----------------------------------------------------------------------
def _encode_exception(exc: BaseException) -> tuple:
    """``(pickle-or-None, type name, message)`` — survives unpicklables."""
    try:
        blob = pickle.dumps(exc)
    except Exception:
        blob = None
    return (blob, type(exc).__name__, str(exc))


def _decode_exception(enc: tuple) -> BaseException:
    blob, type_name, message = enc
    if blob is not None:
        try:
            return pickle.loads(blob)
        except Exception:
            pass
    # Fallback: rebuild by class name from the library's error taxonomy
    # so except-clauses still match even when the payload (a diagnostic
    # with live object references) could not cross the boundary.
    from ... import errors as errors_mod

    cls = getattr(errors_mod, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        cls = CommunicatorError
    return cls(message)


def _encode_origin(origin) -> tuple | None:
    """Flatten a MoveOrigin to plain strings/ints for the wire.

    The provenance of a moved (or copied) send — sender rank, operation,
    and the originating call site — so receive-side move registration
    and finalize-time leak reports name the *real* send site even when
    the sender's address space is a different process.
    """
    if origin is None:
        return None
    site = origin.site
    return (
        origin.rank, origin.op,
        None if site is None else (site.file, site.line, site.function),
    )


def _decode_origin(wire: tuple | None):
    if wire is None:
        return None
    from ...sanitize.diagnostics import CallSite
    from ...sanitize.sanitizer import MoveOrigin

    rank, op, site = wire
    return MoveOrigin(
        rank=rank, op=op, site=None if site is None else CallSite(*site)
    )


def _encode_envelope(env: Envelope | None) -> tuple | None:
    """Envelope as wire tuple; origin travels as a flattened call site."""
    if env is None:
        return None
    return (env.payload, env.send_time, env.moved, env.nbytes, env.seq,
            env.checksum, _encode_origin(env.origin))


def _decode_envelope(wire: tuple | None) -> Envelope | None:
    if wire is None:
        return None
    payload, send_time, moved, nbytes, seq, checksum, origin = wire
    return Envelope(payload=payload, send_time=send_time, moved=moved,
                    nbytes=nbytes, origin=_decode_origin(origin), seq=seq,
                    checksum=checksum)


# ----------------------------------------------------------------------
# Per-worker plumbing bundle
# ----------------------------------------------------------------------
class _Link:
    """Everything one worker shares with the master; built pre-fork."""

    def __init__(self, rank: int, ring_bytes: int, mp_ctx) -> None:
        self.rank = rank
        self.ctl_master, self.ctl_worker = mp_ctx.Pipe(duplex=True)
        # One-way delivery headers: (recv end, send end).
        self.data_master, self.data_worker = mp_ctx.Pipe(duplex=False)
        self.data_ring = ShmRing(ring_bytes)   # worker -> master payloads
        self.ctl_ring = ShmRing(ring_bytes)    # worker -> master RPC args
        self.reply_ring = ShmRing(ring_bytes)  # master -> worker replies
        # Master-side: serializes RPC replies with out-of-band pushes on
        # the control pipe, and tracks delivery drain for the lifecycle
        # barrier.
        self.send_lock = threading.Lock()
        self.put_cond = threading.Condition()
        self.puts_received = 0

    @staticmethod
    def _close(conns) -> None:
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def close_worker_ends(self) -> None:
        self._close((self.ctl_worker, self.data_worker))

    def close_master_ends(self) -> None:
        self._close((self.ctl_master, self.data_master))

    def close_all_conns(self) -> None:
        self.close_worker_ends()
        self.close_master_ends()


class _WorkerConfig:
    """World parameters a worker inherits through the fork.

    ``comm_trace``, ``tracer``, and ``faults`` are the *caller's*
    objects — forked by reference so rank-program closures over them
    keep working; the worker ships back post-fork deltas only.
    """

    __slots__ = (
        "world_size", "cost_model", "recv_timeout", "tuning", "resilience",
        "faults", "comm_trace", "tracer", "has_sanitizer",
        "watchdog_interval", "recorder", "heartbeat_interval",
    )

    def __init__(self, context) -> None:
        self.world_size = context.world_size
        self.cost_model = context.cost_model
        self.recv_timeout = context.recv_timeout
        self.tuning = context.tuning
        self.resilience = context.resilience
        self.faults = context.faults
        self.comm_trace = context.comm_trace
        self.tracer = context.tracer
        self.has_sanitizer = context.sanitizer is not None
        self.watchdog_interval = (
            context.sanitizer.watchdog_interval
            if context.sanitizer is not None else None
        )
        self.recorder = getattr(context, "recorder", None)
        # Telemetry streaming cadence; None disables the worker
        # heartbeat thread entirely (no recorder, no telemetry hub).
        if self.recorder is not None:
            self.heartbeat_interval = self.recorder.heartbeat_interval
        elif getattr(context, "telemetry", None) is not None:
            self.heartbeat_interval = 0.5
        else:
            self.heartbeat_interval = None


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _Channel:
    """Worker-side RPC client over the control pipe and its two rings.

    Single caller (the rank's main thread), so requests never
    interleave; out-of-band abort/revoke pushes arriving while a reply
    is awaited are applied and skipped.
    """

    def __init__(self, conn, ctl_ring: ShmRing, reply_ring: ShmRing) -> None:
        self._conn = conn
        self._ctl_ring = ctl_ring
        self._reply_ring = reply_ring
        self.state = None  # the _WorkerContext, set after construction

    def call(self, method: str, *args) -> Any:
        skeleton, arrays = split_arrays(args)
        views, descrs = prepare_arrays(arrays)
        try:
            self._conn.send(("rpc", method, skeleton, descrs))
            send_arrays(self._ctl_ring, views)
        except (OSError, ValueError) as exc:
            raise WorldAbortedError(
                f"SPMD master is gone ({method} RPC failed: {exc})"
            ) from None
        while True:
            try:
                msg = self._conn.recv()
            except (EOFError, OSError):
                raise WorldAbortedError(
                    f"SPMD master is gone (no reply to {method})"
                ) from None
            if msg[0] == "oob":
                self.state.apply_oob(msg)
                continue
            break
        if msg[0] == "err":
            raise _decode_exception(msg[1])
        _, skeleton, descrs = msg
        arrays = recv_arrays(self._reply_ring, descrs)
        return join_arrays(skeleton, arrays)

    def drain_oob(self) -> None:
        """Apply any queued abort/revoke pushes without blocking."""
        try:
            while self._conn.poll(0):
                msg = self._conn.recv()
                if msg[0] == "oob":
                    self.state.apply_oob(msg)
        except (EOFError, OSError):  # pragma: no cover - master gone
            pass


class _SendPump:
    """Owns the worker's data path: a daemon thread draining a queue.

    ``deliver`` must not block the rank on ring backpressure (buffered-
    send semantics: the payload is already snapshotted or frozen by
    ``_deliver``), so sends are staged here and written FIFO.  The
    returned event is the ``isend`` completion token — set once the
    payload has fully entered the shared-memory ring.
    """

    def __init__(self, conn, ring: ShmRing) -> None:
        self._conn = conn
        self._ring = ring
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self.sent = 0  # messages accepted; shipped with the lifecycle RPC
        self.failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="spmd-send-pump"
        )
        self._thread.start()

    def enqueue(self, comm_id: int, dest_world: int, source: int, tag: int,
                env: Envelope) -> threading.Event:
        if self.failure is not None:
            raise CommunicatorError(
                f"shared-memory send path failed: {self.failure}"
            )
        skeleton, arrays = split_arrays(env.payload)
        views, descrs = prepare_arrays(arrays)
        meta = (env.send_time, env.moved, env.nbytes, env.seq, env.checksum,
                _encode_origin(env.origin))
        header = ("put", comm_id, dest_world, source, tag, meta, skeleton,
                  descrs)
        token = threading.Event()
        self._queue.put((header, views, token))
        self.sent += 1
        return token

    def enqueue_raw(self, header: tuple) -> None:
        """Stage a non-delivery message (telemetry heartbeat) on the pump.

        The data pipe is single-writer by construction — every write
        goes through the pump thread — so heartbeats ride the same FIFO
        as payload deliveries.  Raw messages carry no payload arrays
        and do not count toward ``sent`` (the delivery-drain barrier
        counts only ``"put"`` messages on both ends).
        """
        if self.failure is not None:
            return  # telemetry is best-effort; the rank path reports it
        self._queue.put((header, (), None))

    def _run(self) -> None:
        while True:
            header, views, token = self._queue.get()
            if self.failure is None:
                try:
                    self._conn.send(header)
                    if views:
                        send_arrays(self._ring, views)
                except BaseException as exc:  # noqa: BLE001 - report once
                    self.failure = exc
            if token is not None:
                token.set()


class _MailboxProxy:
    """Worker-side view of one master mailbox (receive RPCs)."""

    __slots__ = ("_channel", "_comm_id", "_world_rank")

    def __init__(self, channel: _Channel, comm_id: int,
                 world_rank: int) -> None:
        self._channel = channel
        self._comm_id = comm_id
        self._world_rank = world_rank

    def get(self, source: int, tag: int, timeout: float,
            poll=None, interval=None) -> Envelope:
        # poll/interval are intentionally unused: the canonical blocked-
        # receive protocol (dead-partner fast-fail, revocation, deadlock
        # watchdog) runs master-side inside this RPC.
        return _decode_envelope(self._channel.call(
            "box_get", self._comm_id, self._world_rank, source, tag
        ))

    def try_get(self, source: int, tag: int) -> Envelope | None:
        return _decode_envelope(self._channel.call(
            "box_try_get", self._comm_id, self._world_rank, source, tag
        ))

    def has(self, source: int, tag: int) -> bool:
        return bool(self._channel.call(
            "box_has", self._comm_id, self._world_rank, source, tag
        ))


class _WorkerSanitizer:
    """Worker-side sanitizer proxy.

    Collective matching is world state and forwards to the master's
    sanitizer; the blocked-receive hooks (wait graph, stall watchdog,
    failed-partner diagnosis) run master-side inside ``box_get`` and
    are no-ops here.  Move-ownership tracking is *rank-local* state:
    a worker-resident :class:`~repro.sanitize.Sanitizer` ledger
    registers every buffer this rank relinquishes or receives frozen —
    with the real call sites, since moves originate in this very
    address space (receive-side origins arrive in the envelope wire
    metadata) — so use-after-move enforcement raises with the true
    send site instead of degrading to a bare NumPy ``ValueError``.
    The ledger's findings ship home with the lifecycle shards.
    """

    def __init__(self, channel: _Channel, watchdog_interval: float) -> None:
        from ...sanitize import Sanitizer

        self._channel = channel
        self.watchdog_interval = watchdog_interval
        # Rank-local move/provenance ledger; never finalized (leak
        # reporting is master-side world state).
        self._local = Sanitizer(strict=False,
                                watchdog_interval=watchdog_interval)

    def check_collective(self, comm_id, seq, world_rank, op, signature,
                         comm_size) -> None:
        self._channel.call("check_collective", comm_id, seq, world_rank, op,
                           tuple(signature), comm_size)

    # Move/provenance hooks: the rank-local ledger.
    def note_send(self, world_rank):
        return self._local.note_send(world_rank)

    def note_move(self, payload, world_rank, op, dest=None):
        return self._local.note_move(payload, world_rank, op, dest=dest)

    def note_received_move(self, payload, world_rank, origin) -> None:
        self._local.note_received_move(payload, world_rank, origin)

    def explain_readonly_write(self, exc, rank):
        return self._local.explain_readonly_write(exc, rank)

    def local_findings(self) -> list:
        """Diagnostics recorded by the rank-local ledger (for shipping)."""
        return list(self._local.findings)

    def begin_wait(self, *a, **k) -> None:  # pragma: no cover - unused
        pass

    def end_wait(self, world_rank) -> None:  # pragma: no cover - unused
        pass

    def on_stall(self, world_rank) -> None:  # pragma: no cover - unused
        pass


class _WorkerContext:
    """Rank-local stand-in for :class:`SpmdContext` inside a worker.

    World-authoritative operations (receive matching, rendezvous, rank
    status, the node-local store) are RPCs to the master; per-rank
    observability writes go to forked copies shipped home as deltas at
    finalize.  ``remote_recv`` tells the communicator's blocking
    receive to defer its dead-partner/watchdog protocol to the master.
    """

    remote_recv = True

    def __init__(self, cfg: _WorkerConfig, channel: _Channel,
                 pump: _SendPump) -> None:
        self.world_size = cfg.world_size
        self.cost_model = cfg.cost_model
        self.recv_timeout = cfg.recv_timeout
        self.tuning = cfg.tuning
        self.resilience = cfg.resilience
        self.faults = cfg.faults
        self.comm_trace = cfg.comm_trace
        self.tracer = cfg.tracer
        self.recorder = cfg.recorder
        self.sanitizer = (
            _WorkerSanitizer(channel, cfg.watchdog_interval)
            if cfg.has_sanitizer else None
        )
        self.abort_event = threading.Event()
        self.abort_reason: str | None = None
        self.revoked_below = 0
        self.revoke_reason: str | None = None
        self._channel = channel
        self._pump = pump
        self._proxies: dict = {}

    # -- out-of-band state pushed by the master -------------------------
    def apply_oob(self, msg: tuple) -> None:
        if msg[1] == "abort":
            self.abort_reason = msg[2]
            self.abort_event.set()
        elif msg[1] == "revoke":
            if msg[2] > self.revoked_below:
                self.revoked_below = msg[2]
                self.revoke_reason = msg[3]

    def check_alive(self) -> None:
        if self.abort_event.is_set():
            raise WorldAbortedError(
                f"SPMD world aborted: {self.abort_reason or 'unknown reason'}"
            )

    def check_revoked(self, comm_id: int) -> None:
        if comm_id < self.revoked_below:
            raise CommRevokedError(
                f"communicator {comm_id} was revoked: "
                f"{self.revoke_reason or 'rank failure'}"
            )

    @property
    def fault_poll_interval(self) -> float | None:
        if self.resilience is not None:
            return self.resilience.poll_interval
        if self.faults is not None:
            return 0.05
        return None

    # -- message paths ---------------------------------------------------
    def mailbox(self, comm_id: int, world_rank: int) -> _MailboxProxy:
        key = (comm_id, world_rank)
        proxy = self._proxies.get(key)
        if proxy is None:
            proxy = _MailboxProxy(self._channel, comm_id, world_rank)
            self._proxies[key] = proxy
        return proxy

    def deliver(self, comm_id: int, dest_world: int, source: int, tag: int,
                envelope: Envelope) -> None:
        self._channel.drain_oob()
        self._pump.enqueue(comm_id, dest_world, source, tag, envelope)

    def deliver_async(self, comm_id: int, dest_world: int, source: int,
                      tag: int, envelope: Envelope) -> threading.Event:
        self._channel.drain_oob()
        return self._pump.enqueue(comm_id, dest_world, source, tag, envelope)

    # -- world-authoritative operations (RPC) ----------------------------
    def split_rendezvous(self, parent_comm_id, seqno, size, rank, value,
                        members, world_rank) -> dict:
        return self._channel.call(
            "split", parent_comm_id, seqno, size, rank, tuple(value),
            list(members), world_rank,
        )

    def shrink_rendezvous(self, parent_comm_id, seqno, rank, world_rank,
                          members) -> tuple:
        new_id, ordered_old = self._channel.call(
            "shrink", parent_comm_id, seqno, rank, world_rank, list(members)
        )
        return new_id, list(ordered_old)

    def rank_status(self, world_rank: int) -> str:
        return self._channel.call("rank_status", world_rank)

    def running_world_ranks(self) -> set:
        return set(self._channel.call("running_world_ranks"))

    def failed_ranks(self) -> list:
        return list(self._channel.call("failed_ranks"))

    def allocate_comm_id(self) -> int:
        return self._channel.call("allocate_comm_id")

    def abort(self, reason: str) -> None:
        self.abort_reason = reason
        self.abort_event.set()
        self._channel.call("abort", reason)

    def revoke_current(self, reason: str) -> None:
        threshold, why = self._channel.call("revoke_current", reason)
        if threshold > self.revoked_below:
            self.revoked_below = threshold
            self.revoke_reason = why

    def store_put(self, holder: int, key, value) -> None:
        self._channel.call("store_put", holder, key, value)

    def store_items(self, holder: int) -> list:
        return list(self._channel.call("store_items", holder))

    def store_delete(self, holder: int, key) -> None:
        self._channel.call("store_delete", holder, key)

    # Rank lifecycle is reported through the worker main's lifecycle
    # RPC, not these (the master owns the status table).
    def mark_finalized(self, world_rank: int) -> None:
        pass

    def mark_failed(self, world_rank: int) -> None:
        pass

    def wake_all_mailboxes(self) -> None:  # pragma: no cover - master-side
        pass

    def wake_rendezvous(self) -> None:  # pragma: no cover - master-side
        pass


def _delta_shards(cfg: _WorkerConfig, rank: int, baselines: dict) -> dict:
    """Metrics/comm/recorder deltas since ``baselines``; advances them.

    The streaming slice of the observability shards: safe to call from
    the heartbeat thread (all three sources are lock-protected or
    append-only), unlike spans — ``tracer.local_spans`` is bound to the
    rank's main thread — which stay finalize-only.
    """
    from ...obs.metrics import MetricsRegistry
    from ..tracing import CommTrace

    delta: dict = {}
    if cfg.tracer is not None:
        snap = cfg.tracer.metrics.to_dict()
        diff = MetricsRegistry.diff_snapshots(snap, baselines["metrics"])
        baselines["metrics"] = snap
        if diff:
            delta["metrics"] = diff
    if cfg.comm_trace is not None:
        state = cfg.comm_trace.state()
        diff = CommTrace.diff_states(state, baselines["comm_trace"])
        baselines["comm_trace"] = state
        if any(diff.values()):
            delta["comm_trace"] = diff
    if cfg.recorder is not None:
        events = cfg.recorder.events_since(rank, baselines["recorder_seq"])
        if events:
            baselines["recorder_seq"] = events[-1][0] + 1
            delta["recorder"] = events
    return delta


def _collect_shards(cfg: _WorkerConfig, ctx: _WorkerContext, comm, rank: int,
                    baselines: dict) -> dict:
    """Post-fork observability deltas to ship with the lifecycle RPC."""
    shards = _delta_shards(cfg, rank, baselines)
    if comm is not None and comm.clock is not None:
        shards["clock"] = comm.clock
    if cfg.tracer is not None:
        # bind() gave this thread a fresh buffer, so local_spans is
        # already post-fork only; metrics were diffed above.
        shards["spans"] = cfg.tracer.local_spans()
    if cfg.faults is not None:
        events = cfg.faults.trace[baselines["fault_events"]:]
        shards["faults"] = (
            [e.as_tuple() for e in events], cfg.faults.ops_per_rank()
        )
    if ctx.sanitizer is not None:
        findings = ctx.sanitizer.local_findings()
        if findings:
            shards["sanitizer"] = findings
    return shards


class _Heartbeat:
    """Worker-side telemetry streamer: ships deltas every interval.

    A daemon thread that periodically computes the streaming shard
    delta (:func:`_delta_shards`) and stages a ``("hb", rank, ts,
    delta)`` header on the send pump — the data pipe's single writer —
    so the master can fold mid-run state into the caller's
    CommTrace/metrics/recorder and stamp the rank's heartbeat.  Stopped
    (and joined) before the finalize shard is computed, so baselines
    are never raced and nothing is double-counted.
    """

    def __init__(self, cfg: _WorkerConfig, pump: _SendPump, rank: int,
                 baselines: dict, interval: float) -> None:
        self._cfg = cfg
        self._pump = pump
        self._rank = rank
        self._baselines = baselines
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"spmd-heartbeat-{rank}"
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                delta = _delta_shards(self._cfg, self._rank, self._baselines)
            except Exception:  # pragma: no cover - telemetry best-effort
                continue
            self._pump.enqueue_raw(("hb", self._rank, time.time(), delta))

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def _worker_main(links: list, rank: int, fn, args, kwargs,
                 cfg: _WorkerConfig) -> None:
    """Entry point of a forked rank worker."""
    from ..communicator import Communicator

    own = links[rank]
    # fd hygiene: drop the inherited copies of every other worker's pipe
    # ends and the master's copies of our own — EOF detection on both
    # sides depends on each fd having exactly one owner.
    for link in links:
        if link.rank == rank:
            link.close_master_ends()
        else:
            link.close_all_conns()

    baselines = {
        "metrics": (cfg.tracer.metrics.to_dict()
                    if cfg.tracer is not None else None),
        "comm_trace": (cfg.comm_trace.state()
                       if cfg.comm_trace is not None else None),
        "fault_events": (len(cfg.faults.trace)
                         if cfg.faults is not None else 0),
        "recorder_seq": (cfg.recorder.cursor(rank)
                         if cfg.recorder is not None else 0),
    }
    if cfg.comm_trace is not None:
        # This thread is a fork-clone of the caller's: clear any context
        # label it inherited.
        cfg.comm_trace.set_context(None)

    channel = _Channel(own.ctl_worker, own.ctl_ring, own.reply_ring)
    pump = _SendPump(own.data_worker, own.data_ring)
    ctx = _WorkerContext(cfg, channel, pump)
    channel.state = ctx

    heartbeat = None
    if cfg.heartbeat_interval is not None:
        heartbeat = _Heartbeat(cfg, pump, rank, baselines,
                               cfg.heartbeat_interval)

    comm = None
    outcome = {"kind": "rank_error", "value": None,
               "exc": CommunicatorError(f"rank {rank} worker never ran")}
    try:
        comm = Communicator(ctx, WORLD_COMM_ID, list(range(cfg.world_size)),
                            rank)

        def on_value(value) -> None:
            outcome.update(kind="finalize", value=value, exc=None)

        def on_killed(exc) -> None:
            outcome.update(kind="rank_killed", exc=exc)

        def on_error(exc) -> None:
            outcome.update(kind="rank_error", exc=exc)

        run_rank_program(ctx, comm, fn, args, kwargs, rank,
                         on_value=on_value, on_killed=on_killed,
                         on_error=on_error)
    except BaseException as exc:  # noqa: BLE001 - report setup failures
        outcome.update(kind="rank_error", exc=exc)

    if heartbeat is not None:
        # Joined before the finalize shard is computed so the baselines
        # the heartbeat advanced are quiescent and nothing double-counts.
        heartbeat.stop()
    try:
        shards = _collect_shards(cfg, ctx, comm, rank, baselines)
    except Exception:  # pragma: no cover - never lose the lifecycle msg
        shards = {}
    payload = (outcome["value"] if outcome["kind"] == "finalize"
               else _encode_exception(outcome["exc"]))
    try:
        channel.call(outcome["kind"], payload, shards, pump.sent)
    except (pickle.PicklingError, TypeError, ValueError,
            AttributeError) as exc:
        # The return value would not cross the process boundary (e.g.
        # it holds live runtime handles).  Report a diagnostic instead
        # of dying silently, which would surface as a spurious
        # "worker process died unexpectedly".
        err = CommunicatorError(
            f"rank {rank} return value could not cross the process "
            f"boundary ({type(exc).__name__}: {exc}); return plain "
            f"arrays/containers from the rank program, or objects that "
            f"detach cleanly on pickle"
        )
        try:
            channel.call("rank_error", _encode_exception(err), shards,
                         pump.sent)
        except BaseException:  # noqa: BLE001 - master gone
            pass
    except BaseException:  # noqa: BLE001 - master gone; nothing to report to
        pass


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
class ProcessTransport(Transport):
    """Ranks as forked processes; the master hosts the world state."""

    name = "procs"
    shared_world = False

    def __init__(self, *, ring_bytes: int = DEFAULT_RING_BYTES) -> None:
        self.ring_bytes = int(ring_bytes)
        self._comm_members: dict[int, list[int]] = {}
        self._members_lock = threading.Lock()
        self._values: list = []
        self._clocks: list = []
        self._errors: list = []

    # -- transport interface --------------------------------------------
    def deliver(self, context, comm_id: int, dest_world: int, source: int,
                tag: int, envelope) -> None:
        # Master-side deliveries (none in normal operation) are local.
        context.mailbox(comm_id, dest_world).put(source, tag, envelope)

    def execute(self, context, fn, args: tuple, kwargs: dict):
        try:
            mp_ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            raise CommunicatorError(
                "backend='procs' needs the fork start method "
                "(POSIX only); use backend='threads' on this platform"
            ) from None
        nprocs = context.world_size
        self._values = [None] * nprocs
        self._clocks = [None] * nprocs
        self._errors = [None] * nprocs
        with self._members_lock:
            self._comm_members = {WORLD_COMM_ID: list(range(nprocs))}

        links = [_Link(r, self.ring_bytes, mp_ctx) for r in range(nprocs)]
        # Abort/revoke must reach workers blocked in pure compute, not
        # just those parked in an RPC: push them out-of-band.
        context.add_abort_hook(
            lambda reason: self._broadcast(links, ("oob", "abort", reason))
        )
        context.add_revoke_hook(
            lambda threshold, reason: self._broadcast(
                links, ("oob", "revoke", threshold, reason))
        )
        cfg = _WorkerConfig(context)

        procs = []
        for link in links:
            proc = mp_ctx.Process(
                target=_worker_main,
                args=(links, link.rank, fn, args, kwargs, cfg),
                name=f"spmd-rank-{link.rank}",
                daemon=True,
            )
            proc.start()
            procs.append(proc)
        for link in links:
            link.close_worker_ends()

        threads = []
        for link in links:
            for target, label in ((self._serve_ctl, "ctl"),
                                  (self._serve_data, "data")):
                thread = threading.Thread(
                    target=target, args=(link, context), daemon=True,
                    name=f"spmd-{label}-{link.rank}",
                )
                thread.start()
                threads.append(thread)

        for proc in procs:
            proc.join()
        for thread in threads:
            thread.join(timeout=10.0)
        for link in links:
            link.close_master_ends()
        return self._values, self._clocks, self._errors

    # -- out-of-band push ------------------------------------------------
    @staticmethod
    def _broadcast(links: list, msg: tuple) -> None:
        for link in links:
            with link.send_lock:
                try:
                    link.ctl_master.send(msg)
                except (OSError, ValueError):
                    pass  # worker already gone

    # -- master service threads -----------------------------------------
    def _reply(self, link: _Link, value) -> None:
        skeleton, arrays = split_arrays(value)
        views, descrs = prepare_arrays(arrays)
        with link.send_lock:
            link.ctl_master.send(("ok", skeleton, descrs))
            send_arrays(link.reply_ring, views)

    def _reply_err(self, link: _Link, exc: BaseException) -> None:
        with link.send_lock:
            link.ctl_master.send(("err", _encode_exception(exc)))

    def _serve_ctl(self, link: _Link, context) -> None:
        """Serve one worker's blocking RPCs until it disconnects."""
        conn = link.ctl_master
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            _, method, skeleton, descrs = msg
            try:
                arrays = recv_arrays(link.ctl_ring, descrs)
            except Exception:
                return  # worker died mid-request; data thread reports it
            request = join_arrays(skeleton, arrays)
            try:
                value = self._dispatch(context, link, method, request)
            except BaseException as exc:  # noqa: BLE001 - RPC error path
                try:
                    self._reply_err(link, exc)
                except (OSError, ValueError):
                    return
                continue
            try:
                self._reply(link, value)
            except (OSError, ValueError):
                return
            if method in ("finalize", "rank_killed", "rank_error"):
                return

    def _serve_data(self, link: _Link, context) -> None:
        """Drain one worker's deliveries; EOF is its death certificate."""
        conn = link.data_master
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "hb":
                # Telemetry heartbeat: fold the worker's streaming delta
                # into the caller's objects.  Not a delivery — must not
                # advance the drain barrier.
                self._ingest_heartbeat(context, msg[1], msg[2], msg[3])
                continue
            _, comm_id, dest_world, source, tag, meta, skeleton, descrs = msg
            try:
                arrays = recv_arrays(link.data_ring, descrs)
            except Exception:
                break
            payload = join_arrays(skeleton, arrays)
            send_time, moved, nbytes, seq, checksum, origin = meta
            env = Envelope(payload=payload, send_time=send_time, moved=moved,
                           nbytes=nbytes, origin=_decode_origin(origin),
                           seq=seq, checksum=checksum)
            context.mailbox(comm_id, dest_world).put(source, tag, env)
            with link.put_cond:
                link.puts_received += 1
                link.put_cond.notify_all()
        # A worker that vanished without a lifecycle message died hard
        # (killed, segfaulted): record the death so blocked partners
        # fast-fail with RankFailedError instead of timing out.
        rank = link.rank
        if context.rank_status(rank) == "running":
            if self._errors[rank] is None:
                self._errors[rank] = RankFailedError(
                    f"rank {rank} worker process died unexpectedly"
                )
            context.mark_failed(rank)

    # -- RPC dispatch ----------------------------------------------------
    def _dispatch(self, context, link: _Link, method: str, args: tuple):
        if method == "box_get":
            comm_id, world_rank, source, tag = args
            return _encode_envelope(
                self._blocking_get(context, comm_id, world_rank, source, tag)
            )
        if method == "box_try_get":
            comm_id, world_rank, source, tag = args
            return _encode_envelope(
                context.mailbox(comm_id, world_rank).try_get(source, tag)
            )
        if method == "box_has":
            comm_id, world_rank, source, tag = args
            return context.mailbox(comm_id, world_rank).has(source, tag)
        if method == "split":
            parent_comm_id, seqno, size, rank, value, members, world_rank = args
            result = context.split_rendezvous(
                parent_comm_id, seqno, size, rank, tuple(value),
                list(members), world_rank,
            )
            with self._members_lock:
                for new_id, world_members, _old in result.values():
                    self._comm_members[new_id] = list(world_members)
            return result
        if method == "shrink":
            parent_comm_id, seqno, rank, world_rank, members = args
            new_id, ordered_old = context.shrink_rendezvous(
                parent_comm_id, seqno, rank, world_rank, list(members)
            )
            with self._members_lock:
                self._comm_members[new_id] = [members[i] for i in ordered_old]
            return (new_id, ordered_old)
        if method == "check_collective":
            comm_id, seq, world_rank, op, signature, comm_size = args
            context.sanitizer.check_collective(
                comm_id, seq, world_rank, op, tuple(signature), comm_size
            )
            return None
        if method == "rank_status":
            return context.rank_status(args[0])
        if method == "running_world_ranks":
            return sorted(context.running_world_ranks())
        if method == "failed_ranks":
            return context.failed_ranks()
        if method == "allocate_comm_id":
            return context.allocate_comm_id()
        if method == "abort":
            context.abort(args[0])
            return None
        if method == "revoke_current":
            context.revoke_current(args[0])
            return (context.revoked_below, context.revoke_reason)
        if method == "store_put":
            holder, key, value = args
            context.store_put(holder, key, value)
            return None
        if method == "store_items":
            return context.store_items(args[0])
        if method == "store_delete":
            context.store_delete(args[0], args[1])
            return None
        if method in ("finalize", "rank_killed", "rank_error"):
            payload, shards, puts_sent = args
            return self._finish_rank(context, link, method, payload, shards,
                                     puts_sent)
        raise CommunicatorError(f"unknown transport RPC {method!r}")

    def _blocking_get(self, context, comm_id: int, me: int, source: int,
                      tag: int) -> Envelope:
        """The canonical blocked receive, run master-side for a worker.

        Mirrors ``Communicator._recv_blocking`` on the threads backend:
        dead-partner fast-fail with sanitizer diagnosis, revocation
        checks, and wait-for-graph bookkeeping, all against the
        master's authoritative world state.
        """
        box = context.mailbox(comm_id, me)
        san = context.sanitizer
        with self._members_lock:
            members = self._comm_members.get(comm_id)
        src_world = members[source] if members is not None else source

        def poll() -> None:
            if comm_id < context.revoked_below:
                context.check_revoked(comm_id)
            status = context.rank_status(src_world)
            if status != "running" and not box.has(source, tag):
                if san is not None:
                    diag = san.describe_failed_partner(
                        me, src_world, source, tag, status, box,
                        expected=(context.faults is not None
                                  and status == "failed"),
                    )
                    raise RankFailedError(diag.message, diagnostic=diag)
                where = (
                    f"recv(source={source}, tag={tag})" if tag >= 0
                    else f"a collective exchange with rank {source}"
                )
                raise RankFailedError(
                    f"rank {me} blocked in {where} "
                    f"but rank {src_world} already {status}"
                )
            if san is not None:
                san.on_stall(me)

        interval = (
            san.watchdog_interval if san is not None
            else context.fault_poll_interval
        )
        if san is not None:
            san.begin_wait(me, src_world, source, tag, comm_id, box)
        try:
            poll()  # the partner may already be gone
            return box.get(
                source, tag, context.recv_timeout, poll=poll,
                interval=interval,
            )
        finally:
            if san is not None:
                san.end_wait(me)

    def _finish_rank(self, context, link: _Link, method: str, payload,
                     shards: dict, puts_sent: int) -> bool:
        # Delivery-drain barrier: the rank is not done until every
        # payload it handed to the ring sits in a mailbox — otherwise a
        # partner could observe "failed with an empty queue" and raise
        # RankFailedError for a message that was actually sent.
        with link.put_cond:
            deadline = time.monotonic() + _DRAIN_TIMEOUT
            while (link.puts_received < puts_sent
                   and time.monotonic() < deadline):
                link.put_cond.wait(timeout=0.1)
        self._merge_shards(context, link.rank, shards)
        rank = link.rank
        if method == "finalize":
            self._values[rank] = payload
            context.mark_finalized(rank)
        elif method == "rank_killed":
            self._errors[rank] = _decode_exception(payload)
            context.mark_failed(rank)
        else:
            exc = _decode_exception(payload)
            self._errors[rank] = exc
            context.mark_failed(rank)
            context.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")
        return True

    def _ingest_heartbeat(self, context, rank: int, ts: float,
                          delta: dict) -> None:
        """Fold one heartbeat into the caller's telemetry objects."""
        try:
            self._merge_telemetry(context, rank, delta)
            hub = getattr(context, "telemetry", None)
            if hub is not None:
                hub.beat(rank, ts)
        except Exception:  # pragma: no cover - telemetry must not kill
            pass  # the data thread; deliveries matter more

    def _merge_telemetry(self, context, rank: int, shards: dict) -> None:
        """Merge the streaming shard slice (metrics/comm/recorder)."""
        tracer = context.tracer
        if tracer is not None and shards.get("metrics"):
            tracer.metrics.merge_snapshot(shards["metrics"])
        trace = context.comm_trace
        if trace is not None and shards.get("comm_trace"):
            trace.merge_state(shards["comm_trace"])
        recorder = getattr(context, "recorder", None)
        if recorder is not None and shards.get("recorder"):
            recorder.absorb_events(rank, shards["recorder"])

    def _merge_shards(self, context, rank: int, shards: dict) -> None:
        clock = shards.get("clock")
        if clock is not None:
            self._clocks[rank] = clock
        tracer = context.tracer
        if tracer is not None:
            spans = shards.get("spans")
            if spans:
                tracer.absorb_spans(spans)
        self._merge_telemetry(context, rank, shards)
        injector = context.faults
        if injector is not None and shards.get("faults"):
            events, ops = shards["faults"]
            injector.absorb(events, ops)
        sanitizer = context.sanitizer
        if sanitizer is not None and shards.get("sanitizer"):
            sanitizer.absorb_findings(shards["sanitizer"])
