"""Process transport: forked rank workers around a master-resident world.

True multi-core execution for the simulated runtime.  Each rank is a
forked worker process running the user's program against a
:class:`~repro.mpi.transport.worldproxy.WorkerContext` — a rank-local
stand-in that duck-types the :class:`~repro.mpi.context.SpmdContext`
surface the communicator, drivers, and checkpoint store use.  The
*world* itself — mailboxes, split/shrink rendezvous, rank status, the
node-local store, and the sanitizer — stays in the master process,
which is the single source of truth exactly like an MPI runtime daemon.
Everything above the wire (the worker context, the observability
shards, the master's RPC dispatch and lifecycle barrier) lives in
:mod:`~repro.mpi.transport.worldproxy` and is shared with the sockets
backend; this module owns only the pipes-and-rings wire.

Wire layout per worker (all created *before* the fork so both sides
share the mappings):

* a duplex **control pipe** carrying RPC requests/replies and
  out-of-band abort/revoke pushes (small pickled tuples);
* a one-way **data pipe** carrying message-delivery headers;
* three :class:`~repro.mpi.transport.shm.ShmRing` shared-memory rings
  carrying raw ndarray bytes, pickle-free: ``data`` (worker→master,
  message payloads), ``ctl`` (worker→master, RPC-argument arrays), and
  ``reply`` (master→worker, RPC-result arrays).

The master runs two service threads per worker: a *data* thread
draining fire-and-forget deliveries into the destination mailbox (its
EOF is how a hard-died worker is detected and surfaced to partners as
:class:`~repro.errors.RankFailedError`), and a *control* thread
serving blocking RPCs — including the canonical blocked-receive
protocol with failed-partner fast-fail, revocation checks, and the
sanitizer's wait-for-graph bookkeeping, all of which therefore behave
identically to the threads backend.

Delivery counters (``puts sent`` vs ``puts received``) gate the rank
lifecycle: a worker's finalize/crash report is processed only after
every payload it handed to the ring has reached its mailbox, so a
partner never observes "dead with an empty queue" for a message that
was actually sent.

Observability is sharded: each worker records spans, metrics, comm
tallies, and fault events into its forked copies and ships the
post-fork *delta* home with its lifecycle message; the master folds
the shards into the caller's objects, so ``tracer.spans``,
``comm_trace`` tallies, and the fault trace look the same as a
threaded run.  When a flight recorder or telemetry hub is attached,
workers additionally run a *heartbeat* thread streaming the
metrics/comm/recorder delta to the master every
``recorder.heartbeat_interval`` seconds as ``("hb", ...)`` messages on
the data path (the pump keeps the pipe single-writer), so mid-run
snapshots and crash postmortems see near-live state instead of only
the finalize merge.

Zero-copy move enforcement works across the process boundary: each
worker keeps a rank-local move ledger (a worker-resident
:class:`~repro.sanitize.Sanitizer` serving only the move prongs) that
registers every relinquished/received frozen buffer with its real call
site, and the sending site travels in the envelope's wire metadata —
so a worker-side write into a moved buffer raises
:class:`~repro.errors.UseAfterMoveError` naming the originating
``send(..., copy=False)``, on either end of the move, exactly like the
threads backend.  Worker-side findings ship home with the lifecycle
shards.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading
from typing import Any

from ...errors import CommunicatorError, RankFailedError, WorldAbortedError
from ..context import Envelope
from .base import Transport
from .codec import (
    decode_exception,
    decode_origin,
    encode_exception,
    encode_origin,
    join_arrays,
    prepare_arrays,
    split_arrays,
)
from .shm import DEFAULT_RING_BYTES, ShmRing, recv_arrays, send_arrays
from .threads import WORLD_COMM_ID
from .worldproxy import SendToken, WorkerConfig, WorldServerMixin, run_worker

__all__ = ["ProcessTransport"]


# ----------------------------------------------------------------------
# Per-worker plumbing bundle
# ----------------------------------------------------------------------
class _Link:
    """Everything one worker shares with the master; built pre-fork."""

    def __init__(self, rank: int, ring_bytes: int, mp_ctx) -> None:
        self.rank = rank
        self.ctl_master, self.ctl_worker = mp_ctx.Pipe(duplex=True)
        # One-way delivery headers: (recv end, send end).
        self.data_master, self.data_worker = mp_ctx.Pipe(duplex=False)
        self.data_ring = ShmRing(ring_bytes)   # worker -> master payloads
        self.ctl_ring = ShmRing(ring_bytes)    # worker -> master RPC args
        self.reply_ring = ShmRing(ring_bytes)  # master -> worker replies
        # Master-side: serializes RPC replies with out-of-band pushes on
        # the control pipe, and tracks delivery drain for the lifecycle
        # barrier.
        self.send_lock = threading.Lock()
        self.put_cond = threading.Condition()
        self.puts_received = 0
        # Set when a replacement superseded this link: its EOF is then
        # expected teardown of the dead incarnation, not a new death,
        # and must not fail the rank the replacement now occupies.
        self.replaced = False

    @staticmethod
    def _close(conns) -> None:
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass

    def close_worker_ends(self) -> None:
        self._close((self.ctl_worker, self.data_worker))

    def close_master_ends(self) -> None:
        self._close((self.ctl_master, self.data_master))

    def close_all_conns(self) -> None:
        self.close_worker_ends()
        self.close_master_ends()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _Channel:
    """Worker-side RPC client over the control pipe and its two rings.

    Single caller (the rank's main thread), so requests never
    interleave; out-of-band abort/revoke pushes arriving while a reply
    is awaited are applied and skipped.
    """

    def __init__(self, conn, ctl_ring: ShmRing, reply_ring: ShmRing) -> None:
        self._conn = conn
        self._ctl_ring = ctl_ring
        self._reply_ring = reply_ring
        self.state = None  # the WorkerContext, set after construction

    def call(self, method: str, *args) -> Any:
        skeleton, arrays = split_arrays(args)
        views, descrs = prepare_arrays(arrays)
        try:
            self._conn.send(("rpc", method, skeleton, descrs))
            send_arrays(self._ctl_ring, views)
        except (OSError, ValueError) as exc:
            raise WorldAbortedError(
                f"SPMD master is gone ({method} RPC failed: {exc})"
            ) from None
        while True:
            try:
                msg = self._conn.recv()
            except (EOFError, OSError):
                raise WorldAbortedError(
                    f"SPMD master is gone (no reply to {method})"
                ) from None
            if msg[0] == "oob":
                self.state.apply_oob(msg)
                continue
            break
        if msg[0] == "err":
            raise decode_exception(msg[1])
        _, skeleton, descrs = msg
        arrays = recv_arrays(self._reply_ring, descrs)
        return join_arrays(skeleton, arrays)

    def drain_oob(self) -> None:
        """Apply any queued abort/revoke pushes without blocking."""
        try:
            while self._conn.poll(0):
                msg = self._conn.recv()
                if msg[0] == "oob":
                    self.state.apply_oob(msg)
        except (EOFError, OSError):  # pragma: no cover - master gone
            pass


class _SendPump:
    """Owns the worker's data path: a daemon thread draining a queue.

    ``deliver`` must not block the rank on ring backpressure (buffered-
    send semantics: the payload is already snapshotted or frozen by
    ``_deliver``), so sends are staged here and written FIFO.  The
    returned event is the ``isend`` completion token — set once the
    payload has fully entered the shared-memory ring.
    """

    def __init__(self, conn, ring: ShmRing) -> None:
        self._conn = conn
        self._ring = ring
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self.sent = 0  # messages accepted; shipped with the lifecycle RPC
        self.failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="spmd-send-pump"
        )
        self._thread.start()

    def enqueue(self, comm_id: int, dest_world: int, source: int, tag: int,
                env: Envelope) -> threading.Event:
        if self.failure is not None:
            raise CommunicatorError(
                f"shared-memory send path failed: {self.failure}"
            )
        skeleton, arrays = split_arrays(env.payload)
        views, descrs = prepare_arrays(arrays)
        meta = (env.send_time, env.moved, env.nbytes, env.seq, env.checksum,
                encode_origin(env.origin))
        header = ("put", comm_id, dest_world, source, tag, meta, skeleton,
                  descrs)
        token = SendToken()
        self._queue.put((header, views, token))
        self.sent += 1
        return token

    def enqueue_raw(self, header: tuple) -> None:
        """Stage a non-delivery message (telemetry heartbeat) on the pump.

        The data pipe is single-writer by construction — every write
        goes through the pump thread — so heartbeats ride the same FIFO
        as payload deliveries.  Raw messages carry no payload arrays
        and do not count toward ``sent`` (the delivery-drain barrier
        counts only ``"put"`` messages on both ends).
        """
        if self.failure is not None:
            return  # telemetry is best-effort; the rank path reports it
        self._queue.put((header, (), None))

    def flush(self, timeout: float | None = None) -> None:
        """Block until every frame staged so far shipped or failed.

        Run before the lifecycle report so ``failure`` is
        authoritative: without it a rank could finalize while the pump
        thread is still discovering that its frames will never ship.
        """
        token = SendToken()
        self._queue.put((None, (), token))
        token.wait(timeout)

    def _run(self) -> None:
        while True:
            header, views, token = self._queue.get()
            err = self.failure
            if err is None and header is not None:
                try:
                    self._conn.send(header)
                    if views:
                        send_arrays(self._ring, views)
                except BaseException as exc:  # noqa: BLE001 - report once
                    self.failure = err = exc
            if token is not None:
                # A frame that never shipped must not report a clean
                # stage: the waiter re-raises the error instead.
                token.error = err
                token.set()


def _worker_main(links: list, rank: int, fn, args, kwargs,
                 cfg: WorkerConfig) -> None:
    """Entry point of a forked rank worker."""
    own = links[rank]
    # fd hygiene: drop the inherited copies of every other worker's pipe
    # ends and the master's copies of our own — EOF detection on both
    # sides depends on each fd having exactly one owner.
    for link in links:
        if link.rank == rank:
            link.close_master_ends()
        else:
            link.close_all_conns()

    channel = _Channel(own.ctl_worker, own.ctl_ring, own.reply_ring)
    pump = _SendPump(own.data_worker, own.data_ring)
    run_worker(cfg, rank, fn, args, kwargs, channel, pump)


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
class ProcessTransport(WorldServerMixin, Transport):
    """Ranks as forked processes; the master hosts the world state."""

    name = "procs"
    shared_world = False

    def __init__(self, *, ring_bytes: int = DEFAULT_RING_BYTES) -> None:
        self.ring_bytes = int(ring_bytes)
        self._comm_members: dict[int, list[int]] = {}
        self._members_lock = threading.Lock()
        self._values: list = []
        self._clocks: list = []
        self._errors: list = []

    # -- transport interface --------------------------------------------
    def deliver(self, context, comm_id: int, dest_world: int, source: int,
                tag: int, envelope) -> None:
        # Master-side deliveries (none in normal operation) are local.
        context.mailbox(comm_id, dest_world).put(source, tag, envelope)

    def execute(self, context, fn, args: tuple, kwargs: dict):
        try:
            mp_ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            raise CommunicatorError(
                "backend='procs' needs the fork start method "
                "(POSIX only); use backend='threads' on this platform"
            ) from None
        nprocs = context.world_size
        self._values = [None] * nprocs
        self._clocks = [None] * nprocs
        self._errors = [None] * nprocs
        with self._members_lock:
            self._comm_members = {WORLD_COMM_ID: list(range(nprocs))}

        links = [_Link(r, self.ring_bytes, mp_ctx) for r in range(nprocs)]
        # Abort/revoke must reach workers blocked in pure compute, not
        # just those parked in an RPC: push them out-of-band.
        context.add_abort_hook(
            lambda reason: self._broadcast(links, ("oob", "abort", reason))
        )
        context.add_revoke_hook(
            lambda threshold, reason: self._broadcast(
                links, ("oob", "revoke", threshold, reason))
        )
        cfg = WorkerConfig(context)

        procs: list = []
        threads: list = []
        spawn_lock = threading.Lock()

        def serve_link(link: _Link) -> None:
            for target, label in ((self._serve_ctl, "ctl"),
                                  (self._serve_data, "data")):
                thread = threading.Thread(
                    target=target, args=(link, context), daemon=True,
                    name=f"spmd-{label}-{link.rank}",
                )
                thread.start()
                with spawn_lock:
                    threads.append(thread)

        def respawn(rank: int) -> None:
            # Elastic replacement: supersede the dead incarnation's
            # link, forget its error (the replacement's lifecycle
            # message owns the slot now), and re-fork the rank program
            # at the same world position.  The fresh fork inherits the
            # master's current state, so the replacement's WorkerConfig
            # travels by reference exactly like the original's; its
            # respawn_info tells the worker which incarnation it is.
            links[rank].replaced = True
            self._errors[rank] = None
            new_link = _Link(rank, self.ring_bytes, mp_ctx)
            links[rank] = new_link
            rcfg = WorkerConfig(context)
            rcfg.respawn_info = {
                "incarnation": context.rank_incarnations[rank],
                "crash_fired": (context.faults.crash_fires(rank)
                                if context.faults is not None else None),
                "revoked_below": context.revoked_below,
                "revoke_reason": context.revoke_reason,
            }
            proc = mp_ctx.Process(
                target=_worker_main,
                args=(links, rank, fn, args, kwargs, rcfg),
                name=f"spmd-rank-{rank}-i{rcfg.respawn_info['incarnation']}",
                daemon=True,
            )
            proc.start()
            with spawn_lock:
                procs.append(proc)
            new_link.close_worker_ends()
            serve_link(new_link)

        context.set_respawner(respawn)

        for link in links:
            proc = mp_ctx.Process(
                target=_worker_main,
                args=(links, link.rank, fn, args, kwargs, cfg),
                name=f"spmd-rank-{link.rank}",
                daemon=True,
            )
            proc.start()
            procs.append(proc)
        for link in links:
            link.close_worker_ends()
        for link in links:
            serve_link(link)

        # Join by index: a replace rendezvous running on a ctl service
        # thread may append replacement processes (and their service
        # threads) while this loop is already draining, and every
        # incarnation must be joined before the results are read.
        i = 0
        while True:
            with spawn_lock:
                if i >= len(procs):
                    break
                proc = procs[i]
            i += 1
            proc.join()
        i = 0
        while True:
            with spawn_lock:
                if i >= len(threads):
                    break
                thread = threads[i]
            i += 1
            thread.join(timeout=10.0)
        for link in links:
            link.close_master_ends()
        return self._values, self._clocks, self._errors

    # -- out-of-band push ------------------------------------------------
    @staticmethod
    def _broadcast(links: list, msg: tuple) -> None:
        for link in links:
            with link.send_lock:
                try:
                    link.ctl_master.send(msg)
                except (OSError, ValueError):
                    pass  # worker already gone

    # -- master service threads -----------------------------------------
    def _reply(self, link: _Link, value) -> None:
        skeleton, arrays = split_arrays(value)
        views, descrs = prepare_arrays(arrays)
        with link.send_lock:
            link.ctl_master.send(("ok", skeleton, descrs))
            send_arrays(link.reply_ring, views)

    def _reply_err(self, link: _Link, exc: BaseException) -> None:
        with link.send_lock:
            link.ctl_master.send(("err", encode_exception(exc)))

    def _serve_ctl(self, link: _Link, context) -> None:
        """Serve one worker's blocking RPCs until it disconnects."""
        conn = link.ctl_master
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            _, method, skeleton, descrs = msg
            try:
                arrays = recv_arrays(link.ctl_ring, descrs)
            except Exception:
                return  # worker died mid-request; data thread reports it
            request = join_arrays(skeleton, arrays)
            try:
                value = self._dispatch(context, link, method, request)
            except BaseException as exc:  # noqa: BLE001 - RPC error path
                try:
                    self._reply_err(link, exc)
                except (OSError, ValueError):
                    return
                continue
            try:
                self._reply(link, value)
            except (OSError, ValueError):
                return
            if method in ("finalize", "rank_killed", "rank_error"):
                return

    def _serve_data(self, link: _Link, context) -> None:
        """Drain one worker's deliveries; EOF is its death certificate."""
        conn = link.data_master
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg[0] == "hb":
                # Telemetry heartbeat: fold the worker's streaming delta
                # into the caller's objects.  Not a delivery — must not
                # advance the drain barrier.
                self._ingest_heartbeat(context, msg[1], msg[2], msg[3])
                continue
            _, comm_id, dest_world, source, tag, meta, skeleton, descrs = msg
            try:
                arrays = recv_arrays(link.data_ring, descrs)
            except Exception:
                break
            payload = join_arrays(skeleton, arrays)
            send_time, moved, nbytes, seq, checksum, origin = meta
            env = Envelope(payload=payload, send_time=send_time, moved=moved,
                           nbytes=nbytes, origin=decode_origin(origin),
                           seq=seq, checksum=checksum)
            context.mailbox(comm_id, dest_world).put(source, tag, env)
            with link.put_cond:
                link.puts_received += 1
                link.put_cond.notify_all()
        # A worker that vanished without a lifecycle message died hard
        # (killed, segfaulted): record the death so blocked partners
        # fast-fail with RankFailedError instead of timing out.
        rank = link.rank
        if not link.replaced and context.rank_status(rank) == "running":
            if self._errors[rank] is None:
                self._errors[rank] = RankFailedError(
                    f"rank {rank} worker process died unexpectedly"
                )
            context.mark_failed(rank)
