"""Transport interface: how simulated ranks run and exchange envelopes.

The communicator layer is transport-agnostic: it builds
:class:`~repro.mpi.context.Envelope` objects and hands them to
``context.deliver(...)``; blocking receives go through the context's
mailbox objects.  A :class:`Transport` decides what sits behind those
two seams:

* :class:`~repro.mpi.transport.threads.ThreadTransport` — ranks are
  threads of the calling process; ``deliver`` is a direct in-memory
  mailbox append.  Shared address space, zero serialization.
* :class:`~repro.mpi.transport.procs.ProcessTransport` — ranks are
  forked worker processes; the authoritative world state (mailboxes,
  rendezvous tables, node store, sanitizer) lives in the master, and
  ndarray payloads travel through shared-memory ring buffers without
  pickling their data.
* :class:`~repro.mpi.transport.sockets.SocketTransport` — the same
  master-resident world reached over framed TCP connections, with
  retry/heartbeat/liveness hardening against real network failure;
  workers may also be launched as separate processes on other hosts
  (``hosts=...``).

A transport also owns the rank *lifecycle*: :meth:`Transport.execute`
spawns the ranks, runs the SPMD program on each, funnels per-rank
return values / clocks / errors back to the launcher, and tears the
world down (including after failures), so ``run_spmd`` itself stays
backend-neutral.
"""

from __future__ import annotations

import os
from typing import Any, Callable

from ...errors import CommunicatorError

__all__ = [
    "Transport",
    "available_backends",
    "make_transport",
    "resolve_backend",
    "BACKEND_ENV_VAR",
]

#: Environment variable consulted when ``run_spmd(backend=None)``.
BACKEND_ENV_VAR = "REPRO_SPMD_BACKEND"

_BACKENDS = ("threads", "procs", "sockets")


class Transport:
    """How ranks of one SPMD world execute and exchange envelopes.

    Subclasses implement the two seams the runtime routes through —
    delivery (:meth:`deliver` / :meth:`deliver_async`) and lifecycle
    (:meth:`execute`) — plus the :attr:`shared_world` capability flag
    that tells the launcher whether caller-provided observability
    objects (tracer, comm trace, fault injector) are mutated in place
    by the ranks or must be merged back from per-rank shards at
    finalize.
    """

    #: Short backend name ("threads", "procs") used in CLI flags,
    #: bench reports, and error messages.
    name: str = "abstract"

    #: True when ranks share the caller's address space: the caller's
    #: tracer/comm-trace/injector objects are written directly and the
    #: context the caller built is the one every rank sees.
    shared_world: bool = True

    # -- delivery seam --------------------------------------------------
    def deliver(self, context, comm_id: int, dest_world: int,
                source: int, tag: int, envelope) -> None:
        """Blocking-semantics handoff of one envelope (returns when staged).

        ``source`` is the sender's rank *within* the communicator,
        ``dest_world`` the receiver's world rank — the mailbox key the
        whole runtime addresses messages by.
        """
        raise NotImplementedError

    def deliver_async(self, context, comm_id: int, dest_world: int,
                      source: int, tag: int, envelope):
        """Nonblocking handoff; returns a completion token or ``None``.

        ``None`` means the handoff already completed (the threads
        backend: a mailbox append is instantaneous).  Otherwise the
        token is a ``threading.Event``-like object — set once the
        payload has been staged out of the sender's hands — which
        :meth:`Communicator.isend` wraps into its request.
        """
        self.deliver(context, comm_id, dest_world, source, tag, envelope)
        return None

    # -- lifecycle seam -------------------------------------------------
    def execute(
        self,
        context,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> tuple[list, list, list]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank of ``context``.

        Returns ``(values, clocks, errors)``, each indexed by world
        rank; ``errors[r]`` is the exception rank ``r`` died with (or
        None).  The transport must have marked failed ranks in the
        context and aborted the world for non-crash errors before
        returning, exactly like the historical in-launcher thread loop.
        """
        raise NotImplementedError


def available_backends() -> tuple[str, ...]:
    """Names accepted by ``run_spmd(backend=...)``."""
    return _BACKENDS


def resolve_backend(backend: str | None) -> str:
    """Validate an explicit backend or fall back to env var / default."""
    if backend is None:
        backend = os.environ.get(BACKEND_ENV_VAR) or "threads"
    backend = str(backend).lower()
    if backend not in _BACKENDS:
        raise CommunicatorError(
            f"unknown SPMD backend {backend!r}; expected one of {_BACKENDS}"
        )
    return backend


def make_transport(backend: "str | Transport | None") -> Transport:
    """Instantiate the transport for ``backend`` (resolving defaults).

    A pre-built :class:`Transport` instance passes through unchanged —
    the hook for transports with constructor knobs that a plain name
    cannot carry (``SocketTransport(hosts=...)``,
    ``SocketTransport(liveness_timeout=...)``).
    """
    if isinstance(backend, Transport):
        return backend
    backend = resolve_backend(backend)
    if backend == "procs":
        from .procs import ProcessTransport

        return ProcessTransport()
    if backend == "sockets":
        from .sockets import SocketTransport

        return SocketTransport()
    from .threads import ThreadTransport

    return ThreadTransport()
