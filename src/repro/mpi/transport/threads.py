"""Threaded transport: ranks as threads of the calling process.

The historical (and default) execution model of the simulated runtime.
Every rank is a ``threading.Thread`` sharing the caller's address
space, so delivery is a direct mailbox append, observability objects
are written in place, and zero-copy move semantics are literal — the
receiver gets the sender's ndarray object.  NumPy kernels release the
GIL, so ranks overlap on multicore hosts for the BLAS-bound portions;
pure-Python sections serialize (the gap the process backend closes).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ...faults.injector import (
    activate as faults_activate,
    deactivate as faults_deactivate,
)
from ...errors import RankKilledError
from ...obs.recorder import (
    activate as recorder_activate,
    deactivate as recorder_deactivate,
)
from ...obs.tracer import activate as obs_activate, deactivate as obs_deactivate
from .base import Transport

__all__ = ["ThreadTransport", "run_rank_program"]

#: Communicator id of the world every rank starts from.
WORLD_COMM_ID = 0


def run_rank_program(context, comm, fn, args, kwargs, rank: int,
                     *, on_value, on_killed, on_error) -> None:
    """One rank's program run with the canonical error protocol.

    Shared by both transports so a rank behaves identically whether it
    is a thread or a forked process: an injected crash
    (:class:`~repro.errors.RankKilledError`) marks the rank failed but
    leaves the world running for ULFM-style recovery; any other
    exception (translated through the sanitizer's read-only-write
    attribution when one is attached) marks the rank failed *and*
    aborts the world.  The three callbacks let each transport route the
    outcome to its own bookkeeping (in-memory lists for threads, RPC
    messages for processes).
    """
    tracer = context.tracer
    injector = context.faults
    recorder = getattr(context, "recorder", None)
    if tracer is not None:
        obs_activate(tracer, rank)
    if injector is not None:
        faults_activate(injector, rank)
    if recorder is not None:
        recorder_activate(recorder, rank)
    try:
        on_value(fn(comm, *args, **kwargs))
    except RankKilledError as exc:
        # An injected crash is a *simulated* failure: record the death
        # so partners observe RankFailedError, but leave the world
        # running — survivors get the chance to shrink and recover.
        on_killed(exc)
    except BaseException as exc:  # noqa: BLE001 - must abort the world
        sanitizer = context.sanitizer
        if sanitizer is not None:
            # A write into a frozen (moved) buffer surfaces as NumPy's
            # read-only ValueError; re-attribute it to the zero-copy
            # send that relinquished the buffer.
            translated = sanitizer.explain_readonly_write(exc, rank)
            if translated is not None:
                exc = translated
        on_error(exc)
    finally:
        if recorder is not None:
            recorder_deactivate()
        if injector is not None:
            faults_deactivate()
        if tracer is not None:
            obs_deactivate()


class ThreadTransport(Transport):
    """Ranks as threads; envelopes append straight into shared mailboxes."""

    name = "threads"
    shared_world = True

    def deliver(self, context, comm_id: int, dest_world: int,
                source: int, tag: int, envelope) -> None:
        """Append the envelope to the destination's in-process mailbox."""
        context.mailbox(comm_id, dest_world).put(source, tag, envelope)

    def execute(
        self,
        context,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> tuple[list, list, list]:
        """Spawn one thread per rank and join them all."""
        from ..communicator import Communicator

        nprocs = context.world_size
        members = list(range(nprocs))
        values: list = [None] * nprocs
        clocks: list = [None] * nprocs
        errors: list = [None] * nprocs

        def worker(rank: int) -> None:
            comm = Communicator(context, WORLD_COMM_ID, members, rank)
            clocks[rank] = comm.clock

            def on_value(value: Any) -> None:
                values[rank] = value
                context.mark_finalized(rank)

            def on_killed(exc: BaseException) -> None:
                errors[rank] = exc
                context.mark_failed(rank)

            def on_error(exc: BaseException) -> None:
                errors[rank] = exc
                context.mark_failed(rank)
                context.abort(
                    f"rank {rank} raised {type(exc).__name__}: {exc}"
                )

            run_rank_program(
                context, comm, fn, args, kwargs, rank,
                on_value=on_value, on_killed=on_killed, on_error=on_error,
            )

        if nprocs == 1:
            # Fast path: no threads for the serial case.
            worker(0)
            return values, clocks, errors

        threads: list[threading.Thread] = []
        threads_lock = threading.Lock()

        def start_rank(rank: int) -> None:
            t = threading.Thread(
                target=worker, args=(rank,), name=f"spmd-rank-{rank}"
            )
            with threads_lock:
                threads.append(t)
            t.start()

        def respawn(rank: int) -> None:
            # Elastic replacement: forget the dead incarnation's error
            # (the replacement's outcome overwrites the slot) and rerun
            # the rank program on a fresh thread.  The shared injector
            # must reset the rank's counters here — unlike the process
            # transports, there is no per-worker injector copy to seed.
            errors[rank] = None
            injector = context.faults
            if injector is not None:
                injector.note_respawn(
                    rank,
                    incarnation=context.rank_incarnations[rank],
                    fired=injector.crash_fires(rank),
                )
            start_rank(rank)

        context.set_respawner(respawn)
        for r in range(nprocs):
            start_rank(r)
        # Join by index: a replace rendezvous may append replacement
        # threads while earlier ones are still being joined, and every
        # incarnation must finish before the results are read.
        i = 0
        while True:
            with threads_lock:
                if i >= len(threads):
                    break
                t = threads[i]
            i += 1
            t.join()
        return values, clocks, errors
