"""Socket transport: the master-resident world over framed TCP links.

The same execution model as the procs backend — rank workers in their
own processes, the authoritative world (mailboxes, rendezvous, rank
status, store, sanitizer) resident in the master, everything above the
wire shared via :mod:`~repro.mpi.transport.worldproxy` — but the wire
is TCP, hardened against the failure modes real networks have and
pipes do not:

* **Rendezvous handshake.**  The master binds a listener and hands each
  worker an address book entry ``(host, port, token, rank)``.  Every
  connection opens with a pickle-free JSON ``hello`` control frame
  (purpose, rank, token, connect bookkeeping — primitive fields only);
  the master verifies the token with a constant-time comparison
  *before* deserializing anything else from the connection, then
  acknowledges (JSON again) and wires the connection into the rank's
  link — the pickled envelope framing starts only after this
  authentication.  Each worker keeps two connections:
  a duplex **ctl** link (blocking RPCs plus out-of-band abort/revoke
  pushes) and a one-way **data** link (message deliveries, telemetry
  heartbeats, liveness pings, injected-fault notices).

* **Framing and codec.**  Frames are length-prefixed
  (:class:`~repro.mpi.transport.net.FramedSocket`): a pickled
  array-free header plus the raw bytes of its ndarrays via the shared
  :mod:`~repro.mpi.transport.codec` — array data is never pickled,
  matching the shm rings byte for byte, which is why results are
  bitwise identical across backends.

* **Retry with backoff.**  Connects and reconnects run under a
  :class:`~repro.mpi.transport.net.RetryPolicy` (bounded exponential
  backoff with jitter against reconnect stampedes).  A mid-stream
  reset of the data link is survived transparently: the pump
  reconnects under the policy, re-hellos with a bumped generation, and
  retransmits the frame the reset interrupted.  Retry counts travel in
  the hello ``info`` and land in
  :meth:`~repro.mpi.tracing.CommTrace.record_connect_retry` and the
  transport's ``net_health``.

* **Heartbeats and liveness.**  Workers always run a ping thread on
  the data path (interval ``heartbeat_interval``); the master stamps
  ``last_rx`` on every arriving frame and declares a worker lost when
  the link stays silent past ``liveness_timeout`` — surfacing
  :class:`~repro.errors.RankFailedError` to blocked partners instead
  of hanging.  OS-level TCP keepalive backs the application
  heartbeats.  A worker that dies with an EOF (crash, SIGKILL) is
  detected the same way the procs backend does, just over sockets.

* **Graceful degradation.**  A worker lost to an *injected* network
  partition (see :class:`~repro.faults.NetworkFaultRule`) is recorded
  as :class:`~repro.errors.RankKilledError` — the launcher treats it
  exactly like an injected crash, so fault-tolerant drivers
  revoke/shrink and complete on the survivors rather than aborting the
  world.  Because injection is simulated, the victim ships its
  ``FaultEvent`` record in-band just before going dark, which is how
  the master attributes the silence to the partition in the
  postmortem's ``network`` section.

Two launch modes share all of the above:

* default — workers are **forked** (like procs) and connect back over
  loopback TCP, so closures and caller objects work unchanged and the
  whole conformance suite runs on real sockets;
* ``hosts=[...]`` — workers are **spawned** via ``python -m
  repro.mpi.transport.sockworker`` and receive a pickled boot blob
  (program + world config) over the ctl link after the handshake.
  The program and its arguments must then be picklable; observability
  objects that cannot cross degrade to worker-local ``None`` (their
  master-side halves still work).  Remote hosts are reached by
  running the same command there by hand or any launcher you like —
  the handshake only needs TCP to ``(host, port)``.
"""

from __future__ import annotations

import hmac
import multiprocessing
import os
import pickle
import queue
import socket
import subprocess
import sys
import threading
import time
from typing import Any

from ...errors import (
    CommunicatorError,
    RankFailedError,
    RankKilledError,
    WorldAbortedError,
)
from ...faults.network import NetworkFaultState
from ..context import Envelope
from .base import Transport
from .codec import (
    decode_exception,
    decode_origin,
    descr_nbytes,
    encode_exception,
    encode_origin,
    join_arrays,
    prepare_arrays,
    split_arrays,
)
from .net import (
    DEFAULT_CONNECT_POLICY,
    DEFAULT_HEARTBEAT_INTERVAL,
    DEFAULT_LIVENESS_TIMEOUT,
    FramedSocket,
    LinkClosed,
    LinkTimeout,
    RetryPolicy,
)
from .threads import WORLD_COMM_ID
from .worldproxy import SendToken, WorkerConfig, WorldServerMixin, run_worker

__all__ = ["SocketTransport"]

#: Environment overrides for the CLI and test harnesses.
LIVENESS_ENV_VAR = "REPRO_SOCKETS_LIVENESS"
HEARTBEAT_ENV_VAR = "REPRO_SOCKETS_HEARTBEAT"

#: How spawn mode hands the rendezvous token to a sockworker.  The
#: environment, never argv: command lines are world-readable via
#: ps/procfs for the life of the process, which would leak the shared
#: secret to every user on the host.
TOKEN_ENV_VAR = "REPRO_SOCKETS_TOKEN"

# Seconds the master's data thread sleeps between liveness checks.
_DATA_TICK = 0.2
# Seconds a half-open connection gets to complete its hello.
_HELLO_TIMEOUT = 10.0


def _env_float(name: str, fallback: float) -> float:
    raw = os.environ.get(name)
    if not raw:
        return fallback
    try:
        return float(raw)
    except ValueError:
        return fallback


# ----------------------------------------------------------------------
# Connection establishment (both sides)
# ----------------------------------------------------------------------
def _connect_framed(addr, purpose: str, rank: int, token: str,
                    policy: RetryPolicy, netstate, counters: dict,
                    generation: int = 1) -> FramedSocket:
    """Dial the master and complete the hello handshake, with retry.

    ``netstate`` (when present) gets a crack at every attempt first —
    injected ``connect_refused`` rules raise the same
    ``ConnectionRefusedError`` a closed port would, and the policy
    rides them out exactly like the real thing.  ``counters`` tallies
    attempts/retries for the hello info the master's health table and
    ``CommTrace.record_connect_retry`` are fed from.

    The hello exchange is pickle-free in both directions (JSON control
    frames, :meth:`~repro.mpi.transport.net.FramedSocket.send_json`):
    the pickled framing only starts after the master has verified the
    token and acknowledged, so an unauthenticated peer never gets to
    feed either side a pickle.
    """
    def attempt() -> socket.socket:
        counters["attempts"] += 1
        if netstate is not None:
            netstate.on_connect_attempt(purpose)
        return socket.create_connection(addr, timeout=_HELLO_TIMEOUT)

    def on_retry(_attempt: int, _exc: BaseException) -> None:
        counters["retries"] += 1

    sock = policy.run(attempt, retry_on=(OSError,), on_retry=on_retry)
    fs = FramedSocket(sock)
    fs.send_json({"kind": "hello", "purpose": purpose, "rank": rank,
                  "token": token, "generation": generation,
                  "attempts": counters["attempts"],
                  "retries": counters["retries"]})
    try:
        reply = fs.recv_json(timeout=_HELLO_TIMEOUT)
    except (LinkClosed, LinkTimeout):
        reply = None
    if not (isinstance(reply, dict) and reply.get("kind") == "ok"):
        fs.close()
        raise CommunicatorError(
            f"socket handshake rejected for rank {rank} ({purpose})"
        )
    return fs


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _SockChannel:
    """Worker-side RPC client over the ctl link.

    Single caller (the rank's main thread), so requests never
    interleave; out-of-band abort/revoke pushes arriving while a reply
    is awaited are applied and skipped.  After an injected partition
    the control link is as unreachable as the data link: calls raise
    :class:`~repro.errors.RankKilledError`, which the rank-program
    harness reports as an injected death.
    """

    def __init__(self, fs: FramedSocket, netstate) -> None:
        self._fs = fs
        self._net = netstate
        self.state = None  # the WorkerContext, set by run_worker

    def _check_dark(self) -> None:
        if self._net is not None and self._net.dark:
            raise RankKilledError(
                "injected network partition severed the control link"
            )

    def call(self, method: str, *args) -> Any:
        self._check_dark()
        skeleton, arrays = split_arrays(args)
        views, descrs = prepare_arrays(arrays)
        try:
            self._fs.send(("rpc", method, skeleton), descrs, views)
        except LinkClosed as exc:
            raise WorldAbortedError(
                f"SPMD master is gone ({method} RPC failed: {exc})"
            ) from None
        while True:
            try:
                header, arrays = self._fs.recv(None)
            except LinkClosed:
                self._check_dark()
                raise WorldAbortedError(
                    f"SPMD master is gone (no reply to {method})"
                ) from None
            if header[0] == "oob":
                self.state.apply_oob(header)
                continue
            break
        if header[0] == "err":
            raise decode_exception(header[1])
        _, skeleton = header
        return join_arrays(skeleton, arrays)

    def drain_oob(self) -> None:
        """Apply any queued abort/revoke pushes without blocking."""
        try:
            while self._fs.poll(0):
                header, _ = self._fs.recv(timeout=1.0)
                if header[0] == "oob":
                    self.state.apply_oob(header)
        except (LinkClosed, LinkTimeout):  # pragma: no cover - master gone
            pass

    def close(self) -> None:
        self._fs.close()


class _SockPump:
    """Owns the worker's data link: a daemon thread draining a queue.

    Mirrors the procs send pump (buffered-send semantics, completion
    tokens, single-writer data path) and adds the network robustness:
    every frame passes through the injected-fault engine, a reset
    closes-with-RST then reconnects under the retry policy and
    retransmits, a partition drops everything after shipping its
    fault record, and real send failures get one reconnect-and-resend
    before the pump declares the path broken.
    """

    def __init__(self, fs: FramedSocket, addr, token: str, rank: int,
                 policy: RetryPolicy, netstate, counters: dict) -> None:
        self._fs = fs
        self._addr = addr
        self._token = token
        self._rank = rank
        self._policy = policy
        self._net = netstate
        self._counters = counters
        self._generation = 1
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self.sent = 0  # deliveries accepted; shipped with the lifecycle RPC
        self.failure: BaseException | None = None
        self._thread = threading.Thread(
            target=self._run, daemon=True, name="spmd-sock-pump"
        )
        self._thread.start()

    def enqueue(self, comm_id: int, dest_world: int, source: int, tag: int,
                env: Envelope) -> threading.Event:
        if self.failure is not None:
            raise CommunicatorError(
                f"socket send path failed: {self.failure}"
            )
        skeleton, arrays = split_arrays(env.payload)
        views, descrs = prepare_arrays(arrays)
        meta = (env.send_time, env.moved, env.nbytes, env.seq, env.checksum,
                encode_origin(env.origin))
        header = ("put", comm_id, dest_world, source, tag, meta, skeleton)
        token = SendToken()
        self._queue.put((header, descrs, views, token))
        self.sent += 1
        return token

    def enqueue_raw(self, header: tuple) -> None:
        """Stage a bookkeeping frame (heartbeat, ping) on the pump."""
        if self.failure is not None:
            return  # telemetry is best-effort; the rank path reports it
        self._queue.put((header, (), (), None))

    def flush(self, timeout: float | None = None) -> None:
        """Block until every frame staged so far shipped or failed.

        Run before the lifecycle report so ``failure`` is
        authoritative: without it a rank could finalize while the pump
        thread is still discovering that its frames will never ship.
        """
        token = SendToken()
        self._queue.put((None, (), (), token))
        token.wait(timeout)

    def _run(self) -> None:
        while True:
            header, descrs, views, token = self._queue.get()
            err = self.failure
            if err is None and header is not None:
                try:
                    self._ship(header, descrs, views)
                except BaseException as exc:  # noqa: BLE001 - report once
                    self.failure = err = exc
            if token is not None:
                # A frame that never shipped must not report a clean
                # stage: the waiter re-raises the error instead.
                token.error = err
                token.set()

    def _ship(self, header, descrs, views) -> None:
        net = self._net
        if net is None:
            self._send_resilient(header, descrs, views)
            return
        if net.dark:
            return  # partitioned: frames vanish into the void
        nbytes = sum(descr_nbytes(d) for d in descrs)
        action = net.on_frame(nbytes, countable=(header[0] == "put"))
        events = net.drain_events()
        if action == "dark":
            # Injection is simulated, so the victim may tell the master
            # *why* it is about to go silent (the master could never
            # learn this over a real partition) — then never speak
            # again.  The master still waits out the liveness deadline
            # before declaring the rank dead, so detection timing stays
            # honest; only the root-cause attribution is deus ex.
            try:
                self._fs.send(("netfault", events))
            except LinkClosed:  # pragma: no cover - already gone
                pass
            self._fs.close()
            return
        if action == "reset":
            # The "network" killed the data link mid-stream: abort with
            # an RST, reconnect under the retry policy, retransmit.
            self._fs.close(reset=True)
            self._reconnect()
            if events:
                self._fs.send(("netfault", events))
            self._send_resilient(header, descrs, views)
            return
        if events:
            self._fs.send(("netfault", events))
        self._send_resilient(header, descrs, views)

    def _send_resilient(self, header, descrs, views) -> None:
        try:
            self._fs.send(header, descrs, views)
        except LinkClosed:
            # Real transient failure: one reconnect under the policy,
            # then retransmit.  A second failure surfaces to the rank.
            self._reconnect()
            self._fs.send(header, descrs, views)

    def _reconnect(self) -> None:
        self._generation += 1
        self._fs = _connect_framed(
            self._addr, "data", self._rank, self._token, self._policy,
            self._net, self._counters, generation=self._generation,
        )

    def close(self) -> None:
        self._fs.close()


class _Pinger:
    """Always-on liveness pings on the data path.

    Unlike the telemetry :class:`~repro.mpi.transport.worldproxy.
    Heartbeat` (which only runs when a recorder/hub is attached), the
    socket transport needs periodic traffic unconditionally — silence
    is its failure detector.
    """

    def __init__(self, pump: _SockPump, rank: int, interval: float) -> None:
        self._pump = pump
        self._rank = rank
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, daemon=True, name=f"spmd-sock-ping-{rank}"
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            self._pump.enqueue_raw(("ping", self._rank, time.time()))

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


def _run_sock_worker(cfg: WorkerConfig, rank: int, fn, args, kwargs,
                     ctl: FramedSocket, data: FramedSocket, addr,
                     token: str, netstate, knobs: dict,
                     counters: dict) -> None:
    """Worker core shared by the forked and spawned entry points."""
    channel = _SockChannel(ctl, netstate)
    pump = _SockPump(data, addr, token, rank, knobs["connect_policy"],
                     netstate, counters)
    pinger = _Pinger(pump, rank, knobs["heartbeat_interval"])
    try:
        run_worker(cfg, rank, fn, args, kwargs, channel, pump)
    finally:
        pinger.stop()
        # The lifecycle RPC only returns after the master's drain
        # barrier confirmed every delivery, so closing here loses
        # nothing; a partitioned worker closed its links already.
        channel.close()
        pump.close()


def _worker_main(addr, token: str, rank: int, fn, args, kwargs,
                 cfg: WorkerConfig, netrules, knobs: dict,
                 listener=None) -> None:
    """Entry point of a forked socket worker (default launch mode)."""
    if listener is not None:
        # fd hygiene: drop the forked copy of the master's rendezvous
        # listener so the port is released the moment the master
        # closes its own.
        try:
            listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
    netstate = NetworkFaultState(netrules, rank) if netrules else None
    if netstate is not None and not netstate.active:
        netstate = None
    counters = {"attempts": 0, "retries": 0}
    policy = knobs["connect_policy"]
    try:
        ctl = _connect_framed(addr, "ctl", rank, token, policy, netstate,
                              counters)
        data = _connect_framed(addr, "data", rank, token, policy, netstate,
                               counters)
    except BaseException:  # noqa: BLE001 - the master's connect grace
        return  # surfaces this as "never connected"
    _run_sock_worker(cfg, rank, fn, args, kwargs, ctl, data, addr, token,
                     netstate, knobs, counters)


# ----------------------------------------------------------------------
# Master side
# ----------------------------------------------------------------------
class _SockLink:
    """Master-side state of one worker's pair of connections."""

    def __init__(self, rank: int) -> None:
        self.rank = rank
        self.ctl: FramedSocket | None = None
        self.data: FramedSocket | None = None
        self.data_gen = 0
        self.cond = threading.Condition()  # guards ctl/data attachment
        self.send_lock = threading.Lock()  # serializes ctl replies + oob
        self.put_cond = threading.Condition()
        self.puts_received = 0
        self.last_rx = time.monotonic()
        self.partitioned = False
        self.finished = False  # lifecycle RPC fully processed
        self.proc = None  # Process (fork) or Popen (spawn)
        # Set when a replacement superseded this link: the dead
        # incarnation's teardown (EOF, liveness expiry) must not fail
        # the rank its replacement now occupies.
        self.replaced = False

    def attach(self, purpose: str, fs: FramedSocket) -> None:
        with self.cond:
            if purpose == "ctl":
                self.ctl = fs
            else:
                self.data = fs
                self.data_gen += 1
                self.last_rx = time.monotonic()
            self.cond.notify_all()

    def retire_data(self, gen: int) -> None:
        """Drop the data socket of generation ``gen`` (reset/EOF seen).

        A replacement attached concurrently has a newer generation and
        is left alone.
        """
        with self.cond:
            if self.data_gen == gen:
                self.data = None

    def wait_ready(self, deadline: float) -> bool:
        with self.cond:
            while self.ctl is None or self.data is None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self.cond.wait(min(remaining, 0.5))
            return True

    def close(self) -> None:
        for fs in (self.ctl, self.data):
            if fs is not None:
                fs.close()


class SocketTransport(WorldServerMixin, Transport):
    """Ranks as processes reached over hardened framed-TCP links."""

    name = "sockets"
    shared_world = False

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 hosts=None, connect_policy: RetryPolicy | None = None,
                 heartbeat_interval: float | None = None,
                 liveness_timeout: float | None = None,
                 connect_grace: float | None = None,
                 python: str | None = None) -> None:
        self.host = host
        self.port = int(port)
        self.hosts = list(hosts) if hosts else None
        self.connect_policy = connect_policy or DEFAULT_CONNECT_POLICY
        self.heartbeat_interval = (
            heartbeat_interval
            if heartbeat_interval is not None
            else _env_float(HEARTBEAT_ENV_VAR, DEFAULT_HEARTBEAT_INTERVAL)
        )
        self.liveness_timeout = (
            liveness_timeout
            if liveness_timeout is not None
            else _env_float(LIVENESS_ENV_VAR, DEFAULT_LIVENESS_TIMEOUT)
        )
        self.connect_grace = (
            connect_grace if connect_grace is not None
            else max(30.0, 2.0 * self.liveness_timeout)
        )
        self.python = python or sys.executable
        self.net_health: dict[int, dict] = {}
        self._comm_members: dict[int, list[int]] = {}
        self._members_lock = threading.Lock()
        self._values: list = []
        self._clocks: list = []
        self._errors: list = []
        self._shutdown = threading.Event()
        self._boot_blobs: dict[int, bytes] | None = None

    # -- transport interface --------------------------------------------
    def deliver(self, context, comm_id: int, dest_world: int, source: int,
                tag: int, envelope) -> None:
        # Master-side deliveries (none in normal operation) are local.
        context.mailbox(comm_id, dest_world).put(source, tag, envelope)

    def execute(self, context, fn, args: tuple, kwargs: dict):
        nprocs = context.world_size
        self._values = [None] * nprocs
        self._clocks = [None] * nprocs
        self._errors = [None] * nprocs
        self._shutdown = threading.Event()
        with self._members_lock:
            self._comm_members = {WORLD_COMM_ID: list(range(nprocs))}
        self.net_health = {
            r: {"connect_attempts": 0, "retries": 0, "reconnects": 0,
                "heartbeat_age": None, "disconnect": None, "faults": []}
            for r in range(nprocs)
        }
        # Postmortem bundles read the transport's health table off the
        # context (see repro.obs.postmortem, "network" section).
        context.net_health = self.net_health

        token = os.urandom(16).hex()
        listener = socket.create_server((self.host, self.port))
        addr = listener.getsockname()[:2]
        links = [_SockLink(r) for r in range(nprocs)]

        context.add_abort_hook(
            lambda reason: self._broadcast(links, ("oob", "abort", reason))
        )
        context.add_revoke_hook(
            lambda threshold, reason: self._broadcast(
                links, ("oob", "revoke", threshold, reason))
        )

        cfg = WorkerConfig(context)
        netrules = (
            tuple(context.faults.plan.network)
            if context.faults is not None else ()
        )
        knobs = {"connect_policy": self.connect_policy,
                 "heartbeat_interval": self.heartbeat_interval}

        # Workers are launched while the master is still single-threaded
        # (forking a multi-threaded process can deadlock children on
        # locks held at fork time); the listener is already bound, so
        # early connects queue in the accept backlog — and the connect
        # RetryPolicy rides out a full backlog — until the accept
        # thread starts right after.
        if self.hosts is None:
            self._fork_workers(links, addr, token, fn, args, kwargs, cfg,
                               netrules, knobs, listener)
        else:
            self._spawn_workers(links, addr, token, fn, args, kwargs, cfg,
                                netrules, knobs)

        accept_thread = threading.Thread(
            target=self._accept_loop, args=(listener, links, token, context),
            daemon=True, name="spmd-sock-accept",
        )
        accept_thread.start()

        threads: list = []
        procs: list = []
        spawn_lock = threading.Lock()

        def serve_link(link: _SockLink) -> None:
            for target, label in ((self._serve_ctl, "ctl"),
                                  (self._serve_data, "data")):
                thread = threading.Thread(
                    target=target, args=(link, context), daemon=True,
                    name=f"spmd-sock-{label}-{link.rank}",
                )
                thread.start()
                with spawn_lock:
                    threads.append(thread)

        def respawn(rank: int) -> None:
            # Elastic replacement: retire the dead incarnation's link,
            # forget its error (the replacement's lifecycle overwrites
            # the slot), and relaunch the worker through the same
            # rendezvous the original used — the accept loop indexes
            # ``links`` at hello time, so the replacement's connections
            # attach to the fresh link.
            old = links[rank]
            old.replaced = True
            old.close()  # unblocks the old serve threads via LinkClosed
            self._errors[rank] = None
            new_link = _SockLink(rank)
            links[rank] = new_link
            rcfg = WorkerConfig(context)
            rcfg.respawn_info = {
                "incarnation": context.rank_incarnations[rank],
                "crash_fired": (
                    context.faults.crash_fires(rank)
                    if context.faults is not None else None
                ),
                "revoked_below": context.revoked_below,
                "revoke_reason": context.revoke_reason,
            }
            incarnation = rcfg.respawn_info["incarnation"]
            self.net_health[rank]["reconnects"] += 1
            if self.hosts is None:
                mp_ctx = multiprocessing.get_context("fork")
                proc = mp_ctx.Process(
                    target=_worker_main,
                    args=(addr, token, rank, fn, args, kwargs, rcfg,
                          netrules, knobs, listener),
                    name=f"spmd-sock-rank-{rank}-i{incarnation}",
                    daemon=True,
                )
                proc.start()
            else:
                if self._boot_blobs is not None:
                    self._boot_blobs[rank] = self._boot_blob(
                        rank, fn, args, kwargs, rcfg, netrules, knobs)
                env = dict(os.environ)
                env[TOKEN_ENV_VAR] = token
                proc = subprocess.Popen(
                    [self.python, "-m", "repro.mpi.transport.sockworker",
                     "--addr", f"{addr[0]}:{addr[1]}",
                     "--rank", str(rank)],
                    stdin=subprocess.DEVNULL,
                    env=env,
                )
            new_link.proc = proc
            with spawn_lock:
                procs.append(proc)

            def boot() -> None:
                ok = new_link.wait_ready(
                    time.monotonic() + self.connect_grace)
                if ok:
                    serve_link(new_link)
                else:
                    self._declare_lost(
                        new_link, context,
                        f"replacement never connected within "
                        f"{self.connect_grace:.0f}s",
                    )

            threading.Thread(
                target=boot, daemon=True,
                name=f"spmd-sock-boot-{rank}-i{incarnation}",
            ).start()

        # The initial incarnations are collected before the respawner
        # is registered, so every process the run ever launched —
        # original or replacement — lands in ``procs`` exactly once.
        procs.extend(link.proc for link in links if link.proc is not None)
        context.set_respawner(respawn)

        # Rendezvous: every worker must raise both links within the
        # grace window (injected connect refusals burn into it).
        deadline = time.monotonic() + self.connect_grace
        for link in list(links):
            if not link.wait_ready(deadline):
                self._declare_lost(
                    link, context,
                    f"never connected within {self.connect_grace:.0f}s",
                )
                continue
            serve_link(link)

        # Join by index: a replace rendezvous may append replacement
        # workers (and their serve threads) while earlier ones are
        # still being joined; every incarnation must be reaped.
        i = 0
        while True:
            with spawn_lock:
                if i >= len(procs):
                    break
                proc = procs[i]
            i += 1
            if hasattr(proc, "join"):
                proc.join()
            else:  # Popen
                proc.wait()
        self._shutdown.set()
        i = 0
        while True:
            with spawn_lock:
                if i >= len(threads):
                    break
                thread = threads[i]
            i += 1
            thread.join(timeout=10.0)
        accept_thread.join(timeout=5.0)
        try:
            listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        now = time.monotonic()
        for link in links:
            self.net_health[link.rank]["heartbeat_age"] = round(
                now - link.last_rx, 3)
            link.close()
        self._boot_blobs = None
        return self._values, self._clocks, self._errors

    # -- worker launch ---------------------------------------------------
    def _fork_workers(self, links, addr, token, fn, args, kwargs, cfg,
                      netrules, knobs, listener) -> None:
        try:
            mp_ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX hosts
            raise CommunicatorError(
                "backend='sockets' forks its workers by default (POSIX "
                "only); pass hosts=[...] to spawn them instead"
            ) from None
        for link in links:
            # The fork start method passes args by reference, so the
            # child gets the listener object to close its inherited fd
            # copy — otherwise every worker would keep the rendezvous
            # port bound after the master closes it.
            proc = mp_ctx.Process(
                target=_worker_main,
                args=(addr, token, link.rank, fn, args, kwargs, cfg,
                      netrules, knobs, listener),
                name=f"spmd-sock-rank-{link.rank}",
                daemon=True,
            )
            proc.start()
            link.proc = proc

    def _spawn_workers(self, links, addr, token, fn, args, kwargs, cfg,
                       netrules, knobs) -> None:
        self._boot_blobs = {
            link.rank: self._boot_blob(link.rank, fn, args, kwargs, cfg,
                                       netrules, knobs)
            for link in links
        }
        host, port = addr
        env = dict(os.environ)
        env[TOKEN_ENV_VAR] = token
        for link in links:
            # Single-host loopback launch; the hosts entries label the
            # layout (and are recorded in net_health).  Reaching a real
            # remote host means running this exact command there — the
            # handshake only needs TCP to (host, port) plus the token
            # in the environment (argv would leak it via ps/procfs).
            label = self.hosts[link.rank % len(self.hosts)]
            self.net_health[link.rank]["host"] = label
            link.proc = subprocess.Popen(
                [self.python, "-m", "repro.mpi.transport.sockworker",
                 "--addr", f"{host}:{port}", "--rank", str(link.rank)],
                stdin=subprocess.DEVNULL,
                env=env,
            )

    @staticmethod
    def _demote_main(fn):
        """Re-point a ``__main__``-defined program at its importable home.

        ``python -m some.module`` runs the module *as* ``__main__``, so
        a program function defined there would pickle by reference as
        ``__main__.<name>`` — unresolvable inside the spawned worker,
        whose ``__main__`` is the sockworker entry point.  When
        ``__main__`` has an import spec (the ``-m`` case), the same
        function exists under its real module name; ship that one.
        """
        if getattr(fn, "__module__", None) != "__main__":
            return fn
        spec = getattr(sys.modules.get("__main__"), "__spec__", None)
        name = getattr(spec, "name", None)
        if name:
            import importlib

            try:
                twin = getattr(importlib.import_module(name),
                               fn.__qualname__, None)
            except Exception:
                twin = None
            if callable(twin):
                return twin
        raise CommunicatorError(
            f"hosts= workers cannot import {fn.__qualname__!r} from "
            f"__main__; move the program function into an importable "
            f"module"
        )

    def _boot_blob(self, rank: int, fn, args, kwargs, cfg, netrules,
                   knobs) -> bytes:
        fn = self._demote_main(fn)
        state = {slot: getattr(cfg, slot) for slot in WorkerConfig.__slots__}
        # Observability objects are worker-local copies; ones that
        # cannot cross the spawn boundary degrade to None (the
        # master-side halves — mailbox protocol, postmortems — still
        # work, the worker just ships no shards for them).
        for opt in ("comm_trace", "tracer", "recorder"):
            try:
                pickle.dumps(state[opt], protocol=4)
            except Exception:
                state[opt] = None
        try:
            return pickle.dumps(
                (fn, args, kwargs, state, netrules, knobs), protocol=4
            )
        except Exception as exc:
            raise CommunicatorError(
                f"hosts= workers boot over the wire: the program, its "
                f"arguments, and the fault/resilience configuration must "
                f"be picklable ({type(exc).__name__}: {exc}); use a "
                f"module-level program function"
            ) from None

    # -- rendezvous/accept loop ------------------------------------------
    def _accept_loop(self, listener, links, token: str, context) -> None:
        listener.settimeout(0.2)
        while not self._shutdown.is_set():
            try:
                sock, _peer = listener.accept()
            except socket.timeout:
                continue
            except OSError:  # pragma: no cover - listener closed
                return
            fs = FramedSocket(sock)
            # The hello is a bounded JSON frame — nothing from this
            # connection is unpickled (or even trusted as a tuple)
            # until the token has passed a constant-time comparison.
            # A stray or hostile client gets its socket closed, never
            # a pickle.loads of its bytes.
            try:
                hello = fs.recv_json(timeout=_HELLO_TIMEOUT)
            except (LinkClosed, LinkTimeout):
                fs.close()
                continue
            peer_token = hello.get("token")
            if not (hello.get("kind") == "hello"
                    and isinstance(peer_token, str)
                    and hmac.compare_digest(peer_token, token)):
                fs.close()  # wrong token / stray connection: reject
                continue
            purpose = hello.get("purpose")
            rank = hello.get("rank")
            if not (isinstance(rank, int) and 0 <= rank < len(links)
                    and purpose in ("ctl", "data")):
                fs.close()
                continue
            info = {key: hello.get(key, 0)
                    for key in ("generation", "attempts", "retries")}
            link = links[rank]
            self._note_hello(context, link, purpose, info)
            try:
                fs.send_json({"kind": "ok", "world": len(links)})
                if purpose == "ctl" and self._boot_blobs is not None:
                    fs.send(("boot", self._boot_blobs[rank]))
            except LinkClosed:
                fs.close()
                continue
            link.attach(purpose, fs)

    def _note_hello(self, context, link: _SockLink, purpose: str,
                    info: dict) -> None:
        """Fold a hello's connect bookkeeping into health + comm trace."""
        h = self.net_health[link.rank]
        h["connect_attempts"] = max(h["connect_attempts"],
                                    int(info.get("attempts", 0)))
        new_retries = int(info.get("retries", 0)) - h["retries"]
        if new_retries > 0:
            h["retries"] += new_retries
            trace = context.comm_trace
            if trace is not None:
                for _ in range(new_retries):
                    trace.record_connect_retry(link.rank)
        if purpose == "data" and int(info.get("generation", 1)) > 1:
            h["reconnects"] += 1
        recorder = getattr(context, "recorder", None)
        if recorder is not None and int(info.get("generation", 1)) > 1:
            # Safe to write master-side: reconnect bookkeeping is rare
            # and the recorder merges by max sequence either way; the
            # authoritative per-rank op stream still comes from the
            # worker's shipped deltas.
            h.setdefault("reconnect_log", []).append(round(time.time(), 3))

    # -- out-of-band push ------------------------------------------------
    @staticmethod
    def _broadcast(links, header: tuple) -> None:
        for link in links:
            fs = link.ctl
            if fs is None:
                continue
            with link.send_lock:
                try:
                    fs.send(header)
                except LinkClosed:
                    pass  # worker already gone

    # -- master service threads -----------------------------------------
    def _reply(self, link: _SockLink, value) -> None:
        skeleton, arrays = split_arrays(value)
        views, descrs = prepare_arrays(arrays)
        with link.send_lock:
            link.ctl.send(("ok", skeleton), descrs, views)

    def _reply_err(self, link: _SockLink, exc: BaseException) -> None:
        with link.send_lock:
            link.ctl.send(("err", encode_exception(exc)))

    def _serve_ctl(self, link: _SockLink, context) -> None:
        """Serve one worker's blocking RPCs until it disconnects."""
        fs = link.ctl
        while True:
            try:
                header, arrays = fs.recv(None)
            except LinkClosed:
                return
            if header[0] != "rpc":  # pragma: no cover - protocol noise
                continue
            _, method, skeleton = header
            request = join_arrays(skeleton, arrays)
            try:
                value = self._dispatch(context, link, method, request)
            except BaseException as exc:  # noqa: BLE001 - RPC error path
                try:
                    self._reply_err(link, exc)
                except LinkClosed:
                    return
                continue
            try:
                self._reply(link, value)
            except LinkClosed:
                return
            if method in ("finalize", "rank_killed", "rank_error"):
                link.finished = True
                return

    def _serve_data(self, link: _SockLink, context) -> None:
        """Drain one worker's data frames; silence is its death certificate.

        The recv loop wakes every ``_DATA_TICK`` seconds to check the
        liveness deadline, so a partitioned or frozen worker surfaces
        as a failed rank within ``liveness_timeout`` — never a hang.
        An EOF (reset or process death) retires the socket but starts
        no new clock: either a reconnect replaces it or the liveness
        deadline (running since the last received frame) expires.
        """
        while True:
            if link.finished or link.replaced or self._shutdown.is_set():
                return
            with link.cond:
                fs = link.data
                gen = link.data_gen
            if fs is None:
                if self._liveness_expired(link):
                    self._declare_lost(link, context,
                                       "data link lost and not re-established")
                    return
                with link.cond:
                    link.cond.wait(_DATA_TICK)
                continue
            try:
                header, arrays = fs.recv(timeout=_DATA_TICK)
            except LinkTimeout:
                if self._liveness_expired(link):
                    self._declare_lost(
                        link, context,
                        f"liveness deadline exceeded "
                        f"({self.liveness_timeout:.1f}s of silence)",
                    )
                    return
                continue
            except LinkClosed:
                link.retire_data(gen)
                continue
            link.last_rx = time.monotonic()
            kind = header[0]
            if kind == "put":
                _, comm_id, dest_world, source, tag, meta, skeleton = header
                payload = join_arrays(skeleton, arrays)
                send_time, moved, nbytes, seq, checksum, origin = meta
                env = Envelope(payload=payload, send_time=send_time,
                               moved=moved, nbytes=nbytes,
                               origin=decode_origin(origin), seq=seq,
                               checksum=checksum)
                context.mailbox(comm_id, dest_world).put(source, tag, env)
                with link.put_cond:
                    link.puts_received += 1
                    link.put_cond.notify_all()
            elif kind == "hb":
                self._ingest_heartbeat(context, header[1], header[2],
                                       header[3])
            elif kind == "netfault":
                self._absorb_netfault(context, link, header[1])
            # "ping" frames carry nothing; stamping last_rx was the point.

    def _liveness_expired(self, link: _SockLink) -> bool:
        return time.monotonic() - link.last_rx > self.liveness_timeout

    def _absorb_netfault(self, context, link: _SockLink, events) -> None:
        """Fold a worker's injected-network-fault records into the run."""
        events = [tuple(e) for e in events]
        injector = context.faults
        if injector is not None and events:
            injector.absorb(events, {})
        h = self.net_health[link.rank]
        for ev in events:
            kind = ev[2]
            h["faults"].append(kind)
            if kind == "net:partition":
                link.partitioned = True

    def _declare_lost(self, link: _SockLink, context, why: str) -> None:
        """Record a worker's link death and fail the rank (once)."""
        rank = link.rank
        age = time.monotonic() - link.last_rx
        h = self.net_health[rank]
        h["disconnect"] = why
        h["heartbeat_age"] = round(age, 3)
        if link.replaced:
            # The rank status now describes the replacement; this link
            # belongs to an incarnation already recovered from.
            return
        if context.rank_status(rank) != "running":
            return
        if link.partitioned and context.faults is not None:
            err: CommunicatorError = RankKilledError(
                f"injected network partition: rank {rank} went silent "
                f"({why}; last frame {age:.2f}s ago)"
            )
        else:
            err = RankFailedError(
                f"rank {rank} socket worker lost: {why} "
                f"(last frame {age:.2f}s ago)"
            )
        if self._errors[rank] is None:
            self._errors[rank] = err
        recorder = getattr(context, "recorder", None)
        if recorder is not None:
            # The worker can ship no more deltas (its link is gone), so
            # a master-side record cannot collide with absorb_events.
            try:
                recorder.record(rank, "fault", name="net:lost", reason=why)
            except Exception:  # pragma: no cover - telemetry best-effort
                pass
        context.mark_failed(rank)
