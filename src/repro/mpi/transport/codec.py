"""Shared wire codec for the cross-process transports.

Every backend that moves messages between address spaces — the
shared-memory process transport (:mod:`repro.mpi.transport.procs`) and
the TCP socket transport (:mod:`repro.mpi.transport.sockets`) — speaks
the same two-layer encoding:

* The **array codec** (:func:`split_arrays` / :func:`join_arrays` /
  :func:`prepare_arrays` / :func:`materialize_array`) lifts ndarrays
  out of arbitrarily nested tuples/lists/dicts, replacing each with a
  positional :class:`ArrayRef`.  Only the array-free *skeleton* is
  pickled; raw array bytes travel out-of-band (a shared-memory ring, a
  socket frame body) described by compact ``(dtype, shape, order,
  writeable)`` descriptors.  Array *data* is never pickled, and moved
  (frozen) payloads rebuild read-only, preserving the zero-copy move
  contract across the process boundary.

* The **envelope codec** (:func:`encode_envelope` /
  :func:`decode_envelope` and the exception/origin helpers) flattens
  the runtime's message metadata — send time, move flag, sequence
  number, checksum, and the sanitizer's move-origin call site — into
  plain picklable tuples that survive any wire.

The codec is pure data-in/data-out: it owns no sockets, pipes, or
rings, so both transports (and their tests) can round-trip payloads
bitwise without standing up a world.
"""

from __future__ import annotations

import pickle
from typing import Any

import numpy as np

from ...errors import CommunicatorError
from ..context import Envelope

__all__ = [
    "ArrayRef",
    "split_arrays",
    "join_arrays",
    "prepare_arrays",
    "materialize_array",
    "descr_nbytes",
    "encode_exception",
    "decode_exception",
    "encode_origin",
    "decode_origin",
    "encode_envelope",
    "decode_envelope",
]


class ArrayRef:
    """Positional placeholder for an ndarray lifted out of a payload."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __reduce__(self):
        return (ArrayRef, (self.index,))


def _ring_worthy(a: np.ndarray) -> bool:
    # Object and structured dtypes cannot be moved as raw bytes; they
    # stay embedded in the (pickled) skeleton.
    return not a.dtype.hasobject and a.dtype.fields is None


def split_arrays(obj: Any) -> tuple[Any, list[np.ndarray]]:
    """Replace every ndarray in ``obj`` with an :class:`ArrayRef`.

    Recurses through tuples, lists, and dicts (the containers message
    payloads are built from); anything else passes through untouched
    and will be pickled with the skeleton.  Returns ``(skeleton,
    arrays)`` with arrays in reference order.
    """
    arrays: list[np.ndarray] = []

    def enc(x):
        if isinstance(x, np.ndarray) and _ring_worthy(x):
            arrays.append(x)
            return ArrayRef(len(arrays) - 1)
        t = type(x)
        if t is tuple:
            return tuple(enc(i) for i in x)
        if t is list:
            return [enc(i) for i in x]
        if t is dict:
            return {k: enc(v) for k, v in x.items()}
        return x

    return enc(obj), arrays


def join_arrays(skeleton: Any, arrays: list) -> Any:
    """Inverse of :func:`split_arrays`: resolve every :class:`ArrayRef`."""

    def dec(x):
        if isinstance(x, ArrayRef):
            return arrays[x.index]
        t = type(x)
        if t is tuple:
            return tuple(dec(i) for i in x)
        if t is list:
            return [dec(i) for i in x]
        if t is dict:
            return {k: dec(v) for k, v in x.items()}
        return x

    return dec(skeleton)


def prepare_arrays(arrays: list[np.ndarray]) -> tuple[list, list[tuple]]:
    """Byte views + wire descriptors for a batch of lifted arrays.

    Returns ``(views, descrs)`` where each view is a flat ``uint8``
    view over the array's (contiguous) data, and each descriptor is
    ``(dtype_str, shape, order, writeable)`` — everything the receiver
    needs to rebuild the array from raw bytes.  Non-contiguous arrays
    are compacted first (the runtime's payloads are contiguous C- or
    F-order in practice, so this copy almost never fires).
    """
    views = []
    descrs = []
    for a in arrays:
        order = "F" if (a.flags.f_contiguous and not a.flags.c_contiguous) else "C"
        if not (a.flags.c_contiguous or a.flags.f_contiguous):
            a = np.ascontiguousarray(a)
            order = "C"
        views.append(a.reshape(-1, order="A").view(np.uint8))
        descrs.append(
            (a.dtype.str, a.shape, order, bool(a.flags.writeable))
        )
    return views, descrs


def materialize_array(descr: tuple, data) -> np.ndarray:
    """Rebuild one array from its wire descriptor and raw bytes.

    The result is backed by ``data`` directly (one copy total, out of
    the wire); payloads that were *moved* (frozen) on the sender side
    arrive read-only, preserving move semantics across processes.
    """
    dtype_str, shape, order, writeable = descr
    arr = np.frombuffer(data, dtype=np.dtype(dtype_str)).reshape(
        shape, order=order
    )
    if not writeable:
        arr.flags.writeable = False
    return arr


def descr_nbytes(descr: tuple) -> int:
    """Raw byte length of the array a wire descriptor describes."""
    return int(
        np.dtype(descr[0]).itemsize * int(np.prod(descr[1], dtype=np.int64))
    )


# ----------------------------------------------------------------------
# Envelope metadata codecs
# ----------------------------------------------------------------------
def encode_exception(exc: BaseException) -> tuple:
    """``(pickle-or-None, type name, message)`` — survives unpicklables."""
    try:
        blob = pickle.dumps(exc)
    except Exception:
        blob = None
    return (blob, type(exc).__name__, str(exc))


def decode_exception(enc: tuple) -> BaseException:
    blob, type_name, message = enc
    if blob is not None:
        try:
            return pickle.loads(blob)
        except Exception:
            pass
    # Fallback: rebuild by class name from the library's error taxonomy
    # so except-clauses still match even when the payload (a diagnostic
    # with live object references) could not cross the boundary.
    from ... import errors as errors_mod

    cls = getattr(errors_mod, type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        cls = CommunicatorError
    return cls(message)


def encode_origin(origin) -> tuple | None:
    """Flatten a MoveOrigin to plain strings/ints for the wire.

    The provenance of a moved (or copied) send — sender rank, operation,
    and the originating call site — so receive-side move registration
    and finalize-time leak reports name the *real* send site even when
    the sender's address space is a different process.
    """
    if origin is None:
        return None
    site = origin.site
    return (
        origin.rank, origin.op,
        None if site is None else (site.file, site.line, site.function),
    )


def decode_origin(wire: tuple | None):
    if wire is None:
        return None
    from ...sanitize.diagnostics import CallSite
    from ...sanitize.sanitizer import MoveOrigin

    rank, op, site = wire
    return MoveOrigin(
        rank=rank, op=op, site=None if site is None else CallSite(*site)
    )


def encode_envelope(env: Envelope | None) -> tuple | None:
    """Envelope as wire tuple; origin travels as a flattened call site."""
    if env is None:
        return None
    return (env.payload, env.send_time, env.moved, env.nbytes, env.seq,
            env.checksum, encode_origin(env.origin))


def decode_envelope(wire: tuple | None) -> Envelope | None:
    if wire is None:
        return None
    payload, send_time, moved, nbytes, seq, checksum, origin = wire
    return Envelope(payload=payload, send_time=send_time, moved=moved,
                    nbytes=nbytes, origin=decode_origin(origin), seq=seq,
                    checksum=checksum)
