"""Shared-memory SPSC ring buffers and the pickle-free ndarray codec.

The process transport moves ndarray payloads between a worker process
and the master through :class:`ShmRing` — a bounded byte ring over an
anonymous shared ``mmap`` created *before* the fork, so both sides
address the same physical pages with no filesystem object to leak and
no cleanup to race (the mapping dies with its last process).  Only raw
array bytes travel through the ring; everything else about a message —
the container skeleton, dtype/shape/order descriptors, envelope
metadata — rides the control pipe as small picklable tuples.  Array
*data* is never pickled.

The codec (:func:`split_arrays` / :func:`join_arrays` /
:func:`prepare_arrays` / :func:`materialize_array`) lifts ndarrays out
of arbitrarily nested tuples/lists/dicts, replacing each with a
positional :class:`ArrayRef`; the receiver reconstructs views over the
ring bytes with the original dtype, shape, memory order, and
writability (moved payloads arrive read-only, preserving the zero-copy
move contract across the process boundary).
"""

from __future__ import annotations

import mmap
import struct
import time
from typing import Any

import numpy as np

from ...errors import CommunicatorError

__all__ = [
    "ShmRing",
    "ArrayRef",
    "split_arrays",
    "join_arrays",
    "prepare_arrays",
    "materialize_array",
    "recv_arrays",
    "send_arrays",
    "DEFAULT_RING_BYTES",
]

#: Default per-direction ring capacity.  Payloads larger than the ring
#: stream through it in chunks, so this bounds memory, not message size.
DEFAULT_RING_BYTES = 8 * 1024 * 1024

# Spin-wait backoff for a full (writer) / empty (reader) ring: start at
# 1 us, double to a 0.5 ms cap — cheap enough to stay responsive, long
# enough to get off the CPU when the peer is busy.
_BACKOFF_START = 1e-6
_BACKOFF_CAP = 5e-4

_U64 = struct.Struct("<Q")
_MASK = (1 << 64) - 1


class ShmRing:
    """Single-producer single-consumer byte ring over shared anonymous mmap.

    The first 16 bytes are two monotonically increasing 64-bit cursors:
    ``head`` (bytes consumed, written only by the reader) and ``tail``
    (bytes produced, written only by the writer).  Each side mutates
    only its own cursor, so no lock is needed; 8-byte aligned loads and
    stores are atomic on every platform this runtime targets.  Create
    the ring *before* forking — both processes then share the mapping.
    """

    _CTRL = 16
    _HEAD = 0
    _TAIL = 8

    def __init__(self, capacity: int = DEFAULT_RING_BYTES) -> None:
        if capacity <= 0:
            raise CommunicatorError("ring capacity must be positive")
        self.capacity = int(capacity)
        self._mm = mmap.mmap(-1, self._CTRL + self.capacity)
        self._buf = memoryview(self._mm)[self._CTRL:]

    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._mm, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._mm, offset, value & _MASK)

    def _wait(self, deadline: float, backoff: float, what: str) -> float:
        if time.monotonic() > deadline:
            raise CommunicatorError(
                f"shared-memory ring stalled while {what} — peer process "
                "is not draining (likely dead or deadlocked)"
            )
        time.sleep(backoff)
        return min(backoff * 2, _BACKOFF_CAP)

    def write(self, data, *, timeout: float = 600.0) -> None:
        """Stream ``data`` (a 1-D byte view) into the ring, blocking on space.

        Publishes the tail cursor after every chunk, so a payload larger
        than the ring flows through it while the reader drains
        concurrently.
        """
        view = memoryview(data).cast("B")
        n = len(view)
        written = 0
        tail = self._load(self._TAIL)
        deadline = time.monotonic() + timeout
        backoff = _BACKOFF_START
        while written < n:
            head = self._load(self._HEAD)
            free = self.capacity - (tail - head)
            if free == 0:
                backoff = self._wait(deadline, backoff, "writing")
                continue
            backoff = _BACKOFF_START
            pos = tail % self.capacity
            chunk = min(n - written, free, self.capacity - pos)
            self._buf[pos:pos + chunk] = view[written:written + chunk]
            written += chunk
            tail += chunk
            self._store(self._TAIL, tail)

    def read_into(self, out, *, timeout: float = 600.0) -> None:
        """Fill ``out`` (a writable 1-D byte view) from the ring, blocking."""
        view = memoryview(out).cast("B")
        n = len(view)
        got = 0
        head = self._load(self._HEAD)
        deadline = time.monotonic() + timeout
        backoff = _BACKOFF_START
        while got < n:
            tail = self._load(self._TAIL)
            avail = tail - head
            if avail == 0:
                backoff = self._wait(deadline, backoff, "reading")
                continue
            backoff = _BACKOFF_START
            pos = head % self.capacity
            chunk = min(n - got, avail, self.capacity - pos)
            view[got:got + chunk] = self._buf[pos:pos + chunk]
            got += chunk
            head += chunk
            self._store(self._HEAD, head)

    def read_bytes(self, n: int, *, timeout: float = 600.0) -> bytearray:
        """Read exactly ``n`` bytes into a fresh buffer."""
        out = bytearray(n)
        if n:
            self.read_into(out, timeout=timeout)
        return out


class ArrayRef:
    """Positional placeholder for an ndarray lifted out of a payload."""

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __reduce__(self):
        return (ArrayRef, (self.index,))


def _ring_worthy(a: np.ndarray) -> bool:
    # Object and structured dtypes cannot be moved as raw bytes; they
    # stay embedded in the (pickled) skeleton.
    return not a.dtype.hasobject and a.dtype.fields is None


def split_arrays(obj: Any) -> tuple[Any, list[np.ndarray]]:
    """Replace every ndarray in ``obj`` with an :class:`ArrayRef`.

    Recurses through tuples, lists, and dicts (the containers message
    payloads are built from); anything else passes through untouched
    and will be pickled with the skeleton.  Returns ``(skeleton,
    arrays)`` with arrays in reference order.
    """
    arrays: list[np.ndarray] = []

    def enc(x):
        if isinstance(x, np.ndarray) and _ring_worthy(x):
            arrays.append(x)
            return ArrayRef(len(arrays) - 1)
        t = type(x)
        if t is tuple:
            return tuple(enc(i) for i in x)
        if t is list:
            return [enc(i) for i in x]
        if t is dict:
            return {k: enc(v) for k, v in x.items()}
        return x

    return enc(obj), arrays


def join_arrays(skeleton: Any, arrays: list) -> Any:
    """Inverse of :func:`split_arrays`: resolve every :class:`ArrayRef`."""

    def dec(x):
        if isinstance(x, ArrayRef):
            return arrays[x.index]
        t = type(x)
        if t is tuple:
            return tuple(dec(i) for i in x)
        if t is list:
            return [dec(i) for i in x]
        if t is dict:
            return {k: dec(v) for k, v in x.items()}
        return x

    return dec(skeleton)


def prepare_arrays(arrays: list[np.ndarray]) -> tuple[list, list[tuple]]:
    """Byte views + wire descriptors for a batch of lifted arrays.

    Returns ``(views, descrs)`` where each view is a flat ``uint8``
    view over the array's (contiguous) data, and each descriptor is
    ``(dtype_str, shape, order, writeable)`` — everything the receiver
    needs to rebuild the array from raw ring bytes.  Non-contiguous
    arrays are compacted first (the runtime's payloads are contiguous
    C- or F-order in practice, so this copy almost never fires).
    """
    views = []
    descrs = []
    for a in arrays:
        order = "F" if (a.flags.f_contiguous and not a.flags.c_contiguous) else "C"
        if not (a.flags.c_contiguous or a.flags.f_contiguous):
            a = np.ascontiguousarray(a)
            order = "C"
        views.append(a.reshape(-1, order="A").view(np.uint8))
        descrs.append(
            (a.dtype.str, a.shape, order, bool(a.flags.writeable))
        )
    return views, descrs


def materialize_array(descr: tuple, data: bytearray) -> np.ndarray:
    """Rebuild one array from its wire descriptor and raw bytes.

    The result is backed by ``data`` directly (one copy total, out of
    the ring); payloads that were *moved* (frozen) on the sender side
    arrive read-only, preserving move semantics across processes.
    """
    dtype_str, shape, order, writeable = descr
    arr = np.frombuffer(data, dtype=np.dtype(dtype_str)).reshape(
        shape, order=order
    )
    if not writeable:
        arr.flags.writeable = False
    return arr


def recv_arrays(ring: ShmRing, descrs: list[tuple], *,
                timeout: float = 600.0) -> list[np.ndarray]:
    """Read one array per descriptor from the ring, in order."""
    out = []
    for descr in descrs:
        nbytes = int(np.dtype(descr[0]).itemsize * int(np.prod(descr[1], dtype=np.int64)))
        out.append(materialize_array(descr, ring.read_bytes(nbytes, timeout=timeout)))
    return out


def send_arrays(ring: ShmRing, views: list, *, timeout: float = 600.0) -> None:
    """Write prepared byte views into the ring, in descriptor order."""
    for view in views:
        ring.write(view, timeout=timeout)
