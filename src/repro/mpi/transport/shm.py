"""Shared-memory SPSC ring buffers for the process transport.

The process transport moves ndarray payloads between a worker process
and the master through :class:`ShmRing` — a bounded byte ring over an
anonymous shared ``mmap`` created *before* the fork, so both sides
address the same physical pages with no filesystem object to leak and
no cleanup to race (the mapping dies with its last process).  Only raw
array bytes travel through the ring; everything else about a message —
the container skeleton, dtype/shape/order descriptors, envelope
metadata — rides the control pipe as small picklable tuples.  Array
*data* is never pickled.

The ndarray (de)serialization itself lives in the transport-neutral
:mod:`repro.mpi.transport.codec` (shared with the socket transport);
this module re-exports the codec names it historically owned and adds
the ring-specific streaming helpers :func:`send_arrays` /
:func:`recv_arrays`.
"""

from __future__ import annotations

import mmap
import struct
import time

from ...errors import CommunicatorError
from .codec import (
    ArrayRef,
    descr_nbytes,
    join_arrays,
    materialize_array,
    prepare_arrays,
    split_arrays,
)

__all__ = [
    "ShmRing",
    "ArrayRef",
    "split_arrays",
    "join_arrays",
    "prepare_arrays",
    "materialize_array",
    "recv_arrays",
    "send_arrays",
    "DEFAULT_RING_BYTES",
]


#: Default per-direction ring capacity.  Payloads larger than the ring
#: stream through it in chunks, so this bounds memory, not message size.
DEFAULT_RING_BYTES = 8 * 1024 * 1024

# Spin-wait backoff for a full (writer) / empty (reader) ring: start at
# 1 us, double to a 0.5 ms cap — cheap enough to stay responsive, long
# enough to get off the CPU when the peer is busy.
_BACKOFF_START = 1e-6
_BACKOFF_CAP = 5e-4

_U64 = struct.Struct("<Q")
_MASK = (1 << 64) - 1


class ShmRing:
    """Single-producer single-consumer byte ring over shared anonymous mmap.

    The first 16 bytes are two monotonically increasing 64-bit cursors:
    ``head`` (bytes consumed, written only by the reader) and ``tail``
    (bytes produced, written only by the writer).  Each side mutates
    only its own cursor, so no lock is needed; 8-byte aligned loads and
    stores are atomic on every platform this runtime targets.  Create
    the ring *before* forking — both processes then share the mapping.
    """

    _CTRL = 16
    _HEAD = 0
    _TAIL = 8

    def __init__(self, capacity: int = DEFAULT_RING_BYTES) -> None:
        if capacity <= 0:
            raise CommunicatorError("ring capacity must be positive")
        self.capacity = int(capacity)
        self._mm = mmap.mmap(-1, self._CTRL + self.capacity)
        self._buf = memoryview(self._mm)[self._CTRL:]

    def _load(self, offset: int) -> int:
        return _U64.unpack_from(self._mm, offset)[0]

    def _store(self, offset: int, value: int) -> None:
        _U64.pack_into(self._mm, offset, value & _MASK)

    def _wait(self, deadline: float, backoff: float, what: str) -> float:
        if time.monotonic() > deadline:
            raise CommunicatorError(
                f"shared-memory ring stalled while {what} — peer process "
                "is not draining (likely dead or deadlocked)"
            )
        time.sleep(backoff)
        return min(backoff * 2, _BACKOFF_CAP)

    def write(self, data, *, timeout: float = 600.0) -> None:
        """Stream ``data`` (a 1-D byte view) into the ring, blocking on space.

        Publishes the tail cursor after every chunk, so a payload larger
        than the ring flows through it while the reader drains
        concurrently.
        """
        view = memoryview(data).cast("B")
        n = len(view)
        written = 0
        tail = self._load(self._TAIL)
        deadline = time.monotonic() + timeout
        backoff = _BACKOFF_START
        while written < n:
            head = self._load(self._HEAD)
            free = self.capacity - (tail - head)
            if free == 0:
                backoff = self._wait(deadline, backoff, "writing")
                continue
            backoff = _BACKOFF_START
            pos = tail % self.capacity
            chunk = min(n - written, free, self.capacity - pos)
            self._buf[pos:pos + chunk] = view[written:written + chunk]
            written += chunk
            tail += chunk
            self._store(self._TAIL, tail)

    def read_into(self, out, *, timeout: float = 600.0) -> None:
        """Fill ``out`` (a writable 1-D byte view) from the ring, blocking."""
        view = memoryview(out).cast("B")
        n = len(view)
        got = 0
        head = self._load(self._HEAD)
        deadline = time.monotonic() + timeout
        backoff = _BACKOFF_START
        while got < n:
            tail = self._load(self._TAIL)
            avail = tail - head
            if avail == 0:
                backoff = self._wait(deadline, backoff, "reading")
                continue
            backoff = _BACKOFF_START
            pos = head % self.capacity
            chunk = min(n - got, avail, self.capacity - pos)
            view[got:got + chunk] = self._buf[pos:pos + chunk]
            got += chunk
            head += chunk
            self._store(self._HEAD, head)

    def read_bytes(self, n: int, *, timeout: float = 600.0) -> bytearray:
        """Read exactly ``n`` bytes into a fresh buffer."""
        out = bytearray(n)
        if n:
            self.read_into(out, timeout=timeout)
        return out


def recv_arrays(ring: ShmRing, descrs: list[tuple], *,
                timeout: float = 600.0) -> list[np.ndarray]:
    """Read one array per descriptor from the ring, in order."""
    out = []
    for descr in descrs:
        nbytes = descr_nbytes(descr)
        out.append(materialize_array(descr, ring.read_bytes(nbytes, timeout=timeout)))
    return out


def send_arrays(ring: ShmRing, views: list, *, timeout: float = 600.0) -> None:
    """Write prepared byte views into the ring, in descriptor order."""
    for view in views:
        ring.write(view, timeout=timeout)
