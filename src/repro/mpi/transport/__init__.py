"""Pluggable rank transports for the simulated SPMD runtime.

A :class:`~repro.mpi.transport.base.Transport` owns *how ranks execute
and exchange envelopes*: :class:`~repro.mpi.transport.threads.
ThreadTransport` (the default) runs ranks as threads of one process
sharing the world's mailboxes directly, while :class:`~repro.mpi.
transport.procs.ProcessTransport` runs each rank as a forked worker
process that talks to a master-resident world through shared-memory
ring buffers — true multi-core execution for the GIL-bound portions of
the kernels.  Select one with ``run_spmd(..., backend="threads"|"procs")``
or the ``REPRO_SPMD_BACKEND`` environment variable.
"""

from .base import Transport, available_backends, make_transport, resolve_backend
from .threads import ThreadTransport

__all__ = [
    "Transport",
    "ThreadTransport",
    "ProcessTransport",
    "available_backends",
    "make_transport",
    "resolve_backend",
]


def __getattr__(name):
    """Lazily expose ProcessTransport (imports multiprocessing machinery)."""
    if name == "ProcessTransport":
        from .procs import ProcessTransport

        return ProcessTransport
    raise AttributeError(name)
