"""Pluggable rank transports for the simulated SPMD runtime.

A :class:`~repro.mpi.transport.base.Transport` owns *how ranks execute
and exchange envelopes*: :class:`~repro.mpi.transport.threads.
ThreadTransport` (the default) runs ranks as threads of one process
sharing the world's mailboxes directly, while :class:`~repro.mpi.
transport.procs.ProcessTransport` runs each rank as a forked worker
process that talks to a master-resident world through shared-memory
ring buffers — true multi-core execution for the GIL-bound portions of
the kernels.  :class:`~repro.mpi.transport.sockets.SocketTransport`
reaches the same master-resident world over framed TCP connections
hardened with retry policies, heartbeats, and liveness deadlines, and
can launch workers as separate processes (``hosts=...``).  Select one
with ``run_spmd(..., backend="threads"|"procs"|"sockets")`` or the
``REPRO_SPMD_BACKEND`` environment variable; transports with
constructor knobs can be passed as instances
(``run_spmd(..., backend=SocketTransport(liveness_timeout=2.0))``).
"""

from .base import Transport, available_backends, make_transport, resolve_backend
from .threads import ThreadTransport

__all__ = [
    "Transport",
    "ThreadTransport",
    "ProcessTransport",
    "SocketTransport",
    "available_backends",
    "make_transport",
    "resolve_backend",
]


def __getattr__(name):
    """Lazily expose the heavier transports (multiprocessing, sockets)."""
    if name == "ProcessTransport":
        from .procs import ProcessTransport

        return ProcessTransport
    if name == "SocketTransport":
        from .sockets import SocketTransport

        return SocketTransport
    raise AttributeError(name)
