"""Standalone entry point for spawned socket-transport workers.

``REPRO_SOCKETS_TOKEN=... python -m repro.mpi.transport.sockworker
--addr HOST:PORT --rank R`` dials the master's rendezvous listener,
completes the hello handshake on the ctl link, receives its boot blob
(the SPMD program, its arguments, and the world configuration,
pickled), raises the data link, and runs the rank to completion.  This
is what ``SocketTransport(hosts=[...])`` launches instead of forking —
a fresh interpreter with no inherited state, the shape a real
multi-host deployment has.  Running the same command by hand on
another machine (with ``--addr`` pointing back at the master) joins
that host to the world; the handshake needs nothing but TCP
reachability and the shared token.  The token travels in the
``REPRO_SOCKETS_TOKEN`` environment variable, not argv — command
lines are world-readable via ps/procfs, and the secret must not be.
"""

from __future__ import annotations

import argparse
import os
import pickle
import sys

from ...errors import CommunicatorError
from ...faults.network import NetworkFaultState
from .sockets import _connect_framed, _run_sock_worker
from .worldproxy import WorkerConfig

__all__ = ["main"]

_BOOT_TIMEOUT = 60.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.mpi.transport.sockworker",
        description="join a repro SPMD world as one socket-transport rank",
    )
    parser.add_argument("--addr", required=True, metavar="HOST:PORT",
                        help="the master's rendezvous listener")
    parser.add_argument("--rank", required=True, type=int)
    ns = parser.parse_args(argv)
    host, _, port = ns.addr.rpartition(":")
    if not host or not port.isdigit():
        parser.error(f"--addr must be HOST:PORT, got {ns.addr!r}")
    addr = (host, int(port))
    rank = ns.rank
    from .sockets import TOKEN_ENV_VAR

    token = os.environ.get(TOKEN_ENV_VAR)
    if not token:
        parser.error(
            f"set {TOKEN_ENV_VAR} to the shared secret from the master's "
            f"address book (the token never travels on argv: command "
            f"lines are world-readable via ps/procfs)"
        )

    # The ctl link comes up first and carries the boot blob; injected
    # connect-refusal rules (which ride in the blob) therefore apply
    # only to the data connect in spawn mode.
    counters = {"attempts": 0, "retries": 0}
    from .net import DEFAULT_CONNECT_POLICY

    ctl = _connect_framed(addr, "ctl", rank, token,
                          DEFAULT_CONNECT_POLICY, None, counters)
    header, _ = ctl.recv(timeout=_BOOT_TIMEOUT)
    if not (isinstance(header, tuple) and header and header[0] == "boot"):
        raise CommunicatorError(
            f"rank {rank}: expected a boot blob on the ctl link, "
            f"got {header!r}"
        )
    fn, args, kwargs, state, netrules, knobs = pickle.loads(header[1])
    cfg = object.__new__(WorkerConfig)
    for slot in WorkerConfig.__slots__:
        setattr(cfg, slot, state[slot])

    netstate = NetworkFaultState(netrules, rank) if netrules else None
    if netstate is not None and not netstate.active:
        netstate = None
    data = _connect_framed(addr, "data", rank, token,
                           knobs["connect_policy"], netstate, counters)
    _run_sock_worker(cfg, rank, fn, args, kwargs, ctl, data, addr,
                     token, netstate, knobs, counters)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
