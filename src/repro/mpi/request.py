"""Nonblocking communication requests for the simulated MPI layer.

``isend`` completion means the payload has been *staged* out of the
sender's hands.  On the threads backend staging is a direct mailbox
append, so send requests come back already complete; on the process
backend the payload still has to travel through the shared-memory ring
to the master, and the request tracks that buffer handoff
(:meth:`Request.from_token`).  ``irecv`` returns a request whose
:meth:`Request.wait` performs the blocking matched receive;
:meth:`Request.test` polls without blocking.  ``waitall`` completes a
batch in order.

Repeatedly polling an incomplete request must not busy-spin: each
unsuccessful :meth:`Request.test` sleeps for a bounded, exponentially
growing interval (1 µs doubling to a 1 ms cap), so a ``while not
req.test()[0]`` loop costs microseconds of latency instead of a core.

These mirror the mpi4py idioms the algorithms' reference
implementations use for overlapping the TSQR exchanges.
"""

from __future__ import annotations

import time
from typing import Any, Sequence

from ..errors import CommunicatorError
from .transport.net import RetryPolicy

__all__ = ["Request", "waitall"]

# Bounded backoff for unsuccessful test() polls: start at 1 us, double
# to a 1 ms cap.  Keeps poll loops off the CPU without adding visible
# latency once the operation completes.  Polling has no retry budget,
# so only the delay schedule of the policy is consulted.
_POLL_POLICY = RetryPolicy(backoff_base=1e-6, backoff_cap=1e-3, jitter=0.0)


class Request:
    """Handle for an in-flight nonblocking operation."""

    def __init__(self, kind: str, complete_fn=None, value: Any = None) -> None:
        self._kind = kind
        self._complete_fn = complete_fn
        self._value = value
        self._done = complete_fn is None
        self._attempt = 0

    @property
    def kind(self) -> str:
        return self._kind

    def done(self) -> bool:
        """True once the operation has completed (never un-completes)."""
        return self._done

    def test(self) -> tuple[bool, Any]:
        """Poll for completion; returns ``(done, value-or-None)``.

        For receives, a ready message completes the request and returns
        its payload; for sends, completion means the payload has been
        staged.  An incomplete poll returns ``(False, None)`` without
        blocking, after a bounded backoff sleep (growing 1 µs → 1 ms)
        so tight test loops do not busy-spin a core.
        """
        if self._done:
            return True, self._value
        assert self._complete_fn is not None
        ok, value = self._complete_fn(blocking=False)
        if ok:
            self._value = value
            self._done = True
            self._complete_fn = None
        else:
            time.sleep(_POLL_POLICY.delay(self._attempt))
            self._attempt += 1
        return self._done, self._value

    def wait(self) -> Any:
        """Block until completion; returns the payload (None for sends)."""
        if self._done:
            return self._value
        assert self._complete_fn is not None
        ok, value = self._complete_fn(blocking=True)
        if not ok:  # pragma: no cover - blocking path always completes
            raise CommunicatorError("blocking wait failed to complete")
        self._value = value
        self._done = True
        self._complete_fn = None
        return self._value

    @staticmethod
    def completed(value: Any = None, kind: str = "send") -> "Request":
        """An already-complete request (threads-backend buffered sends)."""
        return Request(kind, complete_fn=None, value=value)

    @staticmethod
    def from_token(token, kind: str = "send") -> "Request":
        """A request tracking a transport handoff token.

        ``token`` is ``threading.Event``-like: ``is_set()`` reports
        whether the handoff resolved, ``wait()`` blocks for it.  The
        process and socket backends return one per ``isend`` so
        completion reflects the true wire handoff.  A token carrying
        an ``error`` attribute (:class:`~repro.mpi.transport.
        worldproxy.SendToken`) resolved by *failing* to stage: the
        request re-raises instead of reporting a successful send.
        """

        def complete(blocking: bool):
            if blocking:
                token.wait()
            elif not token.is_set():
                return False, None
            err = getattr(token, "error", None)
            if err is not None:
                raise CommunicatorError(
                    f"isend staging failed: the payload never reached "
                    f"its destination ({err})"
                ) from err
            return True, None

        return Request(kind, complete_fn=complete)


def waitall(requests: Sequence[Request]) -> list:
    """Complete every request, returning their payloads in order."""
    return [r.wait() for r in requests]
