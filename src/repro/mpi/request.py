"""Nonblocking communication requests for the simulated MPI layer.

``isend`` completes immediately (sends are buffered — the payload is
snapshotted into the destination mailbox), so its request exists for API
symmetry.  ``irecv`` returns a request whose :meth:`Request.wait`
performs the blocking matched receive; :meth:`Request.test` polls
without blocking.  ``waitall`` completes a batch in order.

These mirror the mpi4py idioms the algorithms' reference implementations
use for overlapping the TSQR exchanges.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import CommunicatorError

__all__ = ["Request", "waitall"]


class Request:
    """Handle for an in-flight nonblocking operation."""

    def __init__(self, kind: str, complete_fn=None, value: Any = None) -> None:
        self._kind = kind
        self._complete_fn = complete_fn
        self._value = value
        self._done = complete_fn is None

    @property
    def kind(self) -> str:
        return self._kind

    def done(self) -> bool:
        """True once the operation has completed (never un-completes)."""
        return self._done

    def test(self) -> tuple[bool, Any]:
        """Poll for completion; returns ``(done, value-or-None)``.

        For receives, a ready message completes the request and returns
        its payload; an empty mailbox returns ``(False, None)`` without
        blocking.
        """
        if self._done:
            return True, self._value
        assert self._complete_fn is not None
        ok, value = self._complete_fn(blocking=False)
        if ok:
            self._value = value
            self._done = True
            self._complete_fn = None
        return self._done, self._value

    def wait(self) -> Any:
        """Block until completion; returns the payload (None for sends)."""
        if self._done:
            return self._value
        assert self._complete_fn is not None
        ok, value = self._complete_fn(blocking=True)
        if not ok:  # pragma: no cover - blocking path always completes
            raise CommunicatorError("blocking wait failed to complete")
        self._value = value
        self._done = True
        self._complete_fn = None
        return self._value

    @staticmethod
    def completed(value: Any = None, kind: str = "send") -> "Request":
        """An already-complete request (buffered sends)."""
        return Request(kind, complete_fn=None, value=value)


def waitall(requests: Sequence[Request]) -> list:
    """Complete every request, returning their payloads in order."""
    return [r.wait() for r in requests]
