"""SPMD launcher: run a function on P simulated ranks.

:func:`run_spmd` is the `mpiexec` of the simulated runtime: it spawns
one thread per rank, hands each a world :class:`Communicator`, and
collects return values.  NumPy kernels release the GIL, so ranks
genuinely overlap on multicore hosts; correctness never depends on it.

If any rank raises, the world is aborted — every blocked receive wakes
with :class:`~repro.errors.CommunicatorError` — and the original
exception is re-raised in the caller with the failing rank identified.

With ``sanitize=True`` (or an explicit
:class:`~repro.sanitize.Sanitizer`) the run is supervised by the SPMD
sanitizer: collective calls are cross-checked between ranks, blocked
receives feed a deadlock-detecting wait-for graph, zero-copy move
violations surface as :class:`~repro.errors.UseAfterMoveError` with the
original send site, and undelivered messages are reported at finalize.
See :mod:`repro.sanitize` and ``docs/sanitizer.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import (
    CommunicatorError,
    RankFailedError,
    RankKilledError,
    SanitizerError,
    WorldAbortedError,
)
from ..faults.injector import FaultInjector
from ..faults.plan import Resilience
from .context import SpmdContext
from .costmodel import CostModel
from .transport import make_transport
from .transport.threads import WORLD_COMM_ID

__all__ = ["run_spmd", "SpmdResult", "WORLD_COMM_ID"]


@dataclass
class SpmdResult:
    """Results of an SPMD run: per-rank return values and logical clocks.

    Under fault injection, ranks killed by an injected crash report
    ``None`` in ``values`` and appear in ``failed_ranks``; ``faults``
    is the run's :class:`~repro.faults.FaultInjector` carrying the
    fired-fault trace for replay verification.
    """

    values: list
    clocks: list  # RankClock per rank, or None when no cost model
    sanitizer: Any = None  # the run's Sanitizer when sanitize= was given
    faults: Any = None  # the run's FaultInjector when faults= was given
    failed_ranks: list = None  # world ranks dead at exit (injected crashes)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, i: int):
        return self.values[i]

    def __len__(self) -> int:
        return len(self.values)

    @property
    def slowest_time(self) -> float:
        """Max logical finish time over ranks (paper reports the slowest)."""
        if not self.clocks or self.clocks[0] is None:
            raise CommunicatorError("no cost model was attached to this run")
        return max(c.now for c in self.clocks)

    def slowest_rank_breakdown(self) -> dict[str, float]:
        """Per-phase breakdown of the rank with the largest finish time."""
        if not self.clocks or self.clocks[0] is None:
            raise CommunicatorError("no cost model was attached to this run")
        slowest = max(self.clocks, key=lambda c: c.now)
        return slowest.breakdown()


def _write_postmortem(context, recorder, telemetry, err, errors) -> None:
    """Assemble (and persist, when configured) the crash postmortem.

    Runs just before the launcher re-raises the root cause of a dead
    world.  Failures here must never mask that root cause, so problems
    are reported to stderr and swallowed.
    """
    if recorder is None:
        return
    try:
        from ..obs.postmortem import build_postmortem, write_postmortem

        bundle = build_postmortem(
            context, error=err, errors=errors,
            recorder=recorder, telemetry=telemetry,
        )
        recorder.last_postmortem = bundle
        if recorder.postmortem_dir is not None:
            recorder.last_postmortem_path = write_postmortem(
                bundle, recorder.postmortem_dir
            )
    except Exception as exc:  # pragma: no cover - defensive
        import sys

        print(f"repro: postmortem assembly failed: {exc!r}", file=sys.stderr)


def run_spmd(
    fn: Callable[..., Any],
    nprocs: int,
    *args: Any,
    cost_model: CostModel | None = None,
    recv_timeout: float = 120.0,
    comm_trace=None,
    tuning=None,
    tracer=None,
    sanitize=False,
    faults=None,
    resilience=None,
    backend=None,
    recorder=None,
    telemetry=None,
    **kwargs: Any,
) -> SpmdResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` simulated ranks.

    Parameters
    ----------
    fn:
        The SPMD program.  Receives the world communicator as its first
        argument; its return value is collected per rank.
    nprocs:
        Number of ranks.
    backend:
        Rank transport: ``"threads"`` (default — ranks as threads of
        this process, shared address space), ``"procs"`` (ranks as
        forked worker processes exchanging ndarray payloads through
        shared-memory rings — true multi-core execution for GIL-bound
        code; requires ``fn``, its arguments, and its return values to
        be fork-inheritable / picklable-modulo-ndarrays), or
        ``"sockets"`` (the procs execution model over framed TCP
        connections hardened with connect retries, heartbeats, and
        liveness deadlines; workers may also be spawned as fresh
        processes for multi-host layouts).  A prebuilt
        :class:`~repro.mpi.transport.Transport` instance is accepted
        for transports with constructor knobs, e.g.
        ``backend=SocketTransport(liveness_timeout=2.0)``.  ``None``
        reads ``REPRO_SPMD_BACKEND``, falling back to ``"threads"``.
        Results, collectives, fault injection, tracing, and the
        sanitizer's collective/deadlock/leak checks behave identically
        on every backend; see ``docs/mpi-runtime.md`` (Transports).
    cost_model:
        Optional alpha-beta-gamma parameters; when given, every rank's
        communicator carries a logical clock and ``SpmdResult.clocks``
        holds them.
    recv_timeout:
        Seconds a blocked receive waits before declaring deadlock.
    comm_trace:
        Optional :class:`~repro.mpi.tracing.CommTrace` recording every
        rank's sent messages and bytes.
    tuning:
        Optional :class:`~repro.mpi.tuning.CollectiveTuning` overriding
        the collective-dispatch crossover thresholds for this world.
    tracer:
        Optional :class:`~repro.obs.Tracer` activated on every rank
        thread for the duration of the run: communicator operations,
        distributed kernels, and drivers record per-rank spans into it.
    sanitize:
        ``True`` (or a configured :class:`~repro.sanitize.Sanitizer`)
        enables the SPMD sanitizer: collective-matching verification,
        wait-for-graph deadlock detection, zero-copy move enforcement,
        and a message-leak report at finalize.  ``False`` (default)
        costs a single ``is None`` check per communicator operation.
    faults:
        Optional :class:`~repro.faults.FaultPlan` (or a prebuilt
        :class:`~repro.faults.FaultInjector`) injecting deterministic,
        seeded faults: rank crashes, message drop/delay/duplicate/
        corruption, kernel NaN/Inf.  Injected crashes do *not* abort
        the world — survivors observe :class:`~repro.errors.
        RankFailedError` and may ``revoke()``/``shrink()`` to recover;
        the victims' slots in ``values`` stay None and their world
        ranks land in ``SpmdResult.failed_ranks``.
    resilience:
        ``True`` (defaults) or a :class:`~repro.faults.Resilience`
        enabling message-level tolerance: per-message sequence numbers,
        payload checksums, and sender retry with exponential backoff —
        the machinery that survives what ``faults=`` injects.
    recorder:
        Optional :class:`~repro.obs.FlightRecorder` — an always-on,
        bounded per-rank ring buffer of structured runtime events
        (p2p/collective ops, kernel entry/exit, faults, checkpoint
        saves).  When the run dies the launcher assembles a postmortem
        bundle (``recorder.last_postmortem``, and a JSON file when
        ``postmortem_dir`` is set) before re-raising the root cause.
        See ``docs/observability.md`` (Flight recorder & postmortems).
    telemetry:
        Optional :class:`~repro.obs.TelemetryHub` giving a live mid-run
        snapshot API (``hub.snapshot()`` / ``hub.render()``): per-rank
        status, heartbeat ages, flight-recorder activity, and comm
        totals, streamed from worker processes at
        ``recorder.heartbeat_interval`` on the ``"procs"`` backend and
        sampled from shared state on ``"threads"``.

    Returns
    -------
    SpmdResult
        ``values[r]`` is rank r's return value; ``sanitizer`` is the
        run's :class:`~repro.sanitize.Sanitizer` (with its collected
        ``findings``) when sanitizing was requested.
    """
    if nprocs <= 0:
        raise CommunicatorError("nprocs must be positive")
    sanitizer = None
    if sanitize:
        if sanitize is True:
            from ..sanitize import Sanitizer

            sanitizer = Sanitizer()
        else:
            sanitizer = sanitize
    injector = None
    if faults is not None:
        injector = faults if isinstance(faults, FaultInjector) else FaultInjector(faults)
    res_cfg = None
    if resilience:
        if resilience is True:
            res_cfg = Resilience()
        elif isinstance(resilience, Resilience):
            res_cfg = resilience
        else:
            raise CommunicatorError(
                f"resilience= expects True or a Resilience, got {resilience!r}"
            )
    transport = make_transport(backend)
    context = SpmdContext(
        nprocs, cost_model=cost_model, recv_timeout=recv_timeout,
        comm_trace=comm_trace, tuning=tuning, tracer=tracer,
        sanitizer=sanitizer, faults=injector, resilience=res_cfg,
        transport=transport, recorder=recorder, telemetry=telemetry,
    )
    if telemetry is not None:
        telemetry.attach(
            context, recorder=recorder,
            backend=getattr(transport, "name", None),
        )
    values, clocks, errors = transport.execute(context, fn, args, kwargs)

    # Sanitizer findings are root causes; CommunicatorError is usually a
    # secondary symptom (a rank unblocked by the world abort) — re-raise
    # in that priority order.  Injected crashes (RankKilledError) are
    # expected outcomes of a fault plan, not program errors: they are
    # reported through failed_ranks, never re-raised.
    def reportable(err) -> bool:
        return err is not None and not (
            injector is not None and isinstance(err, RankKilledError)
        )

    # Root-cause tiers, most causal first.  A plain CommunicatorError
    # (a timeout, an exhausted retry budget) outranks a RankFailedError
    # — the observer of someone else's death — which in turn outranks
    # WorldAbortedError, by construction fallout of another rank's
    # failure.  Without the tiers, which rank's error surfaces would
    # depend on the race between the first failure and its observers.
    def tier(err) -> int:
        if isinstance(err, SanitizerError):
            return 0
        if not isinstance(err, CommunicatorError):
            return 1
        if isinstance(err, WorldAbortedError):
            return 4
        if isinstance(err, RankFailedError):
            return 3
        return 2

    for level in range(5):
        for rank, err in enumerate(errors):
            if reportable(err) and tier(err) == level:
                _write_postmortem(context, recorder, telemetry, err, errors)
                raise err
    if sanitizer is not None:
        sanitizer.finalize_world(context)
    return SpmdResult(
        values=values, clocks=clocks, sanitizer=sanitizer, faults=injector,
        failed_ranks=context.failed_ranks(),
    )
