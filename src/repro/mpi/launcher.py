"""SPMD launcher: run a function on P simulated ranks.

:func:`run_spmd` is the `mpiexec` of the simulated runtime: it spawns
one thread per rank, hands each a world :class:`Communicator`, and
collects return values.  NumPy kernels release the GIL, so ranks
genuinely overlap on multicore hosts; correctness never depends on it.

If any rank raises, the world is aborted — every blocked receive wakes
with :class:`~repro.errors.CommunicatorError` — and the original
exception is re-raised in the caller with the failing rank identified.

With ``sanitize=True`` (or an explicit
:class:`~repro.sanitize.Sanitizer`) the run is supervised by the SPMD
sanitizer: collective calls are cross-checked between ranks, blocked
receives feed a deadlock-detecting wait-for graph, zero-copy move
violations surface as :class:`~repro.errors.UseAfterMoveError` with the
original send site, and undelivered messages are reported at finalize.
See :mod:`repro.sanitize` and ``docs/sanitizer.md``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..errors import CommunicatorError, SanitizerError
from ..obs.tracer import activate as obs_activate, deactivate as obs_deactivate
from .communicator import Communicator
from .context import SpmdContext
from .costmodel import CostModel

__all__ = ["run_spmd", "SpmdResult"]

WORLD_COMM_ID = 0


@dataclass
class SpmdResult:
    """Results of an SPMD run: per-rank return values and logical clocks."""

    values: list
    clocks: list  # RankClock per rank, or None when no cost model
    sanitizer: Any = None  # the run's Sanitizer when sanitize= was given

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, i: int):
        return self.values[i]

    def __len__(self) -> int:
        return len(self.values)

    @property
    def slowest_time(self) -> float:
        """Max logical finish time over ranks (paper reports the slowest)."""
        if not self.clocks or self.clocks[0] is None:
            raise CommunicatorError("no cost model was attached to this run")
        return max(c.now for c in self.clocks)

    def slowest_rank_breakdown(self) -> dict[str, float]:
        """Per-phase breakdown of the rank with the largest finish time."""
        if not self.clocks or self.clocks[0] is None:
            raise CommunicatorError("no cost model was attached to this run")
        slowest = max(self.clocks, key=lambda c: c.now)
        return slowest.breakdown()


def run_spmd(
    fn: Callable[..., Any],
    nprocs: int,
    *args: Any,
    cost_model: CostModel | None = None,
    recv_timeout: float = 120.0,
    comm_trace=None,
    tuning=None,
    tracer=None,
    sanitize=False,
    **kwargs: Any,
) -> SpmdResult:
    """Execute ``fn(comm, *args, **kwargs)`` on ``nprocs`` simulated ranks.

    Parameters
    ----------
    fn:
        The SPMD program.  Receives the world communicator as its first
        argument; its return value is collected per rank.
    nprocs:
        Number of ranks.
    cost_model:
        Optional alpha-beta-gamma parameters; when given, every rank's
        communicator carries a logical clock and ``SpmdResult.clocks``
        holds them.
    recv_timeout:
        Seconds a blocked receive waits before declaring deadlock.
    comm_trace:
        Optional :class:`~repro.mpi.tracing.CommTrace` recording every
        rank's sent messages and bytes.
    tuning:
        Optional :class:`~repro.mpi.tuning.CollectiveTuning` overriding
        the collective-dispatch crossover thresholds for this world.
    tracer:
        Optional :class:`~repro.obs.Tracer` activated on every rank
        thread for the duration of the run: communicator operations,
        distributed kernels, and drivers record per-rank spans into it.
    sanitize:
        ``True`` (or a configured :class:`~repro.sanitize.Sanitizer`)
        enables the SPMD sanitizer: collective-matching verification,
        wait-for-graph deadlock detection, zero-copy move enforcement,
        and a message-leak report at finalize.  ``False`` (default)
        costs a single ``is None`` check per communicator operation.

    Returns
    -------
    SpmdResult
        ``values[r]`` is rank r's return value; ``sanitizer`` is the
        run's :class:`~repro.sanitize.Sanitizer` (with its collected
        ``findings``) when sanitizing was requested.
    """
    if nprocs <= 0:
        raise CommunicatorError("nprocs must be positive")
    sanitizer = None
    if sanitize:
        if sanitize is True:
            from ..sanitize import Sanitizer

            sanitizer = Sanitizer()
        else:
            sanitizer = sanitize
    context = SpmdContext(
        nprocs, cost_model=cost_model, recv_timeout=recv_timeout,
        comm_trace=comm_trace, tuning=tuning, tracer=tracer,
        sanitizer=sanitizer,
    )
    members = list(range(nprocs))
    values: list = [None] * nprocs
    clocks: list = [None] * nprocs
    errors: list = [None] * nprocs

    def worker(rank: int) -> None:
        comm = Communicator(context, WORLD_COMM_ID, members, rank)
        clocks[rank] = comm.clock
        if tracer is not None:
            obs_activate(tracer, rank)
        try:
            values[rank] = fn(comm, *args, **kwargs)
            context.mark_finalized(rank)
        except BaseException as exc:  # noqa: BLE001 - must abort the world
            if sanitizer is not None:
                # A write into a frozen (moved) buffer surfaces as
                # NumPy's read-only ValueError; re-attribute it to the
                # zero-copy send that relinquished the buffer.
                translated = sanitizer.explain_readonly_write(exc, rank)
                if translated is not None:
                    exc = translated
            errors[rank] = exc
            context.mark_failed(rank)
            context.abort(f"rank {rank} raised {type(exc).__name__}: {exc}")
        finally:
            if tracer is not None:
                obs_deactivate()

    if nprocs == 1:
        # Fast path: no threads for the serial case.
        worker(0)
    else:
        threads = [
            threading.Thread(target=worker, args=(r,), name=f"spmd-rank-{r}")
            for r in range(nprocs)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    # Sanitizer findings are root causes; CommunicatorError is usually a
    # secondary symptom (a rank unblocked by the world abort) — re-raise
    # in that priority order.
    for rank, err in enumerate(errors):
        if err is not None and isinstance(err, SanitizerError):
            raise err
    for rank, err in enumerate(errors):
        if err is not None and not isinstance(err, CommunicatorError):
            raise err
    for rank, err in enumerate(errors):
        if err is not None:
            raise err
    if sanitizer is not None:
        sanitizer.finalize_world(context)
    return SpmdResult(values=values, clocks=clocks, sanitizer=sanitizer)
