"""Communication tracing: count messages and bytes per rank.

The paper's cost analysis (Sec. 3.5) makes concrete claims about message
*counts* and *volumes* — `P_n − 1` messages per processor for the
redistribution, `log P` triangle exchanges for the butterfly, and so on.
A :class:`CommTrace` attached to a world records exactly what each rank
sent, so tests can assert those formulas against the real execution
rather than trusting the model.

Usage::

    trace = CommTrace()
    res = run_spmd(fn, P, comm_trace=trace)
    trace.sent_messages(rank), trace.sent_bytes(rank)
"""

from __future__ import annotations

import threading
from collections import defaultdict

__all__ = ["CommTrace"]


class CommTrace:
    """Thread-safe per-rank tally of sent messages and bytes.

    Records are tagged with a free-form ``context`` label (set via
    :meth:`context`), letting callers attribute traffic to algorithm
    stages ("redistribute", "butterfly", ...).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._messages: dict = defaultdict(int)  # (rank, context) -> count
        self._bytes: dict = defaultdict(int)
        self._context = threading.local()

    # -- context labels (per-thread, i.e. per-rank) ---------------------
    def set_context(self, label: str | None) -> None:
        """Label subsequent sends from this thread (None resets)."""
        self._context.label = label

    def _current_context(self) -> str:
        return getattr(self._context, "label", None) or "all"

    # -- recording (called by the communicator) -------------------------
    def record_send(self, rank: int, nbytes: int) -> None:
        """Tally one sent message (called by the communicator)."""
        ctx = self._current_context()
        with self._lock:
            self._messages[(rank, ctx)] += 1
            self._bytes[(rank, ctx)] += int(nbytes)
            if ctx != "all":
                self._messages[(rank, "all")] += 1
                self._bytes[(rank, "all")] += int(nbytes)

    # -- queries ---------------------------------------------------------
    def sent_messages(self, rank: int, context: str = "all") -> int:
        """Messages sent by ``rank`` under ``context``."""
        return self._messages.get((rank, context), 0)

    def sent_bytes(self, rank: int, context: str = "all") -> int:
        """Bytes sent by ``rank`` under ``context``."""
        return self._bytes.get((rank, context), 0)

    def total_messages(self, context: str = "all") -> int:
        """Messages sent by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._messages.items() if c == context)

    def total_bytes(self, context: str = "all") -> int:
        """Bytes sent by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._bytes.items() if c == context)

    def contexts(self) -> set:
        """All context labels that recorded any traffic."""
        with self._lock:
            return {c for (_r, c) in self._messages}
