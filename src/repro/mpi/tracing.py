"""Communication tracing: count messages and bytes per rank.

The paper's cost analysis (Sec. 3.5) makes concrete claims about message
*counts* and *volumes* — `P_n − 1` messages per processor for the
redistribution, `log P` triangle exchanges for the butterfly, and so on.
A :class:`CommTrace` attached to a world records exactly what each rank
sent, so tests can assert those formulas against the real execution
rather than trusting the model.

Usage::

    trace = CommTrace()
    res = run_spmd(fn, P, comm_trace=trace)
    trace.sent_messages(rank), trace.sent_bytes(rank)
"""

from __future__ import annotations

import threading
from collections import defaultdict

__all__ = ["CommTrace"]


class CommTrace:
    """Thread-safe per-rank tally of sent messages and bytes.

    Records are tagged with a free-form ``context`` label (set via
    :meth:`context`), letting callers attribute traffic to algorithm
    stages ("redistribute", "butterfly", ...).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._messages: dict = defaultdict(int)  # (rank, context) -> count
        self._bytes: dict = defaultdict(int)
        self._copied: dict = defaultdict(int)  # bytes snapshotted on send
        self._moved: dict = defaultdict(int)  # bytes transferred zero-copy
        self._context = threading.local()

    # -- context labels (per-thread, i.e. per-rank) ---------------------
    def set_context(self, label: str | None) -> None:
        """Label subsequent sends from this thread (None resets)."""
        self._context.label = label

    def _current_context(self) -> str:
        return getattr(self._context, "label", None) or "all"

    # -- recording (called by the communicator) -------------------------
    def record_send(self, rank: int, nbytes: int, copied: int | None = None) -> None:
        """Tally one sent message (called by the communicator).

        ``copied`` is how many of the ``nbytes`` were physically
        snapshotted on send; the rest were moved (zero-copy ownership
        transfer).  ``None`` (legacy callers) counts the whole payload
        as copied.
        """
        nbytes = int(nbytes)
        copied = nbytes if copied is None else int(copied)
        moved = nbytes - copied
        ctx = self._current_context()
        with self._lock:
            for c in ({ctx, "all"} if ctx != "all" else {"all"}):
                self._messages[(rank, c)] += 1
                self._bytes[(rank, c)] += nbytes
                self._copied[(rank, c)] += copied
                self._moved[(rank, c)] += moved

    # -- queries ---------------------------------------------------------
    def sent_messages(self, rank: int, context: str = "all") -> int:
        """Messages sent by ``rank`` under ``context``."""
        return self._messages.get((rank, context), 0)

    def sent_bytes(self, rank: int, context: str = "all") -> int:
        """Bytes sent by ``rank`` under ``context``."""
        return self._bytes.get((rank, context), 0)

    def total_messages(self, context: str = "all") -> int:
        """Messages sent by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._messages.items() if c == context)

    def total_bytes(self, context: str = "all") -> int:
        """Bytes sent by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._bytes.items() if c == context)

    def copied_bytes(self, rank: int, context: str = "all") -> int:
        """Bytes physically copied on send by ``rank`` under ``context``."""
        return self._copied.get((rank, context), 0)

    def moved_bytes(self, rank: int, context: str = "all") -> int:
        """Bytes moved zero-copy by ``rank`` under ``context``."""
        return self._moved.get((rank, context), 0)

    def total_copied_bytes(self, context: str = "all") -> int:
        """Bytes physically copied on send by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._copied.items() if c == context)

    def total_moved_bytes(self, context: str = "all") -> int:
        """Bytes moved zero-copy by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._moved.items() if c == context)

    def contexts(self) -> set:
        """All context labels that recorded any traffic."""
        with self._lock:
            return {c for (_r, c) in self._messages}
