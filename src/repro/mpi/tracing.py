"""Communication tracing: count messages and bytes per rank.

The paper's cost analysis (Sec. 3.5) makes concrete claims about message
*counts* and *volumes* — `P_n − 1` messages per processor for the
redistribution, `log P` triangle exchanges for the butterfly, and so on.
A :class:`CommTrace` attached to a world records exactly what each rank
sent, so tests can assert those formulas against the real execution
rather than trusting the model.

Usage::

    trace = CommTrace()
    res = run_spmd(fn, P, comm_trace=trace)
    trace.sent_messages(rank), trace.sent_bytes(rank)

Receive-side tallies (:meth:`recv_messages` / :meth:`recv_bytes`) use
the sender's modeled wire size carried in the message envelope, so both
sides of every transfer agree byte-for-byte; asymmetric patterns
(incast into a gather root, broadcast fan-out) show up as per-rank
send/recv imbalance.
"""

from __future__ import annotations

import threading
from collections import defaultdict

__all__ = ["CommTrace"]


class CommTrace:
    """Thread-safe per-rank tally of sent/received messages and bytes.

    Records are tagged with a free-form ``context`` label (set via
    :meth:`set_context`), letting callers attribute traffic to algorithm
    stages ("redistribute", "butterfly", ...).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._messages: dict = defaultdict(int)  # (rank, context) -> count
        self._bytes: dict = defaultdict(int)
        self._copied: dict = defaultdict(int)  # bytes snapshotted on send
        self._moved: dict = defaultdict(int)  # bytes transferred zero-copy
        self._recv_messages: dict = defaultdict(int)
        self._recv_bytes: dict = defaultdict(int)
        # Reliability counters (fault injection / resilience), per rank.
        # Run-wide — not split by context label: a retransmission isn't
        # meaningfully attributable to an algorithm stage.
        self._dropped: dict = defaultdict(int)  # injected drops (sender)
        self._retried: dict = defaultdict(int)  # retransmissions (sender)
        self._checksum_failures: dict = defaultdict(int)  # discards (receiver)
        self._connect_retries: dict = defaultdict(int)  # socket reconnects
        self._context = threading.local()

    # -- context labels (per-thread, i.e. per-rank) ---------------------
    def set_context(self, label: str | None) -> None:
        """Label subsequent sends from this thread (None resets)."""
        self._context.label = label

    def _current_context(self) -> str:
        return getattr(self._context, "label", None) or "all"

    # -- recording (called by the communicator) -------------------------
    def record_send(self, rank: int, nbytes: int, copied: int | None = None) -> None:
        """Tally one sent message (called by the communicator).

        ``copied`` is how many of the ``nbytes`` were physically
        snapshotted on send; the rest were moved (zero-copy ownership
        transfer).  ``None`` (legacy callers) counts the whole payload
        as copied.
        """
        nbytes = int(nbytes)
        copied = nbytes if copied is None else int(copied)
        moved = nbytes - copied
        ctx = self._current_context()
        with self._lock:
            for c in ({ctx, "all"} if ctx != "all" else {"all"}):
                self._messages[(rank, c)] += 1
                self._bytes[(rank, c)] += nbytes
                self._copied[(rank, c)] += copied
                self._moved[(rank, c)] += moved

    def record_recv(self, rank: int, nbytes: int) -> None:
        """Tally one received message (called by the communicator).

        ``nbytes`` is the sender's modeled wire size carried in the
        envelope — never re-measured on the receive side, so both
        tallies of a transfer agree exactly.
        """
        nbytes = int(nbytes)
        ctx = self._current_context()
        with self._lock:
            for c in ({ctx, "all"} if ctx != "all" else {"all"}):
                self._recv_messages[(rank, c)] += 1
                self._recv_bytes[(rank, c)] += nbytes

    def record_dropped(self, rank: int) -> None:
        """Tally one injected message drop at sender ``rank``."""
        with self._lock:
            self._dropped[rank] += 1

    def record_retried(self, rank: int) -> None:
        """Tally one retransmission by sender ``rank``."""
        with self._lock:
            self._retried[rank] += 1

    def record_checksum_failure(self, rank: int) -> None:
        """Tally one corrupted envelope discarded by receiver ``rank``."""
        with self._lock:
            self._checksum_failures[rank] += 1

    def record_connect_retry(self, rank: int) -> None:
        """Tally one transport connect/reconnect retry by rank ``rank``.

        Fed by the socket transport's RetryPolicy hooks (initial
        connects, post-reset reconnects); always 0 on in-process
        backends, where there is nothing to connect to.
        """
        with self._lock:
            self._connect_retries[rank] += 1

    # -- queries ---------------------------------------------------------
    def sent_messages(self, rank: int, context: str = "all") -> int:
        """Messages sent by ``rank`` under ``context``."""
        return self._messages.get((rank, context), 0)

    def sent_bytes(self, rank: int, context: str = "all") -> int:
        """Bytes sent by ``rank`` under ``context``."""
        return self._bytes.get((rank, context), 0)

    def total_messages(self, context: str = "all") -> int:
        """Messages sent by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._messages.items() if c == context)

    def total_bytes(self, context: str = "all") -> int:
        """Bytes sent by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._bytes.items() if c == context)

    def copied_bytes(self, rank: int, context: str = "all") -> int:
        """Bytes physically copied on send by ``rank`` under ``context``."""
        return self._copied.get((rank, context), 0)

    def moved_bytes(self, rank: int, context: str = "all") -> int:
        """Bytes moved zero-copy by ``rank`` under ``context``."""
        return self._moved.get((rank, context), 0)

    def total_copied_bytes(self, context: str = "all") -> int:
        """Bytes physically copied on send by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._copied.items() if c == context)

    def total_moved_bytes(self, context: str = "all") -> int:
        """Bytes moved zero-copy by all ranks under ``context``."""
        with self._lock:
            return sum(v for (r, c), v in self._moved.items() if c == context)

    def recv_messages(self, rank: int, context: str = "all") -> int:
        """Messages received by ``rank`` under ``context``."""
        return self._recv_messages.get((rank, context), 0)

    def recv_bytes(self, rank: int, context: str = "all") -> int:
        """Bytes received by ``rank`` under ``context``."""
        return self._recv_bytes.get((rank, context), 0)

    def total_recv_messages(self, context: str = "all") -> int:
        """Messages received by all ranks under ``context``."""
        with self._lock:
            return sum(
                v for (r, c), v in self._recv_messages.items() if c == context
            )

    def total_recv_bytes(self, context: str = "all") -> int:
        """Bytes received by all ranks under ``context``."""
        with self._lock:
            return sum(
                v for (r, c), v in self._recv_bytes.items() if c == context
            )

    def dropped_messages(self, rank: int | None = None) -> int:
        """Injected drops at sender ``rank`` (or all ranks)."""
        with self._lock:
            if rank is not None:
                return self._dropped.get(rank, 0)
            return sum(self._dropped.values())

    def retried_messages(self, rank: int | None = None) -> int:
        """Retransmissions by sender ``rank`` (or all ranks)."""
        with self._lock:
            if rank is not None:
                return self._retried.get(rank, 0)
            return sum(self._retried.values())

    def checksum_failures(self, rank: int | None = None) -> int:
        """Corrupted envelopes discarded by receiver ``rank`` (or all)."""
        with self._lock:
            if rank is not None:
                return self._checksum_failures.get(rank, 0)
            return sum(self._checksum_failures.values())

    def connect_retries(self, rank: int | None = None) -> int:
        """Transport connect/reconnect retries by ``rank`` (or all)."""
        with self._lock:
            if rank is not None:
                return self._connect_retries.get(rank, 0)
            return sum(self._connect_retries.values())

    def in_flight_messages(self, context: str = "all") -> int:
        """Messages sent but not (yet) received under ``context``.

        Non-zero after a run completed means undelivered traffic — the
        same condition the sanitizer's finalize-time leak report flags
        with sender call sites (see :mod:`repro.sanitize`).
        """
        return self.total_messages(context) - self.total_recv_messages(context)

    def in_flight_bytes(self, context: str = "all") -> int:
        """Bytes sent but not (yet) received under ``context``."""
        return self.total_bytes(context) - self.total_recv_bytes(context)

    def contexts(self) -> set:
        """All context labels that recorded any traffic."""
        with self._lock:
            return {c for (_r, c) in self._messages} | {
                c for (_r, c) in self._recv_messages
            }

    # -- cross-process shard transfer -------------------------------------
    def state(self) -> dict:
        """Picklable snapshot of the raw tallies.

        The process transport ships each worker's tallies back to the
        master as one of these; combine with :meth:`diff_states` (to
        subtract a pre-fork baseline) and :meth:`merge_state` (to fold
        the shard into the caller's trace).
        """
        with self._lock:
            return {
                "messages": dict(self._messages),
                "bytes": dict(self._bytes),
                "copied": dict(self._copied),
                "moved": dict(self._moved),
                "recv_messages": dict(self._recv_messages),
                "recv_bytes": dict(self._recv_bytes),
                "dropped": dict(self._dropped),
                "retried": dict(self._retried),
                "checksum_failures": dict(self._checksum_failures),
                "connect_retries": dict(self._connect_retries),
            }

    @staticmethod
    def diff_states(now: dict, base: dict) -> dict:
        """Tally-wise difference of two :meth:`state` snapshots.

        All tallies are additive, so a forked worker that inherited
        pre-existing counts ships ``diff_states(state(), baseline)``
        and only its own traffic reaches the master.
        """
        out = {}
        for field, tallies in now.items():
            base_tallies = base.get(field, {})
            delta = {}
            for key, value in tallies.items():
                d = value - base_tallies.get(key, 0)
                if d:
                    delta[key] = d
            out[field] = delta
        return out

    def merge_state(self, state: dict) -> None:
        """Add a :meth:`state` (or :meth:`diff_states`) snapshot in place."""
        with self._lock:
            for field, tallies in state.items():
                target = getattr(self, "_" + field)
                for key, value in tallies.items():
                    target[key] += value

    # -- export -----------------------------------------------------------
    def ranks(self, context: str = "all") -> list[int]:
        """Ranks that recorded any traffic under ``context``, sorted."""
        with self._lock:
            out = {r for (r, c) in self._messages if c == context}
            out |= {r for (r, c) in self._recv_messages if c == context}
        return sorted(out)

    def to_dict(self, context: str = "all") -> dict:
        """Plain-dict snapshot of the tallies under ``context``.

        ``{"context", "ranks": {rank: {sent_messages, sent_bytes,
        copied_bytes, moved_bytes, recv_messages, recv_bytes,
        dropped_messages, retried_messages, checksum_failures}},
        "totals": {...same keys...}}`` — JSON-serialisable, for report
        files and the metrics bridge.  The reliability counters are
        run-wide (identical under every context label).
        """
        per_rank = {}
        for r in self.ranks(context):
            per_rank[r] = {
                "sent_messages": self.sent_messages(r, context),
                "sent_bytes": self.sent_bytes(r, context),
                "copied_bytes": self.copied_bytes(r, context),
                "moved_bytes": self.moved_bytes(r, context),
                "recv_messages": self.recv_messages(r, context),
                "recv_bytes": self.recv_bytes(r, context),
                "dropped_messages": self.dropped_messages(r),
                "retried_messages": self.retried_messages(r),
                "checksum_failures": self.checksum_failures(r),
                "connect_retries": self.connect_retries(r),
            }
        totals = {
            "sent_messages": self.total_messages(context),
            "sent_bytes": self.total_bytes(context),
            "copied_bytes": self.total_copied_bytes(context),
            "moved_bytes": self.total_moved_bytes(context),
            "recv_messages": self.total_recv_messages(context),
            "recv_bytes": self.total_recv_bytes(context),
            "dropped_messages": self.dropped_messages(),
            "retried_messages": self.retried_messages(),
            "checksum_failures": self.checksum_failures(),
            "connect_retries": self.connect_retries(),
        }
        return {"context": context, "ranks": per_rank, "totals": totals}

    def as_table(self, context: str = "all", *, title: str | None = None) -> str:
        """Render the per-rank tallies as an aligned report table."""
        from ..util.tables import format_table

        snap = self.to_dict(context)
        # Reliability columns appear only when any fault-tolerance
        # traffic was recorded, keeping the common table compact.
        t = snap["totals"]
        reliability = bool(
            t["dropped_messages"] or t["retried_messages"]
            or t["checksum_failures"] or t["connect_retries"]
        )
        headers = [
            "rank", "sent msgs", "sent bytes", "copied", "moved",
            "recv msgs", "recv bytes",
        ]
        if reliability:
            headers += ["dropped", "retried", "cksum fail", "reconnects"]
        rows = []
        for r, d in sorted(snap["ranks"].items()):
            row = [
                r, d["sent_messages"], d["sent_bytes"], d["copied_bytes"],
                d["moved_bytes"], d["recv_messages"], d["recv_bytes"],
            ]
            if reliability:
                row += [
                    d["dropped_messages"], d["retried_messages"],
                    d["checksum_failures"], d["connect_retries"],
                ]
            rows.append(row)
        total_row = [
            "total", t["sent_messages"], t["sent_bytes"], t["copied_bytes"],
            t["moved_bytes"], t["recv_messages"], t["recv_bytes"],
        ]
        if reliability:
            total_row += [
                t["dropped_messages"], t["retried_messages"],
                t["checksum_failures"], t["connect_retries"],
            ]
        rows.append(total_row)
        return format_table(
            headers, rows,
            title=title or f"Communication tallies (context={context})",
        )
