"""Logical-clock cost accounting for the simulated MPI runtime.

The paper analyses algorithms in the alpha-beta-gamma model (Sec. 2.1):
a message of ``w`` words costs ``alpha + beta * w``; a flop costs
``gamma``.  ``beta`` and ``gamma`` depend on the working precision (a
float32 word is half the bytes and most CPUs retire twice the
single-precision flops), which is exactly the mechanism behind the
paper's "same accuracy at half the precision, up to 2x faster" result.

Each simulated rank carries a :class:`RankClock`.  Communication
primitives stamp messages with the sender's logical time; receivers
advance to ``max(own, sender) + alpha + beta*bytes``, so collective
skew and critical paths are modeled faithfully through the *actual*
message schedule executed by the algorithms (not a closed-form
formula).  Compute kernels add ``flops / rate`` for their precision.

Clocks are optional: when a communicator has no cost model attached the
hooks are no-ops, keeping the functional path lean.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = ["CommCosts", "ComputeRates", "CostModel", "RankClock"]


@dataclass(frozen=True)
class CommCosts:
    """Point-to-point message cost parameters.

    ``alpha`` in seconds per message, ``beta`` in seconds per **byte**
    (so precision-dependence falls out of the payload's itemsize).
    """

    alpha: float = 1.0e-6
    beta: float = 1.0 / 10.0e9  # 10 GB/s default link

    def message_cost(self, nbytes: int) -> float:
        """Modeled seconds to move one ``nbytes`` message."""
        return self.alpha + self.beta * nbytes


@dataclass(frozen=True)
class ComputeRates:
    """Sustained flop rates (flops/second) per working precision.

    Defaults correspond to the paper's Andes observations: ~14% of the
    48/96 GFLOPS per-core peak for the dominant kernels.
    """

    double: float = 6.4e9
    single: float = 13.0e9

    def rate(self, dtype) -> float:
        """Flops/second for a working precision."""
        dt = np.dtype(dtype)
        if dt == np.float32:
            return self.single
        if dt == np.float64:
            return self.double
        raise ValueError(f"no compute rate for dtype {dt}")

    def flop_time(self, flops: int, dtype) -> float:
        """Seconds to retire ``flops`` operations at this precision."""
        return flops / self.rate(dtype)


@dataclass(frozen=True)
class CostModel:
    """Bundle of communication and computation cost parameters."""

    comm: CommCosts = field(default_factory=CommCosts)
    compute: ComputeRates = field(default_factory=ComputeRates)


class RankClock:
    """Per-rank logical time with phase attribution.

    The current phase (set via :meth:`phase`) buckets both compute and
    communication time, mirroring the paper's breakdowns where each
    category (LQ/Gram, SVD/EVD, TTM) includes its own communication.
    """

    __slots__ = ("now", "by_phase", "by_phase_mode", "_phase", "_mode")

    def __init__(self) -> None:
        self.now: float = 0.0
        self.by_phase: dict = defaultdict(float)
        self.by_phase_mode: dict = defaultdict(float)
        self._phase: str = "other"
        self._mode: int | None = None

    def advance(self, seconds: float) -> None:
        """Spend ``seconds`` of local time in the current phase."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self.now += seconds
        self.by_phase[self._phase] += seconds
        self.by_phase_mode[(self._phase, self._mode)] += seconds

    def sync_to(self, other_time: float) -> None:
        """Wait (idle) until ``other_time`` if it is in the future.

        Idle time is charged to the current phase: waiting on a partner
        inside the TSQR butterfly is part of the LQ cost, exactly as a
        wall-clock measurement on the slowest processor would see it.
        """
        if other_time > self.now:
            delta = other_time - self.now
            self.by_phase[self._phase] += delta
            self.by_phase_mode[(self._phase, self._mode)] += delta
            self.now = other_time

    @contextmanager
    def phase(self, name: str, mode: int | None = None):
        """Attribute clock advances inside the block to ``(name, mode)``."""
        prev = (self._phase, self._mode)
        self._phase, self._mode = name, mode
        try:
            yield self
        finally:
            self._phase, self._mode = prev

    def breakdown(self) -> dict[str, float]:
        """Per-phase seconds accumulated so far (a plain-dict copy)."""
        return dict(self.by_phase)
