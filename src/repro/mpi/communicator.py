"""Simulated MPI communicator.

Implements the subset of MPI used by parallel ST-HOSVD — blocking
point-to-point (send/recv/sendrecv) plus the collectives the algorithms
need (barrier, bcast, reduce, allreduce, gather, allgather, scatter,
alltoall, split) — on top of the mailbox layer in
:mod:`repro.mpi.context`.  Ranks run as threads (NumPy releases the GIL,
so local kernels genuinely overlap) launched by
:func:`repro.mpi.launcher.run_spmd`.

Semantics mirror MPI where it matters to the algorithms:

* per-(source, tag, communicator) FIFO message ordering;
* collectives must be entered by every rank of the communicator in the
  same order (enforced cheaply via an internal sequence number used as
  the tag space);
* ``split`` creates disjoint sub-communicators by color, ranked by key.

Array payloads are copied on send, so a sender may immediately reuse its
buffer — matching the blocking-send contract the algorithms assume.

When a :class:`~repro.mpi.costmodel.CostModel` is attached, every
operation advances the rank's logical clock through the *actual* message
schedule, which is what the performance studies measure.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..errors import CommunicatorError
from .context import Envelope, SpmdContext
from .costmodel import RankClock

__all__ = ["Communicator"]

# Internal tag space for collectives: user tags must be >= 0.
_COLLECTIVE_TAG_BASE = -1


def _payload_nbytes(obj: Any) -> int:
    """Modeled wire size of a payload in bytes."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(_payload_nbytes(x) for x in obj) + 16
    if obj is None:
        return 0
    if isinstance(obj, (int, float, np.generic)):
        return 8
    return 64  # nominal envelope for small pickled objects


def _copy_payload(obj: Any) -> Any:
    """Snapshot a payload so sender-side mutation cannot race the receiver."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [_copy_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_copy_payload(x) for x in obj)
    return obj


class Communicator:
    """A group of simulated ranks with MPI-style operations.

    Do not construct directly — use :func:`repro.mpi.run_spmd`, which
    hands each SPMD thread its world communicator, or :meth:`split`.
    """

    def __init__(
        self,
        context: SpmdContext,
        comm_id: int,
        members: Sequence[int],
        rank: int,
        clock: RankClock | None = None,
    ) -> None:
        self._context = context
        self._comm_id = comm_id
        self._members = tuple(members)  # comm rank -> world rank
        self._rank = rank
        self.clock = clock if clock is not None else (
            RankClock() if context.cost_model is not None else None
        )
        self._coll_seq = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._members)

    @property
    def world_rank(self) -> int:
        """Underlying world rank (stable across sub-communicators)."""
        return self._members[self._rank]

    @property
    def context(self) -> SpmdContext:
        return self._context

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Communicator(id={self._comm_id}, rank={self._rank}/{self.size})"

    def _check_rank(self, r: int, what: str) -> None:
        if not 0 <= r < self.size:
            raise CommunicatorError(f"{what} {r} out of range for size-{self.size} communicator")

    # ------------------------------------------------------------------
    # Cost-model hooks
    # ------------------------------------------------------------------
    def account_flops(self, flops: int, dtype=np.float64) -> None:
        """Advance the logical clock by the modeled time of ``flops`` operations."""
        if self.clock is not None and self._context.cost_model is not None:
            rates = self._context.cost_model.compute
            self.clock.advance(rates.flop_time(int(flops), dtype))

    def phase(self, name: str, mode: int | None = None):
        """Phase-attribution context manager (no-op without a cost model)."""
        if self.clock is not None:
            return self.clock.phase(name, mode)
        from contextlib import nullcontext

        return nullcontext()

    def _message_cost(self, payload: Any) -> float:
        model = self._context.cost_model
        if model is None:
            return 0.0
        return model.comm.message_cost(_payload_nbytes(payload))

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking-semantics send (buffered: returns once payload is copied)."""
        self._check_rank(dest, "destination")
        if tag < 0:
            raise CommunicatorError("user tags must be non-negative")
        self._send_internal(obj, dest, tag)

    def _send_internal(self, obj: Any, dest: int, tag: int) -> None:
        self._context.check_alive()
        if self._context.comm_trace is not None:
            self._context.comm_trace.record_send(self.world_rank, _payload_nbytes(obj))
        cost = self._message_cost(obj)
        if self.clock is not None:
            arrival = self.clock.now + cost
            self.clock.advance(cost)
        else:
            arrival = 0.0
        env = Envelope(payload=_copy_payload(obj), send_time=arrival)
        box = self._context.mailbox(self._comm_id, self._members[dest])
        box.put(self._rank, tag, env)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive matched on (source, tag) within this communicator."""
        self._check_rank(source, "source")
        if tag < 0:
            raise CommunicatorError("user tags must be non-negative")
        return self._recv_internal(source, tag)

    def _recv_internal(self, source: int, tag: int) -> Any:
        self._context.check_alive()
        box = self._context.mailbox(self._comm_id, self.world_rank)
        env = box.get(source, tag, self._context.recv_timeout)
        if self.clock is not None:
            self.clock.sync_to(env.send_time)
        return env.payload

    def sendrecv(self, obj: Any, partner: int, tag: int = 0) -> Any:
        """Exchange payloads with ``partner`` (MPI_Sendrecv, symmetric)."""
        self._check_rank(partner, "partner")
        if partner == self._rank:
            return _copy_payload(obj)
        self._send_internal(obj, partner, tag)
        return self._recv_internal(partner, tag)

    # ------------------------------------------------------------------
    # Nonblocking point-to-point
    # ------------------------------------------------------------------
    def isend(self, obj: Any, dest: int, tag: int = 0):
        """Nonblocking send.  Sends are buffered, so the returned request
        is already complete; it exists for mpi4py-style code symmetry."""
        from .request import Request

        self.send(obj, dest, tag)
        return Request.completed(kind="send")

    def irecv(self, source: int, tag: int = 0):
        """Nonblocking receive; complete with ``.wait()`` or poll ``.test()``."""
        from .request import Request

        self._check_rank(source, "source")
        if tag < 0:
            raise CommunicatorError("user tags must be non-negative")
        box = self._context.mailbox(self._comm_id, self.world_rank)

        def complete(blocking: bool):
            if blocking:
                env = box.get(source, tag, self._context.recv_timeout)
            else:
                env = box.try_get(source, tag)
                if env is None:
                    return False, None
            if self.clock is not None:
                self.clock.sync_to(env.send_time)
            return True, env.payload

        return Request("recv", complete_fn=complete)

    # ------------------------------------------------------------------
    # Collectives (all ranks must call in the same order)
    # ------------------------------------------------------------------
    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return _COLLECTIVE_TAG_BASE - self._coll_seq

    def barrier(self) -> None:
        """Dissemination barrier (log P rounds of zero-byte exchanges)."""
        tag = self._next_coll_tag()
        p, r = self.size, self._rank
        k = 1
        while k < p:
            dest = (r + k) % p
            src = (r - k) % p
            self._send_internal(None, dest, tag)
            self._recv_internal(src, tag)
            k *= 2

    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the root's payload on every rank."""
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        p = self.size
        if p == 1:
            return _copy_payload(obj)
        # Shift ranks so the root is virtual rank 0 (MPICH binomial scheme:
        # receive from the parent across the lowest set bit, then forward
        # to children across every lower bit).
        vr = (self._rank - root) % p
        value = obj
        mask = 1
        while mask < p:
            if vr & mask:
                value = self._recv_internal((vr - mask + root) % p, tag)
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vr + mask < p:
                self._send_internal(value, (vr + mask + root) % p, tag)
            mask >>= 1
        return value

    def reduce(
        self,
        value: Any,
        root: int = 0,
        op: Callable[[Any, Any], Any] | None = None,
    ) -> Any:
        """Binomial-tree reduction; returns the result on ``root``, None elsewhere.

        ``op`` defaults to elementwise addition.  It must be associative;
        the combine order is deterministic given the communicator size.
        """
        self._check_rank(root, "root")
        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        tag = self._next_coll_tag()
        p = self.size
        vr = (self._rank - root) % p
        acc = value
        m = 1
        while m < p:
            if vr % (2 * m) == 0:
                src = vr + m
                if src < p:
                    other = self._recv_internal((src + root) % p, tag)
                    acc = op(acc, other)
            elif vr % (2 * m) == m:
                self._send_internal(acc, (vr - m + root) % p, tag)
                acc = None
                break
            m *= 2
        return acc if vr == 0 else None

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any] | None = None) -> Any:
        """Reduce-then-broadcast all-reduce (result on every rank)."""
        reduced = self.reduce(value, root=0, op=op)
        return self.bcast(reduced, root=0)

    def gather(self, obj: Any, root: int = 0) -> list | None:
        """Gather one payload per rank to ``root`` (list indexed by rank)."""
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        if self._rank == root:
            out = [None] * self.size
            out[root] = _copy_payload(obj)
            for r in range(self.size):
                if r != root:
                    out[r] = self._recv_internal(r, tag)
            return out
        self._send_internal(obj, root, tag)
        return None

    def allgather(self, obj: Any) -> list:
        """Gather to rank 0 then broadcast the list to everyone."""
        gathered = self.gather(obj, root=0)
        return self.bcast(gathered, root=0)

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one payload per rank from ``root``."""
        self._check_rank(root, "root")
        tag = self._next_coll_tag()
        if self._rank == root:
            if objs is None or len(objs) != self.size:
                raise CommunicatorError(
                    f"scatter root needs exactly {self.size} payloads"
                )
            for r in range(self.size):
                if r != root:
                    self._send_internal(objs[r], r, tag)
            return _copy_payload(objs[root])
        return self._recv_internal(root, tag)

    def alltoall(self, objs: Sequence[Any]) -> list:
        """Pairwise-exchange all-to-all (the paper's point-to-point algorithm).

        ``objs[r]`` is delivered to rank ``r``; returns the list received,
        indexed by source rank.  Uses ``P - 1`` rounds of shifted
        sendrecv, the schedule assumed by the cost analysis (Sec. 3.5).
        """
        p = self.size
        if len(objs) != p:
            raise CommunicatorError(f"alltoall needs exactly {p} payloads")
        tag = self._next_coll_tag()
        result: list = [None] * p
        result[self._rank] = _copy_payload(objs[self._rank])
        for shift in range(1, p):
            dest = (self._rank + shift) % p
            src = (self._rank - shift) % p
            self._send_internal(objs[dest], dest, tag)
            result[src] = self._recv_internal(src, tag)
        return result

    def reduce_scatter(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any] | None = None,
    ) -> Any:
        """Reduce ``values[q]`` across ranks and deliver slot ``q`` to rank q.

        Pairwise-exchange algorithm (built on :meth:`alltoall`): each
        rank contributes one payload per destination; rank ``q`` returns
        the reduction (deterministically folded in source-rank order) of
        every rank's ``values[q]``.  This is the collective behind the
        parallel TTM's mode-fiber reduction.
        """
        if op is None:
            op = lambda a, b: a + b  # noqa: E731
        parts = self.alltoall(values)
        acc = parts[0]
        for part in parts[1:]:
            acc = op(acc, part)
        return acc

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------
    def split(self, color: int | None, key: int | None = None) -> "Communicator | None":
        """Partition the communicator by ``color`` (MPI_Comm_split).

        Ranks passing the same color form a new communicator, ordered by
        ``(key, old rank)``.  ``color=None`` opts out and returns None.
        Collective: every rank must call.
        """
        self._coll_seq += 1
        table = self._context.split_barrier(self._comm_id, self._coll_seq, self.size)
        sort_key = self._rank if key is None else key

        def combine(contributions: dict[int, tuple]) -> dict:
            groups: dict[int, list] = {}
            for old_rank, (c, k) in contributions.items():
                if c is not None:
                    groups.setdefault(c, []).append((k, old_rank))
            out = {}
            for c, members in groups.items():
                members.sort()
                new_id = self._context.allocate_comm_id()
                out[c] = (new_id, [self._members[old] for _, old in members],
                          [old for _, old in members])
            return out

        result = table.contribute(
            self._rank, (color, sort_key), combine, self._context.recv_timeout
        )
        if color is None:
            return None
        new_id, world_members, old_ranks = result[color]
        new_rank = old_ranks.index(self._rank)
        return Communicator(
            self._context, new_id, world_members, new_rank, clock=self.clock
        )

    def dup(self) -> "Communicator":
        """Duplicate into an isolated message space (MPI_Comm_dup)."""
        child = self.split(color=0)
        assert child is not None
        return child
