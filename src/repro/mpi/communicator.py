"""Simulated MPI communicator with a size-adaptive collective engine.

Implements the subset of MPI used by parallel ST-HOSVD — blocking
point-to-point (send/recv/sendrecv) plus the collectives the algorithms
need (barrier, bcast, reduce, allreduce, gather, allgather, scatter,
alltoall, reduce_scatter, split) — on top of the mailbox layer in
:mod:`repro.mpi.context`.  Ranks run as threads (NumPy releases the GIL,
so local kernels genuinely overlap) launched by
:func:`repro.mpi.launcher.run_spmd`.

Semantics mirror MPI where it matters to the algorithms:

* per-(source, tag, communicator) FIFO message ordering;
* collectives must be entered by every rank of the communicator in the
  same order (enforced cheaply via an internal sequence number used as
  the tag space);
* ``split`` creates disjoint sub-communicators by color, ranked by key.

**Adaptive collectives.**  Each collective dispatches between several
classic algorithms by message size and communicator shape, exactly as
real MPI stacks do: allreduce between reduce+broadcast, recursive
doubling, and the bandwidth-optimal ring; bcast between the binomial
tree and van de Geijn scatter+allgather; allgather between the ring and
Bruck dissemination; reduce_scatter between pairwise alltoall+fold and
the ring shift-accumulate.  Crossover thresholds live in the world's
:class:`~repro.mpi.tuning.CollectiveTuning` and every algorithm can be
forced via the ``algorithm=`` keyword.  All algorithms combine in
deterministic order, so replicated results stay bitwise replicated.

**Zero-copy sends.**  By default array payloads are copied on send, so a
sender may immediately reuse its buffer — the blocking-send contract the
algorithms assume.  Two mechanisms elide the copy in this
shared-address-space runtime: ``send(obj, dest, copy=False)`` *moves*
the payload (ownership transfers; ndarrays in the payload are frozen
read-only so sender-side reuse raises instead of corrupting the
receiver), and arrays the caller has already marked read-only
(``arr.flags.writeable = False``) are moved automatically.  Collectives
move their internal temporaries (ring carries, scatter pieces, partial
sums), so the hot paths perform no hidden snapshots; the per-rank
"bytes copied vs. moved" split is recorded by
:class:`~repro.mpi.tracing.CommTrace`.

When a :class:`~repro.mpi.costmodel.CostModel` is attached, every
operation advances the rank's logical clock through the *actual* message
schedule of the selected algorithm, which is what the performance
studies measure.

**Observability.**  When a :class:`~repro.obs.Tracer` is active on the
rank thread (bound by ``run_spmd(tracer=...)``), every point-to-point
operation and collective records a ``comm.*`` span under the paper's
``PHASE_COMM`` category, tagged with the dispatched algorithm and the
copied/moved byte split of every message it sent; per-algorithm
message-size histograms land in the tracer's metrics registry.  With no
tracer (or a disabled one) each hook is a single thread-local read.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import Any, Callable, Sequence

import numpy as np

from ..errors import CommRevokedError, CommunicatorError, RankFailedError
from ..instrument import PHASE_COMM
from ..obs.recorder import record_event as _record_event
from ..obs.tracer import current_tracer, trace_span
from .context import Envelope, SpmdContext
from .costmodel import RankClock

__all__ = ["Communicator"]

# Internal tag space for collectives: user tags must be >= 0.
_COLLECTIVE_TAG_BASE = -1

# Sentinel marking the scatter+allgather broadcast's metadata header.
# Identity comparison is safe: the runtime is in-process, so the object
# reference itself travels with the message.
_SA_HEADER = object()


def _payload_nbytes(obj: Any) -> int:
    """Modeled wire size of a payload in bytes."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (list, tuple)):
        return sum(_payload_nbytes(x) for x in obj) + 16
    if isinstance(obj, dict):
        return sum(_payload_nbytes(v) for v in obj.values()) + 16
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return (
            sum(
                _payload_nbytes(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            )
            + 16
        )
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, str):
        return len(obj.encode("utf-8"))
    if obj is None:
        return 0
    if isinstance(obj, (int, float, complex, bool, np.generic)):
        return 8
    return 64  # nominal envelope for small pickled objects


def _copy_payload(obj: Any) -> Any:
    """Snapshot a payload so sender-side mutation cannot race the receiver."""
    if isinstance(obj, np.ndarray):
        return obj.copy()
    if isinstance(obj, list):
        return [_copy_payload(x) for x in obj]
    if isinstance(obj, tuple):
        return tuple(_copy_payload(x) for x in obj)
    return obj


def _freeze_payload(obj: Any) -> Any:
    """Freeze every ndarray in a moved payload (returns the payload).

    The move contract's safety net: after ``send(..., copy=False)`` the
    sender's arrays become read-only, so an accidental reuse raises
    ``ValueError`` instead of silently corrupting the receiver.
    """
    if isinstance(obj, np.ndarray):
        if obj.flags.writeable:
            obj.flags.writeable = False
    elif isinstance(obj, (list, tuple)):
        for x in obj:
            _freeze_payload(x)
    return obj


def _is_readonly_array(obj: Any) -> bool:
    """True for ndarrays the caller marked read-only (copy elidable)."""
    return isinstance(obj, np.ndarray) and not obj.flags.writeable


def _payload_checksum(obj: Any, acc: int = 0) -> int:
    """CRC32 digest of a payload's array bytes (resilience checksums).

    Covers exactly the structures fault injection can corrupt (ndarrays,
    possibly nested in lists/tuples) plus raw byte payloads; everything
    else contributes its repr so mismatched scalars are caught too.
    """
    if isinstance(obj, np.ndarray):
        acc = zlib.crc32(np.ascontiguousarray(obj).tobytes(), acc)
        return zlib.crc32(repr(obj.shape).encode(), acc)
    if isinstance(obj, (list, tuple)):
        for x in obj:
            acc = _payload_checksum(x, acc)
        return acc
    if isinstance(obj, (bytes, bytearray)):
        return zlib.crc32(bytes(obj), acc)
    return zlib.crc32(repr(obj).encode(), acc)


def _block_bounds(length: int, nprocs: int, proc: int) -> tuple[int, int]:
    """Exact integer block partition ``[start, stop)`` of ``length``.

    Same uneven-division rule as :func:`repro.dist.distribution.block_range`
    (duplicated here because ``repro.mpi`` sits below ``repro.dist`` in
    the layering): the first ``length mod nprocs`` pieces get one extra
    element, and piece sizes never drift from float rounding.
    """
    base, extra = divmod(length, nprocs)
    start = proc * base + min(proc, extra)
    return start, start + base + (1 if proc < extra else 0)


def _default_op(a: Any, b: Any) -> Any:
    """Elementwise addition, the default reduction operator."""
    return a + b


def _op_name(op: Callable | None) -> str:
    """Stable cross-rank identifier for a reduction operator."""
    if op is None or op is _default_op:
        return "sum"
    return getattr(op, "__qualname__", type(op).__name__)


def _describe_payload(obj: Any) -> tuple:
    """Hashable cross-rank summary of a payload for signature checks.

    Used only for collectives whose semantics require every rank to
    contribute congruent data (reductions): ndarrays compare by
    shape/dtype, scalars and generic objects by type name.
    """
    if isinstance(obj, np.ndarray):
        return ("ndarray", tuple(obj.shape), obj.dtype.name)
    if isinstance(obj, (int, float, complex, bool, np.generic)):
        return ("scalar", type(obj).__name__)
    if isinstance(obj, (list, tuple)):
        return ("seq", len(obj))
    return ("obj", type(obj).__name__)


class Communicator:
    """A group of simulated ranks with MPI-style operations.

    Do not construct directly — use :func:`repro.mpi.run_spmd`, which
    hands each SPMD thread its world communicator, or :meth:`split`.
    """

    def __init__(
        self,
        context: SpmdContext,
        comm_id: int,
        members: Sequence[int],
        rank: int,
        clock: RankClock | None = None,
    ) -> None:
        self._context = context
        self._comm_id = comm_id
        self._members = tuple(members)  # comm rank -> world rank
        self._rank = rank
        self.clock = clock if clock is not None else (
            RankClock() if context.cost_model is not None else None
        )
        self._coll_seq = 0
        # Collective-verification slot counter (independent of the tag
        # space: nested collectives like the tree allreduce consume
        # check slots without consuming tags).
        self._san_seq = 0
        # Resilience state (unused without run_spmd(resilience=...)):
        # per-(partner, tag) send sequence numbers and the receiver's
        # next expected sequence, for duplicate discard and
        # retransmission matching.  Shrink rendezvous counter.
        self._send_seq: dict[tuple[int, int], int] = {}
        self._recv_seq: dict[tuple[int, int], int] = {}
        self._shrink_seq = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        """This process's rank within the communicator."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return len(self._members)

    @property
    def world_rank(self) -> int:
        """Underlying world rank (stable across sub-communicators)."""
        return self._members[self._rank]

    @property
    def comm_id(self) -> int:
        """This communicator's id — the epoch key for fault tolerance."""
        return self._comm_id

    @property
    def context(self) -> SpmdContext:
        return self._context

    @property
    def tuning(self):
        """The world's :class:`~repro.mpi.tuning.CollectiveTuning` table."""
        return self._context.tuning

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Communicator(id={self._comm_id}, rank={self._rank}/{self.size})"

    def _check_rank(self, r: int, what: str) -> None:
        if not 0 <= r < self.size:
            raise CommunicatorError(f"{what} {r} out of range for size-{self.size} communicator")

    # ------------------------------------------------------------------
    # Cost-model hooks
    # ------------------------------------------------------------------
    def account_flops(self, flops: int, dtype=np.float64) -> None:
        """Advance the logical clock by the modeled time of ``flops`` operations."""
        if self.clock is not None and self._context.cost_model is not None:
            rates = self._context.cost_model.compute
            self.clock.advance(rates.flop_time(int(flops), dtype))

    def phase(self, name: str, mode: int | None = None):
        """Phase-attribution context manager (no-op without a cost model)."""
        if self.clock is not None:
            return self.clock.phase(name, mode)
        from contextlib import nullcontext

        return nullcontext()

    # ------------------------------------------------------------------
    # Observability hooks
    # ------------------------------------------------------------------
    def _comm_span(self, op: str, **attrs):
        """A ``comm.<op>`` span on the active tracer (no-op when off)."""
        return trace_span(f"comm.{op}", phase=PHASE_COMM, **attrs)

    @staticmethod
    def _observe_message_size(algorithm: str, nbytes: int) -> None:
        """Feed the per-algorithm message-size histogram (tracing only)."""
        t = current_tracer()
        if t is not None:
            t.metrics.histogram(
                f"comm.message_bytes[{algorithm}]"
            ).observe(nbytes)

    # ------------------------------------------------------------------
    # Sanitizer hooks
    # ------------------------------------------------------------------
    def _sanitize_collective(self, san, op: str, *signature) -> None:
        """Verify this collective call against the other ranks' calls.

        Callers gate on ``self._context.sanitizer is not None`` so the
        sanitize-off path costs one attribute read and a None test per
        collective; this method runs only under an active sanitizer.
        Raises :class:`~repro.errors.CollectiveMismatchError` (and aborts
        the world) when ranks diverge in operation order or signature.
        """
        self._san_seq += 1
        san.check_collective(
            self._comm_id, self._san_seq, self.world_rank,
            op, tuple(signature), self.size,
        )

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0, *, copy: bool = True) -> None:
        """Blocking-semantics send (buffered: returns once payload is staged).

        With ``copy=True`` (default) the payload is snapshotted, so the
        sender may immediately reuse its buffer.  With ``copy=False``
        the payload is *moved*: ownership transfers to the receiver and
        every ndarray in the payload is frozen read-only on the sender's
        side.  Arrays already marked read-only are moved automatically
        even under ``copy=True`` (copy elision).
        """
        self._check_rank(dest, "destination")
        if tag < 0:
            raise CommunicatorError("user tags must be non-negative")
        with self._comm_span("send", dest=dest):
            self._send_internal(obj, dest, tag, copy=copy)

    def _send_internal(self, obj: Any, dest: int, tag: int, *,
                       copy: bool = True, asynchronous: bool = False):
        ctx = self._context
        # Fault-tolerance hooks, ordered cheapest-first: the clean path
        # (no faults, no resilience, nothing revoked) costs two extra
        # attribute reads and an integer compare.  The revocation gate
        # compares against the threshold this rank has *observed* — at
        # a blocking wait, at its own revoke(), or seeded at respawn —
        # never the live global flag, so a survivor is never yanked at
        # an arbitrary op by an asynchronously landing revocation and
        # fault-injection op counters / rng draw streams stay
        # replayable run to run.
        if self._comm_id < ctx.revocation_seen(self.world_rank):
            ctx.check_revoked(self._comm_id)
        if ctx.faults is not None or ctx.resilience is not None:
            # The retry protocol may deliver several times; completion
            # tracking degenerates to "staged once the loop returns".
            self._send_resilient(obj, dest, tag, copy=copy)
            return None
        return self._deliver(obj, dest, tag, copy=copy,
                             asynchronous=asynchronous)

    def _send_resilient(self, obj: Any, dest: int, tag: int, *, copy: bool) -> None:
        """Send through the (possibly lossy) injected link.

        The mailbox layer itself never loses messages, so the lossy link
        is *simulated at the sender*: a dropped attempt just isn't
        delivered, a corrupted attempt delivers a corrupted copy, and
        the stop-and-wait ack/retry protocol a real lossy transport
        needs collapses into a synchronous retry loop whose backoff is
        charged to the logical clock.  Retransmissions reuse the same
        sequence number, which is how receivers discard duplicates and
        corrupted precursors.
        """
        ctx = self._context
        faults = ctx.faults
        res = ctx.resilience
        me_world = self.world_rank
        if faults is not None:
            faults.on_op(me_world)
        nbytes = _payload_nbytes(obj)
        seq = checksum = None
        if res is not None:
            key = (dest, tag)
            seq = self._send_seq.get(key, 0)
            self._send_seq[key] = seq + 1
            if res.checksums:
                checksum = _payload_checksum(obj)
        trace = ctx.comm_trace
        policy = res.retry_policy() if res is not None else None
        attempts = 0
        while True:
            rule = None
            if faults is not None:
                rule = faults.message_outcome(
                    me_world, self._members[dest], tag, nbytes
                )
            if rule is None:
                self._deliver(obj, dest, tag, copy=copy, seq=seq,
                              checksum=checksum)
                return
            if rule.kind == "delay":
                if self.clock is not None:
                    self.clock.advance(rule.delay_seconds)
                self._deliver(obj, dest, tag, copy=copy, seq=seq,
                              checksum=checksum)
                return
            if rule.kind == "duplicate":
                # Deliver the duplicate first from a snapshot so the
                # final delivery keeps the caller's copy/move semantics.
                self._deliver(obj, dest, tag, copy=True, seq=seq,
                              checksum=checksum)
                self._deliver(obj, dest, tag, copy=copy, seq=seq,
                              checksum=checksum)
                return
            if rule.kind == "corrupt":
                bad = faults.corrupted_copy(me_world, obj)
                if bad is None:
                    # Nothing corruptible in the payload; degrade to a
                    # clean delivery.
                    self._deliver(obj, dest, tag, copy=copy, seq=seq,
                                  checksum=checksum)
                    return
                self._deliver(bad, dest, tag, copy=False, seq=seq,
                              checksum=checksum)
                if checksum is None:
                    return  # silent corruption: no checksums, no retry
            else:  # "drop"
                if trace is not None:
                    trace.record_dropped(me_world)
                if res is None:
                    return  # lost for good: no resilience configured
            # The simulated ack timed out (drop) or the receiver will
            # discard the corrupted envelope — retransmit with backoff
            # per the resilience layer's RetryPolicy (uncapped
            # exponential, jitter-free: the charge goes to the logical
            # clock and must replay identically).
            attempts += 1
            if attempts > policy.max_retries:
                raise CommunicatorError(
                    f"message to rank {dest} (tag {tag}) lost after "
                    f"{res.max_retries} retransmissions"
                )
            if trace is not None:
                trace.record_retried(me_world)
            if self.clock is not None:
                self.clock.advance(policy.delay(attempts - 1))

    def _deliver(
        self, obj: Any, dest: int, tag: int, *, copy: bool = True,
        seq: int | None = None, checksum: int | None = None,
        asynchronous: bool = False,
    ):
        self._context.check_alive()
        nbytes = _payload_nbytes(obj)
        moved = (not copy) or _is_readonly_array(obj)
        payload = _freeze_payload(obj) if moved else _copy_payload(obj)
        san = self._context.sanitizer
        origin = None
        if san is not None:
            if moved:
                origin = san.note_move(
                    payload, self.world_rank, "send",
                    dest=self._members[dest],
                )
            else:
                origin = san.note_send(self.world_rank)
        if self._context.comm_trace is not None:
            self._context.comm_trace.record_send(
                self.world_rank, nbytes, copied=0 if moved else nbytes
            )
        tracer = current_tracer()
        if tracer is not None:
            tracer.add_bytes(nbytes, 0 if moved else nbytes)
        # Flight recorder: one structured event per p2p send (peer is
        # the destination *world* rank, matching the postmortem view).
        _record_event(
            "send", peer=self._members[dest], tag=tag, comm_id=self._comm_id,
            nbytes=nbytes, moved=moved,
        )
        model = self._context.cost_model
        cost = model.comm.message_cost(nbytes) if model is not None else 0.0
        if self.clock is not None:
            arrival = self.clock.now + cost
            self.clock.advance(cost)
        else:
            arrival = 0.0
        env = Envelope(
            payload=payload, send_time=arrival, moved=moved, nbytes=nbytes,
            origin=origin, seq=seq, checksum=checksum,
        )
        # The transport seam: the threads backend appends to the shared
        # in-process mailbox, the process backend stages the payload
        # into a shared-memory ring toward the master-resident mailbox.
        if asynchronous:
            return self._context.deliver_async(
                self._comm_id, self._members[dest], self._rank, tag, env
            )
        self._context.deliver(
            self._comm_id, self._members[dest], self._rank, tag, env
        )
        return None

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive matched on (source, tag) within this communicator."""
        self._check_rank(source, "source")
        if tag < 0:
            raise CommunicatorError("user tags must be non-negative")
        with self._comm_span("recv", source=source):
            return self._recv_internal(source, tag)

    def _recv_internal(self, source: int, tag: int) -> Any:
        ctx = self._context
        ctx.check_alive()
        # Observed-threshold gate, not the live flag — see
        # _send_internal for why this keeps fault replay deterministic.
        if self._comm_id < ctx.revocation_seen(self.world_rank):
            ctx.check_revoked(self._comm_id)
        if ctx.faults is not None:
            ctx.faults.on_op(self.world_rank)
        box = ctx.mailbox(self._comm_id, self.world_rank)
        while True:
            env = box.try_get(source, tag)
            if env is None:
                env = self._recv_blocking(box, source, tag)
            if self._validate_envelope(env, source, tag):
                break
        san = self._context.sanitizer
        if san is not None and env.moved:
            san.note_received_move(env.payload, self.world_rank, env.origin)
        if self._context.comm_trace is not None:
            self._context.comm_trace.record_recv(self.world_rank, env.nbytes)
        _record_event(
            "recv", peer=self._members[source], tag=tag,
            comm_id=self._comm_id, nbytes=env.nbytes,
        )
        if self.clock is not None:
            self.clock.sync_to(env.send_time)
        return env.payload

    def _validate_envelope(self, env: Envelope, source: int, tag: int) -> bool:
        """Accept or discard one envelope (checksum + duplicate filter).

        Plain envelopes (``seq is None`` — no resilience at the sender)
        are always accepted: one identity check on the hot path.
        Corrupted envelopes are discarded (counted as checksum
        failures) and duplicates of an already-accepted sequence number
        are dropped silently; the caller loops to await the
        retransmission, which reuses the same sequence number.
        """
        if env.seq is None:
            return True
        ctx = self._context
        if env.checksum is not None and _payload_checksum(env.payload) != env.checksum:
            if ctx.comm_trace is not None:
                ctx.comm_trace.record_checksum_failure(self.world_rank)
            return False
        key = (source, tag)
        expected = self._recv_seq.get(key, 0)
        if env.seq < expected:
            return False  # duplicate of an accepted message
        self._recv_seq[key] = env.seq + 1
        return True

    def _recv_blocking(self, box, source: int, tag: int) -> Envelope:
        """Block for a matched message, watching for dead partners.

        The poll hook runs (outside the mailbox lock) whenever the wait
        wakes without a match: it raises
        :class:`~repro.errors.RankFailedError` once the awaited rank has
        finalized or died with nothing left in the queue — so a receive
        that can never be satisfied (including the exchanges inside
        ``barrier``) fails fast instead of deadlocking — and, under an
        active sanitizer, drives the wait-for-graph deadlock watchdog.
        """
        ctx = self._context
        if getattr(ctx, "remote_recv", False):
            # Process backend: the canonical blocked-receive protocol —
            # failed-partner fast-fail, revocation checks, sanitizer
            # wait-graph bookkeeping — runs master-side inside the RPC
            # this proxy get issues; the worker just blocks on the reply.
            try:
                return box.get(source, tag, ctx.recv_timeout)
            except CommRevokedError:
                # A blocking wait is a deterministic observation point:
                # arm this rank's entry-point revocation checks.
                ctx.note_revocation_seen(self.world_rank)
                raise
        san = ctx.sanitizer
        me = self.world_rank
        src_world = self._members[source]

        def poll() -> None:
            status = ctx.rank_status(src_world)
            # On a revoked epoch, raise only once the awaited message
            # can never arrive — the partner is dead, finalized, or off
            # recovering.  A partner still making progress gets to
            # deliver, so consume-vs-raise is decided by program state,
            # not by when the asynchronous revocation landed.
            if (self._comm_id < ctx.revoked_below
                    and not box.has(source, tag)
                    and (status != "running"
                         or ctx.is_recovering(src_world))):
                ctx.note_revocation_seen(me)
                ctx.check_revoked(self._comm_id)
            if status != "running" and not box.has(source, tag):
                if san is not None:
                    diag = san.describe_failed_partner(
                        me, src_world, source, tag, status, box,
                        expected=ctx.faults is not None and status == "failed",
                    )
                    raise RankFailedError(diag.message, diagnostic=diag)
                where = (
                    f"recv(source={source}, tag={tag})" if tag >= 0
                    else f"a collective exchange with rank {source}"
                )
                raise RankFailedError(
                    f"rank {me} blocked in {where} "
                    f"but rank {src_world} already {status}"
                )
            if san is not None:
                san.on_stall(me)

        interval = (
            san.watchdog_interval if san is not None
            else ctx.fault_poll_interval
        )
        if san is not None:
            san.begin_wait(me, src_world, source, tag, self._comm_id, box)
        try:
            poll()  # the partner may already be gone
            return box.get(
                source, tag, ctx.recv_timeout, poll=poll, interval=interval
            )
        finally:
            if san is not None:
                san.end_wait(me)

    def sendrecv(self, obj: Any, partner: int, tag: int = 0, *, copy: bool = True) -> Any:
        """Exchange payloads with ``partner`` (MPI_Sendrecv, symmetric).

        ``partner`` must be a valid rank of this communicator and
        ``tag`` non-negative — both are validated up front with a
        descriptive :class:`~repro.errors.CommunicatorError` instead of
        an ``IndexError`` or a hang inside the exchange.
        """
        self._check_rank(partner, "sendrecv partner")
        if tag < 0:
            raise CommunicatorError(
                f"user tags must be non-negative, got tag={tag} in sendrecv"
            )
        if partner == self._rank:
            return _freeze_payload(obj) if not copy else _copy_payload(obj)
        with self._comm_span("sendrecv", partner=partner):
            self._send_internal(obj, partner, tag, copy=copy)
            return self._recv_internal(partner, tag)

    # ------------------------------------------------------------------
    # Nonblocking point-to-point
    # ------------------------------------------------------------------
    def isend(self, obj: Any, dest: int, tag: int = 0, *, copy: bool = True):
        """Nonblocking send; completion means the payload is staged.

        On the threads backend staging *is* delivery (a mailbox
        append), so the request comes back already complete.  On the
        process backend the payload still has to travel through the
        shared-memory ring to the master, and the request completes
        only once that buffer handoff finishes — ``test()`` reports the
        true staging state instead of pretending the send was
        instantaneous.  Either way, completion never implies the
        receiver has *matched* the message (MPI buffered-send
        semantics).
        """
        from .request import Request

        self._check_rank(dest, "destination")
        if tag < 0:
            raise CommunicatorError("user tags must be non-negative")
        with self._comm_span("isend", dest=dest):
            token = self._send_internal(
                obj, dest, tag, copy=copy, asynchronous=True
            )
        if token is None:
            return Request.completed(kind="send")
        return Request.from_token(token, kind="send")

    def irecv(self, source: int, tag: int = 0):
        """Nonblocking receive; complete with ``.wait()`` or poll ``.test()``."""
        from .request import Request

        self._check_rank(source, "source")
        if tag < 0:
            raise CommunicatorError("user tags must be non-negative")
        box = self._context.mailbox(self._comm_id, self.world_rank)

        def complete(blocking: bool):
            while True:
                env = box.try_get(source, tag)
                if env is None:
                    if not blocking:
                        return False, None
                    env = self._recv_blocking(box, source, tag)
                if self._validate_envelope(env, source, tag):
                    break
            if self.clock is not None:
                self.clock.sync_to(env.send_time)
            return True, env.payload

        return Request("recv", complete_fn=complete)

    # ------------------------------------------------------------------
    # Collectives (all ranks must call in the same order)
    # ------------------------------------------------------------------
    def _next_coll_tag(self) -> int:
        self._coll_seq += 1
        return _COLLECTIVE_TAG_BASE - self._coll_seq

    def barrier(self) -> None:
        """Dissemination barrier (log P rounds of zero-byte exchanges).

        If a participating rank has already finalized or died, the
        exchange raises :class:`~repro.errors.RankFailedError` on the
        surviving ranks instead of deadlocking.
        """
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(san, "barrier")
        tag = self._next_coll_tag()
        p, r = self.size, self._rank
        with self._comm_span("barrier", algorithm="dissemination"):
            k = 1
            while k < p:
                dest = (r + k) % p
                src = (r - k) % p
                self._send_internal(None, dest, tag)
                self._recv_internal(src, tag)
                k *= 2

    # -- broadcast ------------------------------------------------------
    def bcast(self, obj: Any, root: int = 0, algorithm: str | None = None) -> Any:
        """Broadcast; returns the root's payload on every rank.

        Dispatches by payload size: binomial tree for short messages,
        van de Geijn scatter+allgather (~2x payload total on the
        critical path instead of ``payload * log P``) for ndarrays at
        and above the tuned threshold.  Force with
        ``algorithm='binomial' | 'scatter_allgather'`` (all ranks must
        pass the same value).  Arrays returned by the zero-copy binomial
        path may be read-only (they are shared, replicated data).
        """
        self._check_rank(root, "root")
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(
                san, "bcast", ("root", root), ("algorithm", algorithm)
            )
        tag = self._next_coll_tag()
        p = self.size
        if p == 1:
            return _copy_payload(obj)
        with self._comm_span("bcast", root=root) as sp:
            if self._rank == root:
                algo = algorithm or self.tuning.bcast_algorithm(p, obj)
                nbytes = _payload_nbytes(obj)
                if sp is not None:
                    sp.set(algorithm=algo, payload_bytes=nbytes)
                    self._observe_message_size(f"bcast:{algo}", nbytes)
                if algo == "scatter_allgather":
                    arr = np.asarray(obj)
                    header = (_SA_HEADER, arr.shape, arr.dtype.name)
                    self._bcast_binomial(header, root, tag)
                    return self._bcast_scatter_allgather(arr, root)
                if algo != "binomial":
                    raise CommunicatorError(f"unknown bcast algorithm {algo!r}")
                return self._bcast_binomial(obj, root, tag)
            value = self._bcast_binomial(None, root, tag)
            if (
                isinstance(value, tuple)
                and len(value) == 3
                and value[0] is _SA_HEADER
            ):
                if sp is not None:
                    sp.set(algorithm="scatter_allgather")
                _, shape, dtype_name = value
                return self._bcast_scatter_allgather(
                    None, root, shape=shape, dtype=np.dtype(dtype_name)
                )
            if sp is not None:
                sp.set(algorithm="binomial")
            return value

    def _bcast_binomial(self, value: Any, root: int, tag: int) -> Any:
        """Binomial-tree broadcast (MPICH scheme, zero-copy forwarding)."""
        p = self.size
        # Shift ranks so the root is virtual rank 0 (receive from the
        # parent across the lowest set bit, then forward to children
        # across every lower bit).
        vr = (self._rank - root) % p
        owned = False  # do we own `value` (may move it on forward)?
        mask = 1
        while mask < p:
            if vr & mask:
                value = self._recv_internal((vr - mask + root) % p, tag)
                owned = True
                break
            mask <<= 1
        mask >>= 1
        while mask > 0:
            if vr + mask < p:
                dest = (vr + mask + root) % p
                # Root respects the caller's buffer (copy unless the
                # caller marked it read-only); forwarded payloads are
                # owned by this rank and move for free.
                self._send_internal(value, dest, tag, copy=not owned)
            mask >>= 1
        return value

    def _bcast_scatter_allgather(
        self,
        arr: np.ndarray | None,
        root: int,
        shape: tuple | None = None,
        dtype: np.dtype | None = None,
    ) -> np.ndarray:
        """van de Geijn long-message broadcast: scatter + ring allgather."""
        p = self.size
        scatter_tag = self._next_coll_tag()
        gather_tag = self._next_coll_tag()
        if self._rank == root:
            assert arr is not None
            shape, dtype = arr.shape, arr.dtype
            flat = np.ascontiguousarray(arr.reshape(-1))
            pieces = [
                np.ascontiguousarray(flat[q0:q1])
                for q0, q1 in (
                    _block_bounds(flat.size, p, q) for q in range(p)
                )
            ]
            mine = self._scatter_internal(pieces, root, scatter_tag, copy=False)
        else:
            mine = self._scatter_internal(None, root, scatter_tag, copy=False)
        slots = self._allgather_ring(mine, gather_tag, copy=False)
        out = np.concatenate(slots) if slots else np.empty(0, dtype=dtype)
        return out.astype(dtype, copy=False).reshape(shape)

    # -- reduce / allreduce --------------------------------------------
    def reduce(
        self,
        value: Any,
        root: int = 0,
        op: Callable[[Any, Any], Any] | None = None,
    ) -> Any:
        """Binomial-tree reduction; returns the result on ``root``, None elsewhere.

        ``op`` defaults to elementwise addition.  It must be associative;
        the combine order is deterministic given the communicator size.
        """
        self._check_rank(root, "root")
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(
                san, "reduce", ("root", root), ("op", _op_name(op)),
                ("payload", _describe_payload(value)),
            )
        if op is None:
            op = _default_op
        tag = self._next_coll_tag()
        p = self.size
        with self._comm_span("reduce", algorithm="binomial", root=root):
            return self._reduce_binomial(value, root, op, tag)

    def _reduce_binomial(self, value: Any, root: int, op, tag: int) -> Any:
        p = self.size
        vr = (self._rank - root) % p
        acc = value
        owned = False  # acc is a fresh combine result (movable)
        m = 1
        while m < p:
            if vr % (2 * m) == 0:
                src = vr + m
                if src < p:
                    other = self._recv_internal((src + root) % p, tag)
                    acc = op(acc, other)
                    owned = True
            elif vr % (2 * m) == m:
                self._send_internal(acc, (vr - m + root) % p, tag, copy=not owned)
                acc = None
                break
            m *= 2
        return acc if vr == 0 else None

    def allreduce(
        self,
        value: Any,
        op: Callable[[Any, Any], Any] | None = None,
        algorithm: str | None = None,
    ) -> Any:
        """All-reduce (result on every rank), size-adaptively dispatched.

        ndarray payloads use recursive doubling (``ceil(log2 P)``
        exchange rounds — the short-message champion) below the tuned
        ring threshold and the bandwidth-optimal ring (reduce-scatter +
        allgather, ``2 (P-1)/P`` of the payload) above it; generic
        payloads fall back to reduce+broadcast.  Force with
        ``algorithm='tree' | 'recursive_doubling' | 'ring'``.  The
        combine order of each algorithm is deterministic, so results are
        bitwise replicated across ranks.
        """
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(
                san, "allreduce", ("algorithm", algorithm),
                ("op", _op_name(op)), ("payload", _describe_payload(value)),
            )
        algo = algorithm or self.tuning.allreduce_algorithm(self.size, value)
        with self._comm_span("allreduce", algorithm=algo) as sp:
            if sp is not None:
                self._observe_message_size(
                    f"allreduce:{algo}", _payload_nbytes(value)
                )
            if algo == "tree":
                reduced = self.reduce(value, root=0, op=op)
                return self.bcast(reduced, root=0)
            if op is None:
                op = _default_op
            if algo == "recursive_doubling":
                return self._allreduce_recursive_doubling(
                    value, op, self._next_coll_tag()
                )
            if algo == "ring":
                return self._allreduce_ring(value, op)
            raise CommunicatorError(f"unknown allreduce algorithm {algo!r}")

    def _allreduce_recursive_doubling(self, value: Any, op, tag: int) -> Any:
        """Recursive-doubling allreduce (deterministic combine order).

        Non-power-of-two sizes use the standard fold: the first ``2r``
        ranks pre-combine pairwise so a power-of-two subset runs the
        butterfly, then results fan back out.
        """
        p, me = self.size, self._rank
        if _is_readonly_array(value):
            acc = value  # copy elision: frozen input can be shared as-is
        else:
            acc = np.array(value, copy=True)
        if p == 1:
            return acc
        p2 = 1 << (p.bit_length() - 1)
        rem = p - p2

        # Fold phase: ranks [p2, p) send into [0, rem).
        if me >= p2:
            self._send_internal(acc, me - p2, tag, copy=False)
            active = False
        else:
            active = True
            if me < rem:
                other = self._recv_internal(me + p2, tag)
                acc = op(acc, other)

        if active:
            mask = 1
            while mask < p2:
                partner = me ^ mask
                self._send_internal(acc, partner, tag, copy=False)
                other = self._recv_internal(partner, tag)
                # Deterministic order: lower rank's contribution first.
                acc = op(other, acc) if partner < me else op(acc, other)
                mask <<= 1

        # Unfold phase.
        if me >= p2:
            acc = self._recv_internal(me - p2, tag)
        elif me < rem:
            self._send_internal(acc, me + p2, tag, copy=False)
        return acc

    def _allreduce_ring(self, value: Any, op) -> np.ndarray:
        """Ring allreduce: reduce-scatter then allgather of equal blocks.

        Bandwidth-optimal for long messages: each rank moves
        ``2 (P-1)/P`` of the payload in ``2 (P-1)`` latency rounds.
        """
        p = self.size
        rs_tag = self._next_coll_tag()
        ag_tag = self._next_coll_tag()
        arr = np.asarray(value)
        shape, dtype = arr.shape, arr.dtype
        flat = np.ascontiguousarray(arr.reshape(-1))
        blocks = [
            flat[q0:q1]
            for q0, q1 in (_block_bounds(flat.size, p, q) for q in range(p))
        ]
        mine = self._reduce_scatter_ring(blocks, op, rs_tag, copy=True)
        slots = self._allgather_ring(np.ascontiguousarray(mine), ag_tag, copy=False)
        return np.concatenate(slots).astype(dtype, copy=False).reshape(shape)

    # -- gather / allgather / scatter ----------------------------------
    def gather(self, obj: Any, root: int = 0) -> list | None:
        """Gather one payload per rank to ``root`` (list indexed by rank)."""
        self._check_rank(root, "root")
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(san, "gather", ("root", root))
        tag = self._next_coll_tag()
        with self._comm_span("gather", algorithm="linear", root=root):
            if self._rank == root:
                out = [None] * self.size
                out[root] = _copy_payload(obj)
                for r in range(self.size):
                    if r != root:
                        out[r] = self._recv_internal(r, tag)
                return out
            self._send_internal(obj, root, tag)
            return None

    def allgather(self, obj: Any, algorithm: str | None = None) -> list:
        """All-gather one payload per rank (list indexed by rank).

        Dispatches by communicator size: ring shifts (``P-1`` rounds of
        one slot) on small communicators, Bruck dissemination
        (``ceil(log2 P)`` rounds of doubling block counts) at scale —
        both schedules are balanced, so no rank is a hotspot, unlike the
        legacy gather-to-root + broadcast (force it with
        ``algorithm='gather_bcast'``; ``'ring'`` and ``'bruck'`` force
        the others).
        """
        p = self.size
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(
                san, "allgather", ("algorithm", algorithm)
            )
        algo = algorithm or self.tuning.allgather_algorithm(p)
        with self._comm_span("allgather", algorithm=algo) as sp:
            if sp is not None:
                self._observe_message_size(
                    f"allgather:{algo}", _payload_nbytes(obj)
                )
            if algo == "gather_bcast":
                gathered = self.gather(obj, root=0)
                return self.bcast(gathered, root=0)
            tag = self._next_coll_tag()
            if p == 1:
                return [_copy_payload(obj)]
            if algo == "ring":
                return self._allgather_ring(obj, tag, copy=True)
            if algo == "bruck":
                return self._allgather_bruck(obj, tag, copy=True)
            raise CommunicatorError(f"unknown allgather algorithm {algo!r}")

    def _allgather_ring(self, obj: Any, tag: int, *, copy: bool) -> list:
        """Ring allgather: P-1 shifts, each forwarding one received slot."""
        p, me = self.size, self._rank
        slots: list = [None] * p
        slots[me] = _copy_payload(obj) if copy else _freeze_payload(obj)
        if p == 1:
            return slots
        right = (me + 1) % p
        left = (me - 1) % p
        carry = slots[me]
        for step in range(p - 1):
            # Forwarded slots are owned by this rank: move them.
            self._send_internal(carry, right, tag, copy=False)
            carry = self._recv_internal(left, tag)
            slots[(me - step - 1) % p] = carry
        return slots

    def _allgather_bruck(self, obj: Any, tag: int, *, copy: bool) -> list:
        """Bruck dissemination allgather: ``ceil(log2 P)`` doubling rounds.

        Round ``k`` sends the ``min(2^k, P - 2^k)`` blocks held so far
        to rank ``me - 2^k`` and receives as many from ``me + 2^k`` —
        latency-optimal with the same total volume as the ring.
        """
        p, me = self.size, self._rank
        have: list = [_copy_payload(obj) if copy else _freeze_payload(obj)]
        k = 1
        while k < p:
            count = min(k, p - k)
            dest = (me - k) % p
            src = (me + k) % p
            self._send_internal(have[:count], dest, tag, copy=False)
            have.extend(self._recv_internal(src, tag))
            k <<= 1
        # have[j] holds rank (me + j) % p's block; undo the rotation.
        return [have[(r - me) % p] for r in range(p)]

    def scatter(self, objs: Sequence[Any] | None, root: int = 0) -> Any:
        """Scatter one payload per rank from ``root``."""
        self._check_rank(root, "root")
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(san, "scatter", ("root", root))
        tag = self._next_coll_tag()
        if self._rank == root and (objs is None or len(objs) != self.size):
            got = "None" if objs is None else f"{len(objs)}"
            raise CommunicatorError(
                f"scatter root on a size-{self.size} communicator needs "
                f"exactly {self.size} payloads, got {got}"
            )
        with self._comm_span("scatter", algorithm="linear", root=root):
            return self._scatter_internal(objs, root, tag, copy=True)

    def _scatter_internal(
        self, objs: Sequence[Any] | None, root: int, tag: int, *, copy: bool
    ) -> Any:
        if self._rank == root:
            assert objs is not None
            for r in range(self.size):
                if r != root:
                    self._send_internal(objs[r], r, tag, copy=copy)
            own = objs[root]
            return _copy_payload(own) if copy else _freeze_payload(own)
        return self._recv_internal(root, tag)

    # -- alltoall / reduce_scatter -------------------------------------
    def alltoall(self, objs: Sequence[Any], *, copy: bool = True) -> list:
        """Pairwise-exchange all-to-all (the paper's point-to-point algorithm).

        ``objs[r]`` is delivered to rank ``r``; returns the list received,
        indexed by source rank.  Uses ``P - 1`` rounds of shifted
        sendrecv, the schedule assumed by the cost analysis (Sec. 3.5).
        ``copy=False`` moves the payloads (the caller relinquishes them;
        their ndarrays are frozen read-only).
        """
        p = self.size
        try:
            nobjs = len(objs)
        except TypeError:
            raise CommunicatorError(
                f"alltoall needs a sequence of {p} payloads (one per "
                f"rank), got {type(objs).__name__}"
            ) from None
        if nobjs != p:
            raise CommunicatorError(
                f"alltoall on a size-{p} communicator needs exactly {p} "
                f"payloads (one per destination rank), got {nobjs}"
            )
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(san, "alltoall", ("nitems", p))
        tag = self._next_coll_tag()
        with self._comm_span("alltoall", algorithm="pairwise") as sp:
            if sp is not None:
                self._observe_message_size(
                    "alltoall:pairwise", _payload_nbytes(list(objs))
                )
            result: list = [None] * p
            own = objs[self._rank]
            result[self._rank] = (
                _copy_payload(own) if copy else _freeze_payload(own)
            )
            for shift in range(1, p):
                dest = (self._rank + shift) % p
                src = (self._rank - shift) % p
                self._send_internal(objs[dest], dest, tag, copy=copy)
                result[src] = self._recv_internal(src, tag)
            return result

    def reduce_scatter(
        self,
        values: Sequence[Any],
        op: Callable[[Any, Any], Any] | None = None,
        algorithm: str | None = None,
        *,
        copy: bool = True,
    ) -> Any:
        """Reduce ``values[q]`` across ranks and deliver slot ``q`` to rank q.

        ndarray payloads dispatch to the ring shift-accumulate algorithm
        (``P-1`` rounds moving one partially-reduced slot — nothing to
        fold afterwards, and every forwarded partial sum is moved, not
        copied); generic payloads use the pairwise-exchange alltoall +
        deterministic source-order fold.  Force with
        ``algorithm='alltoall' | 'ring'``.  ``copy=False`` moves the
        input payloads (the caller relinquishes them).  This is the
        collective behind the parallel TTM's mode-fiber reduction.
        """
        p = self.size
        try:
            nvals = len(values)
        except TypeError:
            raise CommunicatorError(
                f"reduce_scatter needs a sequence of {p} payloads (one "
                f"per rank), got {type(values).__name__}"
            ) from None
        if nvals != p:
            raise CommunicatorError(
                f"reduce_scatter on a size-{p} communicator needs exactly "
                f"{p} payloads (one slot per rank), got {nvals}"
            )
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(
                san, "reduce_scatter", ("algorithm", algorithm),
                ("op", _op_name(op)),
                ("payload", tuple(_describe_payload(v) for v in values)),
            )
        if op is None:
            op = _default_op
        algo = algorithm or self.tuning.reduce_scatter_algorithm(p, values)
        with self._comm_span("reduce_scatter", algorithm=algo) as sp:
            if sp is not None:
                self._observe_message_size(
                    f"reduce_scatter:{algo}", _payload_nbytes(list(values))
                )
            if algo == "alltoall":
                parts = self.alltoall(values, copy=copy)
                acc = parts[0]
                for part in parts[1:]:
                    acc = op(acc, part)
                return acc
            if algo != "ring":
                raise CommunicatorError(
                    f"unknown reduce_scatter algorithm {algo!r}"
                )
            return self._reduce_scatter_ring(
                values, op, self._next_coll_tag(), copy=copy
            )

    def _reduce_scatter_ring(
        self, values: Sequence[Any], op, tag: int, *, copy: bool
    ) -> Any:
        """Ring reduce-scatter: P-1 shift-accumulate rounds of one slot each.

        Slot ``q`` ends on rank ``q``, reduced over every rank's
        ``values[q]``; partial sums travel the ring and are always moved
        (each is a fresh combine result).
        """
        p, me = self.size, self._rank
        if not copy:
            # Move semantics: the caller relinquishes every piece, not
            # just the ones that happen to travel; freeze them all.
            for v in values:
                _freeze_payload(v)
        if p == 1:
            own = values[0]
            return _copy_payload(own) if copy else own
        right = (me + 1) % p
        left = (me - 1) % p
        # Slot j originates at rank j+1 and travels the ring once, each
        # rank folding in its contribution; after P-1 rounds rank j
        # holds the full reduction of slot j.  At step s this rank sends
        # its partial for slot (me-1-s) and receives/extends the one for
        # (me-2-s).
        carry = None
        for s in range(p - 1):
            if s == 0:
                self._send_internal(values[(me - 1) % p], right, tag, copy=copy)
            else:
                self._send_internal(carry, right, tag, copy=False)
            incoming = self._recv_internal(left, tag)
            carry = op(incoming, values[(me - 2 - s) % p])
        return carry

    # ------------------------------------------------------------------
    # Communicator management
    # ------------------------------------------------------------------
    def split(self, color: int | None, key: int | None = None) -> "Communicator | None":
        """Partition the communicator by ``color`` (MPI_Comm_split).

        Ranks passing the same color form a new communicator, ordered by
        ``(key, old rank)``.  ``color=None`` opts out and returns None.
        Collective: every rank must call.
        """
        san = self._context.sanitizer
        if san is not None:
            self._sanitize_collective(san, "split")
        self._coll_seq += 1
        sort_key = self._rank if key is None else key
        with self._comm_span("split"):
            return self._split_internal(color, sort_key)

    def _split_internal(self, color, sort_key) -> "Communicator | None":
        # The rendezvous (grouping, ordering, comm-id allocation) runs
        # wherever the world state lives — in-process for the threads
        # backend, on the master for the process backend — so new
        # communicator ids are allocated exactly once per color group.
        result = self._context.split_rendezvous(
            self._comm_id, self._coll_seq, self.size,
            self._rank, (color, sort_key), list(self._members),
            self.world_rank,
        )
        if color is None:
            return None
        new_id, world_members, old_ranks = result[color]
        new_rank = old_ranks.index(self._rank)
        return Communicator(
            self._context, new_id, world_members, new_rank, clock=self.clock
        )

    def dup(self) -> "Communicator":
        """Duplicate into an isolated message space (MPI_Comm_dup)."""
        child = self.split(color=0)
        assert child is not None
        return child

    # ------------------------------------------------------------------
    # Fault tolerance (ULFM-style revoke / shrink)
    # ------------------------------------------------------------------
    def revoke(self) -> None:
        """Poison the current communicator epoch (MPI_Comm_revoke).

        Call after catching :class:`~repro.errors.RankFailedError`:
        every operation on *any* communicator created so far — this
        one, the world, fiber sub-communicators — raises
        :class:`~repro.errors.CommRevokedError` once the executing rank
        *observes* the revocation: immediately for the revoking rank
        (and for replacements, which respawn with it pre-observed), and
        at the next blocking wait that can no longer be satisfied for
        everyone else.  That breaks survivors out of exchanges with
        partners that have left for recovery without ever interrupting
        a rank at a timing-dependent op — fault traces replay
        identically.  Communicators created after the subsequent
        :meth:`shrink` / :meth:`replace` are unaffected.  Idempotent.
        """
        self._context.revoke_current(
            f"rank {self.world_rank} revoked the epoch after a failure",
            world_rank=self.world_rank,
        )

    def shrink(self) -> "Communicator":
        """Dense-ranked communicator of the survivors (MPI_Comm_shrink).

        Collective over the *surviving* members of this communicator —
        every survivor must call it, typically right after
        :meth:`revoke` in a recovery handler.  Survivors keep their
        relative order; the result is a fresh epoch on which all
        operations (including the sanitizer's collective matching, which
        keys on the new communicator id and size) behave normally.
        Unlike every other method, it works on a revoked communicator —
        that is its entire point.
        """
        ctx = self._context
        self._shrink_seq += 1
        members = self._members
        with self._comm_span("shrink"):
            # Survivor discovery and the fresh-epoch comm-id allocation
            # are one authoritative computation where the world state
            # lives (master-side under the process backend).
            new_id, ordered_old = ctx.shrink_rendezvous(
                self._comm_id, self._shrink_seq,
                self._rank, self.world_rank, list(members),
            )
        new_members = [members[i] for i in ordered_old]
        new_rank = ordered_old.index(self._rank)
        return Communicator(
            ctx, new_id, new_members, new_rank, clock=self.clock
        )

    def replace(self) -> "Communicator":
        """Full-world communicator with failed ranks respawned in place.

        The elastic alternative to :meth:`shrink`: instead of
        densifying the survivors, the rendezvous asks the transport to
        relaunch every failed rank at its original world position, and
        completes only once the *entire* original world — survivors
        plus replacements — has joined.  The result always spans world
        ranks ``0..world_size-1`` with identity ranking, so a processor
        grid keeps its original shape across the failure.

        Collective over survivors and replacements alike; like
        :meth:`shrink` it works on a revoked communicator.  A freshly
        respawned replacement reaches this rendezvous by replaying its
        rank program from the top: its first operation on the revoked
        world epoch raises :class:`~repro.errors.CommRevokedError`,
        which the recovery loop treats like any other failure.
        """
        ctx = self._context
        with self._comm_span("replace"):
            new_id, _round = ctx.replace_rendezvous(self.world_rank)
        members = list(range(ctx.world_size))
        return Communicator(
            ctx, new_id, members, self.world_rank, clock=self.clock
        )
