"""Size-adaptive collective-algorithm selection (the dispatch table).

Real MPI implementations switch collective algorithms by message size
and communicator shape (MPICH's ``MPIR_*_intra_auto``, Open MPI's
``coll/tuned``); the paper's cost analysis (Sec. 3.5) likewise assumes
latency- or bandwidth-appropriate schedules per role.  This module
captures those decisions in one calibratable object:

* **allreduce** — recursive doubling for short messages (``ceil(log2 P)``
  latency, the short-message champion); ring reduce-scatter + allgather
  above :attr:`~CollectiveTuning.allreduce_ring_min_bytes` (moves
  ``2 (P-1)/P`` of the payload, bandwidth-optimal); reduce+broadcast
  only for payloads the array algorithms cannot slice.
* **bcast** — binomial tree for short messages; van de Geijn
  scatter+allgather above :attr:`~CollectiveTuning.bcast_scatter_min_bytes`
  once the communicator is big enough for the pieces to pay off.
* **allgather** — Bruck's dissemination algorithm (``ceil(log2 P)``
  rounds) at :attr:`~CollectiveTuning.allgather_bruck_min_p` ranks and
  beyond, ring otherwise; the textbook gather-to-root + broadcast stays
  available as a forced algorithm but is never auto-selected (the root
  serializes ``P`` messages and becomes a hotspot).
* **reduce_scatter** — ring shift-accumulate for ndarray payloads
  (partial sums travel, nothing is folded after the fact); the
  pairwise-exchange alltoall + fold otherwise.

Default thresholds are seeded from the modeled Andes crossovers in
``benchmarks/reports/collectives_*_crossover.txt`` (ring allreduce and
scatter+allgather broadcast cross the log-P algorithms between ~100 KiB
and ~1 MiB for P in 4..256).  Override by attaching a custom instance to
the world: ``run_spmd(fn, P, tuning=CollectiveTuning(...))``.

Decisions are pure functions of ``(P, payload)`` so every rank of a
communicator reaches the same choice from its own arguments — the SPMD
requirement that makes dispatch deadlock-free (payload shapes must match
across ranks, as MPI already requires).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

__all__ = ["CollectiveTuning"]


def _nbytes(obj: Any) -> int:
    """Payload size used for dispatch (ndarray only; 0 otherwise)."""
    return obj.nbytes if isinstance(obj, np.ndarray) else 0


@dataclass(frozen=True)
class CollectiveTuning:
    """Crossover thresholds for size/shape-adaptive collective dispatch.

    All sizes are bytes of the (per-rank) payload; all thresholds are
    inclusive lower bounds for the long-message algorithm.
    """

    #: allreduce switches recursive doubling -> ring at this payload size.
    allreduce_ring_min_bytes: int = 1 << 18
    #: bcast switches binomial tree -> scatter+allgather at this size ...
    bcast_scatter_min_bytes: int = 1 << 19
    #: ... provided the communicator has at least this many ranks.
    bcast_scatter_min_p: int = 4
    #: allgather uses Bruck dissemination at and above this many ranks.
    allgather_bruck_min_p: int = 8
    #: reduce_scatter uses the ring at and above this total payload size.
    reduce_scatter_ring_min_bytes: int = 0

    def allreduce_algorithm(self, p: int, value: Any) -> str:
        """Pick ``'tree' | 'recursive_doubling' | 'ring'`` for a payload."""
        if not isinstance(value, np.ndarray):
            return "tree"  # generic payloads cannot be sliced or exchanged
        if p > 1 and value.nbytes >= self.allreduce_ring_min_bytes:
            return "ring"
        return "recursive_doubling"

    def bcast_algorithm(self, p: int, obj: Any) -> str:
        """Pick ``'binomial' | 'scatter_allgather'`` (called on the root)."""
        if (
            isinstance(obj, np.ndarray)
            and p >= self.bcast_scatter_min_p
            and obj.nbytes >= self.bcast_scatter_min_bytes
        ):
            return "scatter_allgather"
        return "binomial"

    def allgather_algorithm(self, p: int) -> str:
        """Pick ``'ring' | 'bruck'`` by communicator size.

        Deliberately independent of the payload: allgather inputs may
        have rank-dependent sizes (uneven blocks), and a size-based rule
        could diverge across ranks and deadlock the exchange.
        """
        return "bruck" if p >= self.allgather_bruck_min_p else "ring"

    def reduce_scatter_algorithm(self, p: int, values: Sequence[Any]) -> str:
        """Pick ``'alltoall' | 'ring'`` for one payload-per-slot input."""
        if p > 1 and all(isinstance(v, np.ndarray) for v in values):
            total = sum(v.nbytes for v in values)
            if total >= self.reduce_scatter_ring_min_bytes:
                return "ring"
        return "alltoall"
