"""Automatic processor-grid and ordering selection.

The paper hand-tunes its grids (Table 1, the weak-scaling family, the
per-dataset choices) following two rules of thumb from Sec. 4.2: set the
first-processed mode's grid dimension to 1, and put small grid
dimensions on early-processed modes.  This tuner replaces the rules of
thumb with search: it enumerates the factorizations of ``P`` over the
tensor's modes, evaluates each (together with forward/backward ordering)
through the performance model, and returns the best configuration — with
an optional memory-fit constraint from the memory model.

Search space: the number of ordered factorizations of P into N factors
is modest for practical P (a few thousand for P = 2048, N = 4-5), so
exhaustive enumeration with an optional beam cap suffices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..errors import ConfigurationError
from .machine import MachineModel
from .memory import simulate_memory
from .simulator import ModeledRun, simulate_sthosvd

__all__ = ["TunedConfig", "enumerate_grids", "tune_grid"]


@dataclass(frozen=True)
class TunedConfig:
    """A ranked grid/ordering choice with its modeled cost."""

    grid: tuple[int, ...]
    mode_order: str
    seconds: float
    peak_bytes: float
    run: ModeledRun


def _factorizations(p: int, slots: int) -> Iterator[tuple[int, ...]]:
    """All ordered factorizations of ``p`` into ``slots`` positive factors."""
    if slots == 1:
        yield (p,)
        return
    d = 1
    while d <= p:
        if p % d == 0:
            for rest in _factorizations(p // d, slots - 1):
                yield (d,) + rest
        d += 1


def enumerate_grids(
    p: int,
    shape: Sequence[int],
    *,
    max_grids: int | None = None,
) -> list[tuple[int, ...]]:
    """Feasible grids: factorizations of ``p`` with ``P_n <= I_n`` per mode."""
    shape = tuple(int(s) for s in shape)
    if p < 1:
        raise ConfigurationError("processor count must be positive")
    out = []
    for grid in _factorizations(p, len(shape)):
        if all(g <= s for g, s in zip(grid, shape)):
            out.append(grid)
            if max_grids is not None and len(out) >= max_grids:
                break
    if not out:
        raise ConfigurationError(
            f"no grid of {p} processors fits tensor shape {shape}"
        )
    return out


def tune_grid(
    shape: Sequence[int],
    ranks: Sequence[int],
    p: int,
    *,
    method: str = "qr",
    precision="double",
    machine: MachineModel,
    orders: Sequence[str] = ("forward", "backward"),
    memory_limit_bytes: float | None = None,
    top_k: int = 1,
    max_grids: int | None = None,
) -> list[TunedConfig]:
    """Best grid/ordering configurations by modeled time.

    Parameters
    ----------
    shape, ranks:
        Tensor dimensions and target core dimensions.
    p:
        Total processor count.
    memory_limit_bytes:
        If given, configurations whose modeled per-rank high-water mark
        exceeds it are discarded (a node's share of RAM, typically).
    top_k:
        Number of configurations to return, best first.

    Returns
    -------
    list[TunedConfig]
        At least one entry (raises if nothing fits the memory limit).
    """
    shape = tuple(int(s) for s in shape)
    ranks = tuple(int(r) for r in ranks)
    candidates = []
    for grid in enumerate_grids(p, shape, max_grids=max_grids):
        for order in orders:
            run = simulate_sthosvd(
                shape, ranks, grid, method=method, precision=precision,
                mode_order=order, machine=machine,
            )
            mem = simulate_memory(
                shape, ranks, grid, method=method, precision=precision,
                mode_order=order,
            )
            if memory_limit_bytes is not None and mem.peak_bytes > memory_limit_bytes:
                continue
            candidates.append(
                TunedConfig(
                    grid=grid, mode_order=order, seconds=run.total_seconds,
                    peak_bytes=mem.peak_bytes, run=run,
                )
            )
    if not candidates:
        raise ConfigurationError(
            "no configuration satisfies the memory limit "
            f"({memory_limit_bytes} bytes/rank)"
        )
    candidates.sort(key=lambda c: c.seconds)
    return candidates[: max(top_k, 1)]
