"""Modeled-mode ST-HOSVD: regenerate the paper's timing studies at any scale.

The functional runtime (threads-as-ranks) validates numerics up to a few
dozen ranks; the paper's scaling studies run on up to 2048 cores with
terabyte tensors.  This module walks the *same per-mode schedule* as the
parallel driver — redistribution, local LQ/Gram, butterfly or allreduce,
redundant SVD/EVD, TTM with fiber reduce-scatter — but instead of moving
data it accumulates modeled time from the cost expressions of Sec. 3.5
(eqs. 9-11) and the machine model's per-kernel sustained rates.

What the model carries and why it reproduces the paper's shapes:

* flop counts per kernel per mode, with working-precision flop rates
  (the 2x single/double throughput gap drives the headline speedups);
* the geqr/gelq efficiency asymmetry (drives Fig. 2's ordering effects);
* alpha/beta communication terms for the redistribution all-to-all, the
  TSQR butterfly, the Gram allreduce, and the TTM reduce-scatter
  (drives the strong-scaling rolloff in Fig. 4);
* the sequential-bottleneck redundant SVD/EVD (the paper's stated
  limitation for very large mode sizes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..errors import ConfigurationError
from ..instrument import PHASE_LQ, PHASE_GRAM, PHASE_SVD, PHASE_EVD, PHASE_TTM
from ..core.ordering import resolve_mode_order
from ..linalg.flops import eigh_flops, svd_flops
from ..precision import resolve_precision
from .machine import MachineModel

__all__ = ["ModeledRun", "simulate_sthosvd"]


@dataclass
class ModeledRun:
    """Outcome of a modeled parallel ST-HOSVD execution."""

    shape: tuple[int, ...]
    ranks: tuple[int, ...]
    grid_dims: tuple[int, ...]
    method: str
    dtype: np.dtype
    mode_order: tuple[int, ...]
    machine: str
    seconds_by_phase_mode: dict = field(default_factory=dict)
    flops_total: float = 0.0

    @property
    def nprocs(self) -> int:
        return math.prod(self.grid_dims)

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_phase_mode.values())

    def seconds_by_phase(self) -> dict[str, float]:
        """Total modeled seconds per phase (LQ/Gram, SVD/EVD, TTM)."""
        out: dict[str, float] = {}
        for (phase, _mode), t in self.seconds_by_phase_mode.items():
            out[phase] = out.get(phase, 0.0) + t
        return out

    def seconds_by_mode(self) -> dict[int, float]:
        """Total modeled seconds attributed to each tensor mode."""
        out: dict[int, float] = {}
        for (_phase, mode), t in self.seconds_by_phase_mode.items():
            out[mode] = out.get(mode, 0.0) + t
        return out

    def gflops_per_core(self) -> float:
        """Sustained GFLOPS per core over the whole run (Fig. 3a metric)."""
        if self.total_seconds == 0:
            return 0.0
        return self.flops_total / (self.total_seconds * self.nprocs) / 1e9

    def _charge(self, phase: str, mode: int, seconds: float) -> None:
        key = (phase, mode)
        self.seconds_by_phase_mode[key] = self.seconds_by_phase_mode.get(key, 0.0) + seconds

    def to_dict(self) -> dict:
        """JSON-serializable summary (for exporting modeled sweeps)."""
        return {
            "shape": list(self.shape),
            "ranks": list(self.ranks),
            "grid": list(self.grid_dims),
            "method": self.method,
            "precision": str(np.dtype(self.dtype)),
            "mode_order": list(self.mode_order),
            "machine": self.machine,
            "nprocs": self.nprocs,
            "total_seconds": self.total_seconds,
            "gflops_per_core": self.gflops_per_core(),
            "seconds_by_phase": self.seconds_by_phase(),
            "seconds_by_phase_mode": {
                f"{phase}:{mode}": t
                for (phase, mode), t in self.seconds_by_phase_mode.items()
            },
        }

    def to_csv_row(self) -> str:
        """One CSV line: grid;order;method;precision;nprocs;seconds;gflops."""
        return ";".join(
            str(x)
            for x in (
                "x".join(map(str, self.grid_dims)),
                "-".join(map(str, self.mode_order)),
                self.method,
                np.dtype(self.dtype),
                self.nprocs,
                f"{self.total_seconds:.6g}",
                f"{self.gflops_per_core():.4g}",
            )
        )


def simulate_sthosvd(
    shape: Sequence[int],
    ranks: Sequence[int],
    grid_dims: Sequence[int],
    *,
    method: str = "qr",
    precision="double",
    mode_order="forward",
    machine: MachineModel,
) -> ModeledRun:
    """Model one parallel ST-HOSVD run (ranks assumed known, as in Sec. 4.3-4.4).

    Parameters mirror the functional driver; ``ranks`` are the
    post-truncation mode dimensions (the scaling experiments fix them).
    """
    shape = tuple(int(s) for s in shape)
    ranks = tuple(int(r) for r in ranks)
    grid_dims = tuple(int(g) for g in grid_dims)
    ndim = len(shape)
    if len(ranks) != ndim or len(grid_dims) != ndim:
        raise ConfigurationError("shape, ranks, grid_dims must have equal lengths")
    for n in range(ndim):
        if not 1 <= ranks[n] <= shape[n]:
            raise ConfigurationError(f"rank {ranks[n]} invalid for mode {n}")
        if grid_dims[n] < 1:
            raise ConfigurationError("grid dims must be positive")
    if method not in ("qr", "gram"):
        raise ConfigurationError(f"method must be 'qr' or 'gram', got {method!r}")
    prec = resolve_precision(precision)
    dtype = prec.dtype
    word = prec.word_bytes
    order = resolve_mode_order(mode_order, ndim)
    P = math.prod(grid_dims)
    alpha = machine.comm.alpha
    beta = machine.comm.beta

    run = ModeledRun(
        shape=shape,
        ranks=ranks,
        grid_dims=grid_dims,
        method=method,
        dtype=dtype,
        mode_order=order,
        machine=machine.name,
    )

    J = list(shape)
    for n in order:
        rows = J[n]
        p_n = grid_dims[n]
        j_all = math.prod(J)
        cols_local = j_all / (rows * P)
        reduction_phase = PHASE_LQ if method == "qr" else PHASE_GRAM

        # --- redistribution all-to-all within mode-n fibers ------------
        if p_n > 1:
            local_words = j_all / P
            t_redist = alpha * (p_n - 1) + beta * local_words * word * (p_n - 1) / p_n
            run._charge(reduction_phase, n, t_redist)

        if method == "qr":
            # --- local LQ of the I_n x cols_local slab ------------------
            fl_local = max(2.0 * rows * rows * cols_local - (2.0 / 3.0) * rows**3, 0.0)
            # geqr applies to the whole (row-major) unfolding only for the
            # last mode (Sec. 4.2.1); all other modes go through gelq.
            kernel = "geqr" if n == ndim - 1 else "gelq"
            run._charge(PHASE_LQ, n, machine.kernel_time(kernel, fl_local, dtype))
            run.flops_total += fl_local * P

            # --- butterfly TSQR: log P rounds of triangle exchanges -----
            steps = max(math.ceil(math.log2(P)), 0) if P > 1 else 0
            if steps:
                fl_tree = steps * (2.0 / 3.0) * rows**3
                run._charge(PHASE_LQ, n, machine.kernel_time("tpqrt", fl_tree, dtype))
                run.flops_total += fl_tree * P
                tri_words = rows * (rows + 1) / 2
                run._charge(PHASE_LQ, n, steps * (alpha + beta * tri_words * word))

            # --- redundant SVD of the triangle --------------------------
            fl_svd = svd_flops(rows, rows)
            run._charge(PHASE_SVD, n, machine.kernel_time("svd", fl_svd, dtype))
            run.flops_total += fl_svd  # redundant work counts once
        else:
            # --- local syrk Gram of the slab ----------------------------
            fl_local = rows * rows * cols_local
            run._charge(PHASE_GRAM, n, machine.kernel_time("syrk", fl_local, dtype))
            run.flops_total += fl_local * P

            # --- allreduce of the I_n x I_n Gram matrix -----------------
            if P > 1:
                steps = math.ceil(math.log2(P))
                g_words = rows * rows
                run._charge(
                    PHASE_GRAM, n, 2 * steps * (alpha + beta * g_words * word)
                )

            # --- redundant EVD ------------------------------------------
            fl_evd = eigh_flops(rows)
            run._charge(PHASE_EVD, n, machine.kernel_time("evd", fl_evd, dtype))
            run.flops_total += fl_evd

        # --- TTM truncation ---------------------------------------------
        r_n = ranks[n]
        fl_ttm = 2.0 * r_n * j_all / P
        run._charge(PHASE_TTM, n, machine.kernel_time("gemm", fl_ttm, dtype))
        run.flops_total += fl_ttm * P
        if p_n > 1:
            partial_words = r_n * (j_all / rows) / (P / p_n)
            t_rs = alpha * math.ceil(math.log2(p_n)) + beta * partial_words * word * (
                p_n - 1
            ) / p_n
            run._charge(PHASE_TTM, n, t_rs)
        J[n] = r_n

    return run
