"""Machine models for the alpha-beta-gamma performance studies.

Parameters are calibrated to the two platforms of Sec. 4.1:

* **Andes** (OLCF): 32 cores/node of AMD EPYC 7302 at 3 GHz — 48 GFLOPS
  peak per core in double precision, 96 in single.  The paper measures
  ~13-14% of peak for the dominant LQ/Gram kernels (6.4 GFLOPS double /
  13 single per core for QR-SVD on one node), with geqr and gelq equally
  fast.
* **Cascade Lake** (local server): 16 cores; here MKL's ``gelq``
  underperforms ``geqr`` roughly 2x (the paper suspects an internal
  explicit transpose), the asymmetry that drives Fig. 2a's preference
  for backward ordering with ``P_{N-1} = 1``.

Kernel efficiencies are sustained-fraction-of-peak per kernel family;
small redundant decompositions (SVD/EVD of the triangular/Gram factor)
run at low efficiency, dense multiplies (TTM, syrk) at high efficiency,
Householder factorizations in between — the standard BLAS-3 hierarchy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError
from ..mpi.costmodel import CommCosts

__all__ = ["MachineModel", "ANDES", "CASCADE_LAKE", "KERNELS"]

KERNELS = ("geqr", "gelq", "tpqrt", "syrk", "svd", "evd", "gemm")


@dataclass(frozen=True)
class MachineModel:
    """Per-core rates and network parameters of a modeled platform."""

    name: str
    cores_per_node: int
    peak_double: float  # flops/s per core
    peak_single: float
    efficiency: dict = field(default_factory=dict)  # kernel -> fraction of peak
    comm: CommCosts = field(default_factory=CommCosts)

    def __post_init__(self) -> None:
        for k in self.efficiency:
            if k not in KERNELS:
                raise ConfigurationError(f"unknown kernel family {k!r}")

    def peak(self, dtype) -> float:
        """Peak flops/s per core for a working precision."""
        dt = np.dtype(dtype)
        if dt == np.float32:
            return self.peak_single
        if dt == np.float64:
            return self.peak_double
        raise ConfigurationError(f"no peak rate for dtype {dt}")

    def rate(self, kernel: str, dtype) -> float:
        """Sustained flops/s per core for a kernel family and precision."""
        if kernel not in KERNELS:
            raise ConfigurationError(f"unknown kernel family {kernel!r}")
        eff = self.efficiency.get(kernel, 0.10)
        return eff * self.peak(dtype)

    def kernel_time(self, kernel: str, flops: float, dtype) -> float:
        """Seconds for ``flops`` operations of one core in ``kernel``."""
        return flops / self.rate(kernel, dtype)


# Andes: geqr == gelq at ~13.5% of peak (the observed 6.4/13 GFLOPS per
# core double/single).  syrk is set slightly *below* the QR kernels: the
# paper measures lower-than-expected Gram performance on Andes ("we
# attribute [it] to suboptimal BLAS/LAPACK implementations available on
# Andes" — MKL on AMD) and notes QR-SVD's GFLOPS are "slightly better".
# This calibration yields the paper's headline ratios: Gram-single ~2x
# Gram-double, QR-single ~30% faster than Gram-double.
ANDES = MachineModel(
    name="andes",
    cores_per_node=32,
    peak_double=48.0e9,
    peak_single=96.0e9,
    efficiency={
        "geqr": 0.135,
        "gelq": 0.135,
        "tpqrt": 0.10,
        "syrk": 0.11,
        "svd": 0.02,
        "evd": 0.02,
        "gemm": 0.30,
    },
    comm=CommCosts(alpha=2.0e-6, beta=1.0 / 12.0e9),
)

# Cascade Lake: gelq ~2x slower than geqr (observed, Sec. 4.2.1).
CASCADE_LAKE = MachineModel(
    name="cascade-lake",
    cores_per_node=16,
    peak_double=105.6e9,  # 2 AVX-512 FMA units at ~1.65 GHz heavy-AVX clock
    peak_single=211.2e9,
    efficiency={
        "geqr": 0.16,
        "gelq": 0.08,
        "tpqrt": 0.10,
        "syrk": 0.24,
        "svd": 0.02,
        "evd": 0.02,
        "gemm": 0.32,
    },
    comm=CommCosts(alpha=0.8e-6, beta=1.0 / 20.0e9),  # shared-memory MPI
)
