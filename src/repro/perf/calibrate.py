"""Calibrate a MachineModel from microbenchmarks on the current host.

The shipped machine models are calibrated to the paper's platforms; to
*predict this machine's* wall times (e.g. before a long out-of-core
run), measure its sustained kernel rates directly.  The microbenchmarks
time the same kernels the pipeline uses — gemm (TTM), syrk (Gram), the
LAPACK QR driver (LQ/TensorLQ), our structured tpqrt, and the small
gesvd/eigh — in both precisions, and assemble a :class:`MachineModel`
whose efficiency entries reproduce the measured rates.

Communication parameters have no meaning on the threaded runtime (a
"message" is a memcpy); they default to a shared-memory-ish guess and
can be overridden.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
import scipy.linalg

from ..linalg.flops import eigh_flops, gemm_flops, gram_flops, qr_flops, svd_flops, tpqrt_flops
from ..linalg.tpqrt import tpqrt
from ..mpi.costmodel import CommCosts
from .machine import MachineModel

__all__ = ["KernelMeasurement", "measure_kernel_rates", "calibrate_machine"]


@dataclass(frozen=True)
class KernelMeasurement:
    """One kernel's measured sustained rate."""

    kernel: str
    dtype: str
    gflops: float
    seconds: float


def _time_call(fn, min_seconds: float = 0.05, max_reps: int = 50) -> float:
    """Best-of timing with enough repetitions to beat timer noise."""
    fn()  # warm-up (allocations, BLAS thread pools)
    best = float("inf")
    total = 0.0
    reps = 0
    while total < min_seconds and reps < max_reps:
        t0 = time.perf_counter()
        fn()
        dt = time.perf_counter() - t0
        best = min(best, dt)
        total += dt
        reps += 1
    return best


def measure_kernel_rates(
    *,
    size: int = 384,
    rng=None,
) -> list[KernelMeasurement]:
    """Measure sustained GFLOPS of every kernel family in f32 and f64."""
    rng = np.random.default_rng(rng)
    out: list[KernelMeasurement] = []
    n = size
    wide = 4 * n
    for dtype in (np.float64, np.float32):
        A = rng.standard_normal((n, wide)).astype(dtype)
        B = rng.standard_normal((wide, n)).astype(dtype)
        Rtri = np.triu(rng.standard_normal((n // 2, n // 2))).astype(dtype)
        Btri = np.triu(rng.standard_normal((n // 2, n // 2))).astype(dtype)
        small = rng.standard_normal((n // 2, n // 2)).astype(dtype)
        sym = small @ small.T

        cases = {
            "gemm": (lambda: A @ B, gemm_flops(n, wide, n)),
            "syrk": (lambda: A @ A.T, gram_flops(n, wide)),
            "geqr": (
                lambda: scipy.linalg.qr(A.T, mode="r", check_finite=False),
                qr_flops(wide, n),
            ),
            "gelq": (
                lambda: scipy.linalg.qr(
                    np.ascontiguousarray(A).T, mode="r", check_finite=False
                ),
                qr_flops(wide, n),
            ),
            "tpqrt": (
                lambda: tpqrt(Rtri.copy(), Btri.copy(), structure="tri"),
                tpqrt_flops(n // 2, n // 2, n // 2),
            ),
            "svd": (
                # Calibration times the raw driver on purpose: the rates
                # feed the cost model the instrumented kernels consult.
                lambda: scipy.linalg.svd(small, check_finite=False),  # repro-lint: allow(raw-lapack)
                svd_flops(n // 2, n // 2),
            ),
            "evd": (lambda: np.linalg.eigh(sym), eigh_flops(n // 2)),  # repro-lint: allow(raw-lapack)
        }
        for kernel, (fn, flops) in cases.items():
            secs = _time_call(fn)
            out.append(
                KernelMeasurement(
                    kernel=kernel,
                    dtype=np.dtype(dtype).name,
                    gflops=flops / secs / 1e9,
                    seconds=secs,
                )
            )
    return out


def calibrate_machine(
    name: str = "local",
    *,
    size: int = 384,
    cores_per_node: int = 1,
    comm: CommCosts | None = None,
    rng=None,
) -> MachineModel:
    """Build a MachineModel whose rates match this host's measurements.

    The model's "peak" is anchored to the measured f64 gemm rate (and
    2x that for f32), so efficiency entries express each kernel relative
    to the best dense kernel available here — the same structure as the
    paper-calibrated models.
    """
    measurements = measure_kernel_rates(size=size, rng=rng)
    by = {(m.kernel, m.dtype): m.gflops for m in measurements}
    peak64 = by[("gemm", "float64")]
    efficiency = {}
    for kernel in ("geqr", "gelq", "tpqrt", "syrk", "svd", "evd", "gemm"):
        # Average the two precisions' relative efficiency against their
        # respective anchors.
        e64 = by[(kernel, "float64")] / peak64
        e32 = by[(kernel, "float32")] / (2 * peak64)
        efficiency[kernel] = float(min((e64 + e32) / 2, 1.0))
    return MachineModel(
        name=name,
        cores_per_node=cores_per_node,
        peak_double=peak64 * 1e9,
        peak_single=2 * peak64 * 1e9,
        efficiency=efficiency,
        comm=comm if comm is not None else CommCosts(alpha=2e-7, beta=1 / 20e9),
    )
