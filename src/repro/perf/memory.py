"""Per-rank memory footprint model for parallel ST-HOSVD.

TuckerMPI's viability depends on memory as much as time: the local
tensor block, the redistribution receive buffer, the triangular/Gram
factor, and the TTM partial must fit per rank.  This model walks the
same per-mode schedule as the time simulator and tracks the high-water
mark of each allocation class, enabling questions like "how many nodes
do I need just to *hold* this tensor?" (the paper needs 50 Andes nodes
for SP before speed is even a question).

Modeled allocations per mode ``n`` (working dims ``J``, grid ``P``):

* local tensor block: ``prod(J) / P`` words (persistent);
* redistribution slab (when ``P_n > 1``): a second copy of the local
  portion, ``prod(J) / P`` words;
* QR path: the ``J_n x J_n`` triangle (x2 during tree exchange);
  Gram path: two ``J_n x J_n`` matrices (local + reduced);
* factor matrices accumulated to date: ``sum I_k R_k`` (replicated);
* TTM partial: ``R_n * prod(J)/J_n / (P / P_n)`` words plus the output
  block.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import ConfigurationError
from ..core.ordering import resolve_mode_order
from ..precision import resolve_precision

__all__ = ["MemoryModel", "simulate_memory"]


@dataclass
class MemoryModel:
    """High-water memory marks (bytes per rank) of a modeled run."""

    shape: tuple[int, ...]
    ranks: tuple[int, ...]
    grid_dims: tuple[int, ...]
    method: str
    word_bytes: int
    peak_bytes: float = 0.0
    peak_mode: int | None = None
    by_mode: dict = field(default_factory=dict)

    @property
    def peak_gib(self) -> float:
        return self.peak_bytes / 2**30

    def _observe(self, mode: int, words: float) -> None:
        nbytes = words * self.word_bytes
        self.by_mode[mode] = max(self.by_mode.get(mode, 0.0), nbytes)
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes
            self.peak_mode = mode


def simulate_memory(
    shape: Sequence[int],
    ranks: Sequence[int],
    grid_dims: Sequence[int],
    *,
    method: str = "qr",
    precision="double",
    mode_order="forward",
) -> MemoryModel:
    """Model the per-rank memory high-water mark of parallel ST-HOSVD."""
    shape = tuple(int(s) for s in shape)
    ranks = tuple(int(r) for r in ranks)
    grid_dims = tuple(int(g) for g in grid_dims)
    ndim = len(shape)
    if len(ranks) != ndim or len(grid_dims) != ndim:
        raise ConfigurationError("shape, ranks, grid_dims must have equal lengths")
    if method not in ("qr", "gram"):
        raise ConfigurationError(f"method must be 'qr' or 'gram', got {method!r}")
    prec = resolve_precision(precision)
    order = resolve_mode_order(mode_order, ndim)
    P = math.prod(grid_dims)

    model = MemoryModel(
        shape=shape, ranks=ranks, grid_dims=grid_dims, method=method,
        word_bytes=prec.word_bytes,
    )

    J = list(shape)
    factor_words = 0.0
    for n in order:
        rows = J[n]
        p_n = grid_dims[n]
        local_words = math.prod(J) / P
        base = local_words + factor_words

        # Reduction stage: redistribution slab + small factor(s).
        redist = local_words if p_n > 1 else 0.0
        if method == "qr":
            smalls = 2.0 * rows * rows  # triangle + partner's during exchange
        else:
            smalls = 2.0 * rows * rows  # local Gram + allreduce result
        model._observe(n, base + redist + smalls)

        # SVD/EVD stage: factor matrix U (rows x rows) + vectors.
        model._observe(n, base + 2.0 * rows * rows)

        # TTM stage: full-R_n partial + reduced output block.
        r_n = ranks[n]
        partial = r_n * (math.prod(J) / rows) / (P / p_n)
        out_words = (math.prod(J) / rows) * r_n / P
        model._observe(n, base + partial + out_words)

        factor_words += shape[n] * r_n  # replicated factor retained
        J[n] = r_n

    return model
