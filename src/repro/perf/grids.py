"""Processor-grid configurations used by the paper's scaling studies.

Table 1 gives the strong-scaling grids; Sec. 4.3 gives the weak-scaling
family (forward ``1 x 2k x 4k x 4k^2`` for Gram, backward
``4k^2 x 4k x 2k x 1`` for QR).  Helpers here return those grids so the
benchmark harness and tests share a single source of truth.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = [
    "STRONG_SCALING_GRIDS",
    "strong_scaling_grid",
    "weak_scaling_config",
]

# Table 1: cores -> (QR grid, Gram grid).  32 cores per Andes node.
STRONG_SCALING_GRIDS: dict[int, dict[str, tuple[int, int, int, int]]] = {
    32: {"qr": (4, 4, 2, 1), "gram": (1, 1, 2, 16)},
    64: {"qr": (8, 4, 2, 1), "gram": (1, 1, 4, 16)},
    128: {"qr": (8, 8, 2, 1), "gram": (1, 1, 8, 16)},
    256: {"qr": (16, 8, 2, 1), "gram": (1, 1, 16, 16)},
    512: {"qr": (16, 8, 4, 1), "gram": (1, 2, 16, 16)},
    1024: {"qr": (16, 16, 4, 1), "gram": (1, 4, 16, 16)},
    2048: {"qr": (32, 16, 4, 1), "gram": (1, 4, 16, 32)},
}


def strong_scaling_grid(cores: int, method: str) -> tuple[int, int, int, int]:
    """Table 1 grid for a core count and method ('qr'/'gram')."""
    if cores not in STRONG_SCALING_GRIDS:
        raise ConfigurationError(
            f"no Table-1 grid for {cores} cores "
            f"(available: {sorted(STRONG_SCALING_GRIDS)})"
        )
    if method not in ("qr", "gram"):
        raise ConfigurationError(f"method must be 'qr' or 'gram', got {method!r}")
    return STRONG_SCALING_GRIDS[cores][method]


def weak_scaling_config(k: int) -> dict:
    """Sec. 4.3 weak-scaling instance for scale factor ``k`` (1, 2, 3...).

    Tensor ``(250k)^4`` compressed to ``(25k)^4`` on ``k^4`` nodes
    (32 cores each); QR uses backward ordering on ``4k^2 x 4k x 2k x 1``,
    Gram forward ordering on ``1 x 2k x 4k x 4k^2``.
    """
    if k < 1:
        raise ConfigurationError("scale factor k must be >= 1")
    return {
        "k": k,
        "shape": (250 * k,) * 4,
        "ranks": (25 * k,) * 4,
        "nodes": k**4,
        "cores": 32 * k**4,
        "qr_grid": (4 * k * k, 4 * k, 2 * k, 1),
        "qr_order": "backward",
        "gram_grid": (1, 2 * k, 4 * k, 4 * k * k),
        "gram_order": "forward",
    }
