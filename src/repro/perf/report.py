"""Report formatting for modeled and measured runs.

Renders the same rows/series the paper's figures show: stacked time
breakdowns by phase and mode (Figs. 2, 3b, 4, 8b, 9b, 10), scaling
series (Figs. 3a, 4), and compression/error tables (Tabs. 2-3).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..instrument import (
    PHASE_LQ, PHASE_GRAM, PHASE_SVD, PHASE_EVD, PHASE_TTM, PHASE_COMM,
)
from ..util.tables import format_table
from .simulator import ModeledRun

__all__ = [
    "breakdown_table",
    "scaling_table",
    "variant_label",
    "PHASE_LABELS",
]

PHASE_LABELS = {
    PHASE_LQ: "LQ",
    PHASE_GRAM: "Gram",
    PHASE_SVD: "SVD",
    PHASE_EVD: "EVD",
    PHASE_TTM: "TTM",
    PHASE_COMM: "Comm",
}


def variant_label(method: str, precision) -> str:
    """Canonical display name, e.g. 'QR single' / 'Gram double'."""
    from ..precision import resolve_precision

    name = "QR" if method == "qr" else "Gram"
    return f"{name} {resolve_precision(precision)}"


def breakdown_table(runs: dict[str, ModeledRun], *, title: str | None = None) -> str:
    """Stacked-breakdown table: one column per run, one row per (phase, mode)."""
    labels = list(runs)
    keys = sorted(
        {k for run in runs.values() for k in run.seconds_by_phase_mode},
        key=lambda pm: (pm[1] if pm[1] is not None else -1, pm[0]),
    )
    rows = []
    for phase, mode in keys:
        row = [f"{PHASE_LABELS.get(phase, phase)} (mode {mode})"]
        row.extend(runs[l].seconds_by_phase_mode.get((phase, mode), 0.0) for l in labels)
        rows.append(row)
    rows.append(["TOTAL"] + [runs[l].total_seconds for l in labels])
    return format_table(["component"] + labels, rows, title=title)


def scaling_table(
    series: dict[str, Sequence[tuple[int, float]]],
    *,
    xlabel: str = "cores",
    ylabel: str = "seconds",
    title: str | None = None,
) -> str:
    """Scaling series table: rows are x-values, one column per variant."""
    xs = sorted({x for pts in series.values() for x, _ in pts})
    lookup = {label: dict(pts) for label, pts in series.items()}
    rows = []
    for x in xs:
        row = [x]
        for label in series:
            row.append(lookup[label].get(x, float("nan")))
        rows.append(row)
    return format_table(
        [xlabel] + [f"{l} [{ylabel}]" for l in series], rows, title=title
    )
