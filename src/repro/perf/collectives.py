"""Modeled costs of collective-communication algorithms.

Companions to :mod:`repro.mpi.algorithms`: closed-form alpha-beta
critical-path costs of each algorithm, used by the ablation benches to
show *why* a given collective was chosen for each role in the paper's
pipeline (butterfly for TSQR, pairwise all-to-all for redistribution,
tree for the small Gram reductions).

All formulas give seconds for a payload of ``nbytes`` on ``p`` ranks;
``alpha``/``beta`` come from a machine model's :class:`CommCosts`.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..mpi.costmodel import CommCosts

__all__ = [
    "cost_bcast_binomial",
    "cost_bcast_scatter_allgather",
    "cost_allreduce_tree",
    "cost_allreduce_recursive_doubling",
    "cost_allreduce_ring",
    "cost_allgather_ring",
    "cost_alltoall_pairwise",
    "cost_reduce_scatter_ring",
]


def _check(p: int, nbytes: float) -> None:
    if p < 1:
        raise ConfigurationError("p must be positive")
    if nbytes < 0:
        raise ConfigurationError("payload size cannot be negative")


def cost_bcast_binomial(p: int, nbytes: float, comm: CommCosts) -> float:
    """Binomial-tree broadcast: ``ceil(log2 p)`` rounds of the full payload."""
    _check(p, nbytes)
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    return steps * (comm.alpha + comm.beta * nbytes)


def cost_bcast_scatter_allgather(p: int, nbytes: float, comm: CommCosts) -> float:
    """van de Geijn broadcast: scatter + ring allgather, ~2x payload total."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    scatter = math.ceil(math.log2(p)) * comm.alpha + comm.beta * nbytes * (p - 1) / p
    allgather = (p - 1) * comm.alpha + comm.beta * nbytes * (p - 1) / p
    return scatter + allgather


def cost_allreduce_tree(p: int, nbytes: float, comm: CommCosts) -> float:
    """Reduce-to-root then broadcast: ``2 ceil(log2 p)`` payload rounds."""
    _check(p, nbytes)
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    return 2 * steps * (comm.alpha + comm.beta * nbytes)


def cost_allreduce_recursive_doubling(p: int, nbytes: float, comm: CommCosts) -> float:
    """Recursive doubling: ``ceil(log2 p)`` exchange rounds of the payload."""
    _check(p, nbytes)
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    return steps * (comm.alpha + comm.beta * nbytes)


def cost_allreduce_ring(p: int, nbytes: float, comm: CommCosts) -> float:
    """Ring reduce-scatter + ring allgather (bandwidth-optimal, long msgs)."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    return 2 * ((p - 1) * comm.alpha + comm.beta * nbytes * (p - 1) / p)


def cost_allgather_ring(p: int, nbytes_per_rank: float, comm: CommCosts) -> float:
    """Ring allgather of one slot per rank: P-1 rounds of one slot."""
    _check(p, nbytes_per_rank)
    if p == 1:
        return 0.0
    return (p - 1) * (comm.alpha + comm.beta * nbytes_per_rank)


def cost_alltoall_pairwise(p: int, nbytes_total: float, comm: CommCosts) -> float:
    """Pairwise-exchange all-to-all: P-1 rounds of one slot (total/P each).

    This is the schedule the paper's redistribution analysis assumes
    (Sec. 3.5): ``P_n - 1`` messages per rank, each 1/P of the local data.
    """
    _check(p, nbytes_total)
    if p == 1:
        return 0.0
    return (p - 1) * (comm.alpha + comm.beta * nbytes_total / p)


def cost_reduce_scatter_ring(p: int, nbytes_total: float, comm: CommCosts) -> float:
    """Ring reduce-scatter: P-1 rounds of one slot (total/P each)."""
    _check(p, nbytes_total)
    if p == 1:
        return 0.0
    return (p - 1) * (comm.alpha + comm.beta * nbytes_total / p)
