"""Modeled costs of collective-communication algorithms.

Closed-form alpha-beta critical-path costs of each collective algorithm
implemented by the runtime's adaptive engine
(:class:`~repro.mpi.communicator.Communicator` +
:class:`~repro.mpi.tuning.CollectiveTuning`), used by the ablation
benches to show *why* a given collective wins each size regime
(butterfly for TSQR, pairwise all-to-all for redistribution, recursive
doubling vs. ring for the Gram reductions).

The ``dispatched_*`` helpers price what the engine would actually
*select* for a given ``(p, nbytes)`` under a tuning table — mirroring
the dispatch rules exactly — so modeled breakdowns stay faithful to the
executed schedule.

All formulas give seconds for a payload of ``nbytes`` on ``p`` ranks;
``alpha``/``beta`` come from a machine model's :class:`CommCosts`.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigurationError
from ..mpi.costmodel import CommCosts
from ..mpi.tuning import CollectiveTuning

__all__ = [
    "cost_bcast_binomial",
    "cost_bcast_scatter_allgather",
    "cost_allreduce_tree",
    "cost_allreduce_recursive_doubling",
    "cost_allreduce_ring",
    "cost_allgather_ring",
    "cost_allgather_bruck",
    "cost_allgather_gather_bcast",
    "cost_alltoall_pairwise",
    "cost_reduce_scatter_ring",
    "dispatched_allreduce_cost",
    "dispatched_bcast_cost",
    "dispatched_allgather_cost",
    "dispatched_reduce_scatter_cost",
]


def _check(p: int, nbytes: float) -> None:
    if p < 1:
        raise ConfigurationError("p must be positive")
    if nbytes < 0:
        raise ConfigurationError("payload size cannot be negative")


def cost_bcast_binomial(p: int, nbytes: float, comm: CommCosts) -> float:
    """Binomial-tree broadcast: ``ceil(log2 p)`` rounds of the full payload."""
    _check(p, nbytes)
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    return steps * (comm.alpha + comm.beta * nbytes)


def cost_bcast_scatter_allgather(p: int, nbytes: float, comm: CommCosts) -> float:
    """van de Geijn broadcast: scatter + ring allgather, ~2x payload total."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    scatter = math.ceil(math.log2(p)) * comm.alpha + comm.beta * nbytes * (p - 1) / p
    allgather = (p - 1) * comm.alpha + comm.beta * nbytes * (p - 1) / p
    return scatter + allgather


def cost_allreduce_tree(p: int, nbytes: float, comm: CommCosts) -> float:
    """Reduce-to-root then broadcast: ``2 ceil(log2 p)`` payload rounds."""
    _check(p, nbytes)
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    return 2 * steps * (comm.alpha + comm.beta * nbytes)


def cost_allreduce_recursive_doubling(p: int, nbytes: float, comm: CommCosts) -> float:
    """Recursive doubling: ``ceil(log2 p)`` exchange rounds of the payload."""
    _check(p, nbytes)
    steps = math.ceil(math.log2(p)) if p > 1 else 0
    return steps * (comm.alpha + comm.beta * nbytes)


def cost_allreduce_ring(p: int, nbytes: float, comm: CommCosts) -> float:
    """Ring reduce-scatter + ring allgather (bandwidth-optimal, long msgs)."""
    _check(p, nbytes)
    if p == 1:
        return 0.0
    return 2 * ((p - 1) * comm.alpha + comm.beta * nbytes * (p - 1) / p)


def cost_allgather_ring(p: int, nbytes_per_rank: float, comm: CommCosts) -> float:
    """Ring allgather of one slot per rank: P-1 rounds of one slot."""
    _check(p, nbytes_per_rank)
    if p == 1:
        return 0.0
    return (p - 1) * (comm.alpha + comm.beta * nbytes_per_rank)


def cost_allgather_bruck(p: int, nbytes_per_rank: float, comm: CommCosts) -> float:
    """Bruck dissemination allgather: ``ceil(log2 p)`` doubling rounds.

    Latency-optimal; round ``k`` moves ``min(2^k, p - 2^k)`` slots, for
    the same ``(p-1)`` slots of total volume as the ring.
    """
    _check(p, nbytes_per_rank)
    if p == 1:
        return 0.0
    steps = math.ceil(math.log2(p))
    return steps * comm.alpha + comm.beta * nbytes_per_rank * (p - 1)


def cost_allgather_gather_bcast(p: int, nbytes_per_rank: float, comm: CommCosts) -> float:
    """Legacy gather-to-root + broadcast allgather (root is a hotspot).

    The root serializes ``p - 1`` receives, then the binomial tree
    re-broadcasts the whole ``p``-slot list — the schedule the dispatch
    table retired.
    """
    _check(p, nbytes_per_rank)
    if p == 1:
        return 0.0
    gather = (p - 1) * (comm.alpha + comm.beta * nbytes_per_rank)
    steps = math.ceil(math.log2(p))
    bcast = steps * (comm.alpha + comm.beta * nbytes_per_rank * p)
    return gather + bcast


def cost_alltoall_pairwise(p: int, nbytes_total: float, comm: CommCosts) -> float:
    """Pairwise-exchange all-to-all: P-1 rounds of one slot (total/P each).

    This is the schedule the paper's redistribution analysis assumes
    (Sec. 3.5): ``P_n - 1`` messages per rank, each 1/P of the local data.
    """
    _check(p, nbytes_total)
    if p == 1:
        return 0.0
    return (p - 1) * (comm.alpha + comm.beta * nbytes_total / p)


def cost_reduce_scatter_ring(p: int, nbytes_total: float, comm: CommCosts) -> float:
    """Ring reduce-scatter: P-1 rounds of one slot (total/P each)."""
    _check(p, nbytes_total)
    if p == 1:
        return 0.0
    return (p - 1) * (comm.alpha + comm.beta * nbytes_total / p)


# ---------------------------------------------------------------------------
# Dispatched costs: price what the adaptive engine actually selects.
# ---------------------------------------------------------------------------

_F64 = np.dtype(np.float64)


def _probe(nbytes: float) -> np.ndarray:
    """A zero-length-strided stand-in array with the given nbytes."""
    return np.empty(max(int(nbytes) // _F64.itemsize, 1) if nbytes else 0,
                    dtype=_F64)


def dispatched_allreduce_cost(
    p: int, nbytes: float, comm: CommCosts,
    tuning: CollectiveTuning | None = None,
) -> float:
    """Modeled cost of the allreduce algorithm the engine selects."""
    tuning = tuning or CollectiveTuning()
    algo = tuning.allreduce_algorithm(p, _probe(nbytes))
    if algo == "ring":
        return cost_allreduce_ring(p, nbytes, comm)
    if algo == "recursive_doubling":
        return cost_allreduce_recursive_doubling(p, nbytes, comm)
    return cost_allreduce_tree(p, nbytes, comm)


def dispatched_bcast_cost(
    p: int, nbytes: float, comm: CommCosts,
    tuning: CollectiveTuning | None = None,
) -> float:
    """Modeled cost of the bcast algorithm the engine selects."""
    tuning = tuning or CollectiveTuning()
    algo = tuning.bcast_algorithm(p, _probe(nbytes))
    if algo == "scatter_allgather":
        return cost_bcast_scatter_allgather(p, nbytes, comm)
    return cost_bcast_binomial(p, nbytes, comm)


def dispatched_allgather_cost(
    p: int, nbytes_per_rank: float, comm: CommCosts,
    tuning: CollectiveTuning | None = None,
) -> float:
    """Modeled cost of the allgather algorithm the engine selects."""
    tuning = tuning or CollectiveTuning()
    algo = tuning.allgather_algorithm(p)
    if algo == "bruck":
        return cost_allgather_bruck(p, nbytes_per_rank, comm)
    return cost_allgather_ring(p, nbytes_per_rank, comm)


def dispatched_reduce_scatter_cost(
    p: int, nbytes_total: float, comm: CommCosts,
    tuning: CollectiveTuning | None = None,
) -> float:
    """Modeled cost of the reduce_scatter algorithm the engine selects."""
    tuning = tuning or CollectiveTuning()
    slot = nbytes_total / p if p else 0.0
    algo = tuning.reduce_scatter_algorithm(p, [_probe(slot)] * p)
    if algo == "ring":
        return cost_reduce_scatter_ring(p, nbytes_total, comm)
    return cost_alltoall_pairwise(p, nbytes_total, comm)
