"""Performance model: machine parameters, modeled ST-HOSVD, report formatting."""

from .machine import MachineModel, ANDES, CASCADE_LAKE, KERNELS
from .simulator import ModeledRun, simulate_sthosvd
from .grids import STRONG_SCALING_GRIDS, strong_scaling_grid, weak_scaling_config
from .memory import MemoryModel, simulate_memory
from .tuner import TunedConfig, enumerate_grids, tune_grid
from .calibrate import KernelMeasurement, measure_kernel_rates, calibrate_machine
from .report import breakdown_table, scaling_table, variant_label, PHASE_LABELS
from .benchdiff import (
    compare_snapshots,
    flatten_metrics,
    format_comparison,
    load_snapshot,
)

__all__ = [
    "MachineModel",
    "ANDES",
    "CASCADE_LAKE",
    "KERNELS",
    "ModeledRun",
    "simulate_sthosvd",
    "STRONG_SCALING_GRIDS",
    "strong_scaling_grid",
    "weak_scaling_config",
    "MemoryModel",
    "simulate_memory",
    "TunedConfig",
    "enumerate_grids",
    "tune_grid",
    "KernelMeasurement",
    "measure_kernel_rates",
    "calibrate_machine",
    "breakdown_table",
    "scaling_table",
    "variant_label",
    "PHASE_LABELS",
    "compare_snapshots",
    "flatten_metrics",
    "format_comparison",
    "load_snapshot",
]
