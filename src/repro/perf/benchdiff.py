"""Benchmark snapshot comparison with per-metric tolerance bands.

The benchmark harness emits versioned JSON snapshots
(``benchmarks/reports/BENCH_*.json``) carrying config, commit, host,
and measured numbers.  This module diffs two snapshots of the same
bench — typically a committed baseline against a fresh run — and
classifies every numeric leaf:

* **lower-is-better** — wall/compute seconds (``*_s``, ``*_us``,
  ``*_ms``), message/byte counters: a regression when the new value
  exceeds the old by more than the tolerance band;
* **higher-is-better** — ``speedup*``, ``*gflops*``, ``*rate*``
  leaves: a regression when the new value falls short of the old by
  more than the band.

Config and metadata subtrees (``commit``, ``host``, ``config``, ...)
are compared for *identity* only: a changed config makes the numbers
incomparable, so it is reported as a mismatch, never silently diffed.

``repro bench --compare OLD.json NEW.json`` is the CLI face; it exits
non-zero when any metric regresses, which is what CI gates on.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from ..util.tables import format_table

__all__ = [
    "classify_metric",
    "compare_snapshots",
    "flatten_metrics",
    "format_comparison",
    "load_snapshot",
]

# Top-level keys that identify a snapshot rather than measure anything.
METADATA_KEYS = frozenset(
    {"bench", "version", "commit", "generated_unix", "host", "note"}
)

# Config must match exactly for the numeric diff to mean anything.
CONFIG_KEYS = frozenset({"config"})

_LOWER_SUFFIXES = ("_s", "_us", "_ms", "_seconds", "_bytes", "_messages")
_HIGHER_MARKERS = ("speedup", "gflops", "rate", "bandwidth", "throughput")


def load_snapshot(path: str) -> Dict[str, Any]:
    """Load a ``BENCH_*.json`` snapshot, insisting on the envelope keys."""
    with open(path, "r", encoding="utf-8") as fh:
        snap = json.load(fh)
    if not isinstance(snap, dict) or "bench" not in snap or "version" not in snap:
        raise ValueError(
            f"{path}: not a benchmark snapshot (missing 'bench'/'version' keys)"
        )
    return snap


def classify_metric(path: str) -> str:
    """``"higher"`` or ``"lower"`` — which direction is an improvement.

    ``path`` is the dotted leaf path (e.g. ``"sthosvd.procs.4.best_wall_s"``).
    Higher-is-better markers win over suffix rules so ``"..._rate_s"``-style
    names don't misclassify; everything unrecognized defaults to
    lower-is-better, the conservative choice for timings and counters.
    """
    leaf = path.rsplit(".", 1)[-1].lower()
    if any(marker in leaf for marker in _HIGHER_MARKERS):
        return "higher"
    if any(marker in path.lower().split(".")[0] for marker in _HIGHER_MARKERS):
        return "higher"
    return "lower"


def flatten_metrics(snapshot: Dict[str, Any]) -> Dict[str, float]:
    """Numeric leaves as ``dotted.path -> value``, metadata/config excluded.

    Lists of numbers (repetition samples like ``wall_s``) are skipped —
    the per-config ``best_*`` scalars are the comparable statistics;
    raw samples vary run to run by construction.
    """
    out: Dict[str, float] = {}

    def walk(node: Any, prefix: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{prefix}.{key}" if prefix else str(key))
        elif isinstance(node, bool):
            return
        elif isinstance(node, (int, float)):
            out[prefix] = float(node)

    for key, value in snapshot.items():
        if key in METADATA_KEYS or key in CONFIG_KEYS:
            continue
        walk(value, str(key))
    return out


def compare_snapshots(
    old: Dict[str, Any],
    new: Dict[str, Any],
    *,
    tolerance: float = 0.25,
    tolerances: Optional[Dict[str, float]] = None,
) -> Dict[str, Any]:
    """Diff two snapshots of the same bench.

    ``tolerance`` is the default relative band: lower-is-better metrics
    regress when ``new > old * (1 + tol)``; higher-is-better when
    ``new < old * (1 - tol)``.  ``tolerances`` maps dotted-path
    *prefixes* to per-metric overrides (longest matching prefix wins).

    Returns a report dict: ``comparable`` (bool), ``mismatches`` (why
    not, when not), ``metrics`` (one entry per shared leaf), and the
    ``regressions`` / ``improvements`` / ``missing`` rollups.
    """
    report: Dict[str, Any] = {
        "bench": old.get("bench"),
        "old_commit": old.get("commit"),
        "new_commit": new.get("commit"),
        "comparable": True,
        "mismatches": [],
        "metrics": [],
        "regressions": [],
        "improvements": [],
        "missing": [],
    }
    if old.get("bench") != new.get("bench"):
        report["comparable"] = False
        report["mismatches"].append(
            f"bench {old.get('bench')!r} vs {new.get('bench')!r}"
        )
    if old.get("version") != new.get("version"):
        report["comparable"] = False
        report["mismatches"].append(
            f"schema version {old.get('version')!r} vs {new.get('version')!r}"
        )
    if old.get("config") != new.get("config"):
        report["comparable"] = False
        report["mismatches"].append("config differs (numbers not comparable)")
    if not report["comparable"]:
        return report

    old_metrics = flatten_metrics(old)
    new_metrics = flatten_metrics(new)
    report["missing"] = sorted(set(old_metrics) - set(new_metrics))

    def band(path: str) -> float:
        if tolerances:
            hits = [p for p in tolerances if path.startswith(p)]
            if hits:
                return float(tolerances[max(hits, key=len)])
        return float(tolerance)

    for path in sorted(set(old_metrics) & set(new_metrics)):
        ov, nv = old_metrics[path], new_metrics[path]
        direction = classify_metric(path)
        tol = band(path)
        ratio = (nv / ov) if ov else (1.0 if nv == ov else float("inf"))
        if direction == "lower":
            regressed = nv > ov * (1.0 + tol) and nv - ov > 0
            improved = nv < ov * (1.0 - tol)
        else:
            regressed = nv < ov * (1.0 - tol)
            improved = nv > ov * (1.0 + tol)
        entry = {
            "path": path,
            "old": ov,
            "new": nv,
            "ratio": ratio,
            "direction": direction,
            "tolerance": tol,
            "regressed": regressed,
            "improved": improved,
        }
        report["metrics"].append(entry)
        if regressed:
            report["regressions"].append(path)
        elif improved:
            report["improvements"].append(path)
    return report


def format_comparison(report: Dict[str, Any], *, all_metrics: bool = False) -> str:
    """Human-readable comparison table (``repro bench --compare``)."""
    lines: List[str] = []
    lines.append(
        f"bench compare: {report.get('bench')} "
        f"({str(report.get('old_commit'))[:12]} -> "
        f"{str(report.get('new_commit'))[:12]})"
    )
    if not report.get("comparable", False):
        lines.append("NOT COMPARABLE:")
        lines.extend(f"  {m}" for m in report.get("mismatches", []))
        return "\n".join(lines)

    rows = []
    for m in report["metrics"]:
        if not all_metrics and not (m["regressed"] or m["improved"]):
            continue
        status = "REGRESSED" if m["regressed"] else (
            "improved" if m["improved"] else "ok"
        )
        arrow = "lower" if m["direction"] == "lower" else "higher"
        rows.append([
            m["path"],
            f"{m['old']:.6g}",
            f"{m['new']:.6g}",
            f"{m['ratio']:.3f}x",
            f"{arrow}±{m['tolerance']:.0%}",
            status,
        ])
    if rows:
        lines.append(format_table(
            ["metric", "old", "new", "ratio", "band", "status"],
            rows, align_right=False,
        ))
    nmet = len(report["metrics"])
    nreg = len(report["regressions"])
    nimp = len(report["improvements"])
    lines.append(
        f"{nmet} shared metrics: {nreg} regression(s), "
        f"{nimp} improvement(s), {nmet - nreg - nimp} within tolerance"
    )
    for path in report.get("missing", []):
        lines.append(f"  missing in new snapshot: {path}")
    return "\n".join(lines)
