"""repro — reproduction of "Parallel Tucker Decomposition with Numerically
Accurate SVD" (Li, Fang, Ballard; ICPP 2021).

The package computes Tucker decompositions of dense tensors with the
Sequentially Truncated HOSVD (ST-HOSVD), offering both of the paper's
per-mode SVD algorithms — TuckerMPI's Gram-SVD and the numerically
stable QR-SVD — in single or double working precision, sequentially or
on a simulated MPI runtime, plus an alpha-beta-gamma performance model
that regenerates the paper's scaling studies.

Quickstart
----------
>>> import numpy as np
>>> from repro import DenseTensor, sthosvd
>>> X = DenseTensor(np.random.default_rng(0).standard_normal((20, 30, 40)))
>>> result = sthosvd(X, tol=1e-6, method="qr")
"""

from .precision import Precision, SINGLE, DOUBLE, resolve_precision
from .errors import (
    ReproError,
    ShapeError,
    DistributionError,
    CommunicatorError,
    ConvergenceError,
    ConfigurationError,
)
from .instrument import FlopCounter, PhaseTimer
from .tensor import DenseTensor, unfold, fold, ttm, multi_ttm
from .linalg import (
    gram_svd,
    qr_svd,
    tensor_gram_svd,
    tensor_qr_svd,
    tensor_lq,
    geqr,
    gelq,
)
from .core import (
    TuckerTensor,
    sthosvd,
    SthosvdResult,
    sthosvd_parallel,
    ParallelSthosvdResult,
    choose_rank,
    compress,
    choose_variant,
    hosvd,
    hooi,
    sthosvd_out_of_core,
)
from .mpi import run_spmd, CostModel
from .dist import ProcessorGrid, GridComms, DistributedTensor
from .obs import FlightRecorder, TelemetryHub, Tracer

__version__ = "1.0.0"

__all__ = [
    "Precision",
    "SINGLE",
    "DOUBLE",
    "resolve_precision",
    "ReproError",
    "ShapeError",
    "DistributionError",
    "CommunicatorError",
    "ConvergenceError",
    "ConfigurationError",
    "FlopCounter",
    "PhaseTimer",
    "DenseTensor",
    "unfold",
    "fold",
    "ttm",
    "multi_ttm",
    "gram_svd",
    "qr_svd",
    "tensor_gram_svd",
    "tensor_qr_svd",
    "tensor_lq",
    "geqr",
    "gelq",
    "TuckerTensor",
    "sthosvd",
    "SthosvdResult",
    "sthosvd_parallel",
    "ParallelSthosvdResult",
    "choose_rank",
    "compress",
    "choose_variant",
    "hosvd",
    "hooi",
    "sthosvd_out_of_core",
    "run_spmd",
    "CostModel",
    "Tracer",
    "FlightRecorder",
    "TelemetryHub",
    "ProcessorGrid",
    "GridComms",
    "DistributedTensor",
    "__version__",
]
