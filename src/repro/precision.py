"""Working-precision handling.

The paper's central performance lever is running the entire ST-HOSVD
pipeline in either IEEE single or double precision (the C++ code uses
templates; we use NumPy dtypes).  This module centralizes the mapping
between a symbolic precision name and its dtype, machine epsilon, word
size, and the theoretical accuracy floors of the two SVD algorithms
(Sec. 3.2 of the paper):

* QR-SVD can resolve singular values down to ``eps * ||A||``;
* Gram-SVD only down to ``sqrt(eps) * ||A||``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from .errors import ConfigurationError

__all__ = [
    "Precision",
    "PrecisionInfo",
    "resolve_precision",
    "SINGLE",
    "DOUBLE",
]


class Precision(enum.Enum):
    """Symbolic working precision (``single`` = float32, ``double`` = float64)."""

    SINGLE = "single"
    DOUBLE = "double"

    @property
    def dtype(self) -> np.dtype:
        """NumPy dtype implementing this precision."""
        return np.dtype(np.float32 if self is Precision.SINGLE else np.float64)

    @property
    def eps(self) -> float:
        """Machine epsilon (unit roundoff ``2**-23`` or ``2**-52``)."""
        return float(np.finfo(self.dtype).eps)

    @property
    def word_bytes(self) -> int:
        """Bytes per floating-point word (4 or 8)."""
        return self.dtype.itemsize

    @property
    def qr_svd_floor(self) -> float:
        """Relative accuracy floor of QR-SVD singular values: ``O(eps)``."""
        return self.eps

    @property
    def gram_svd_floor(self) -> float:
        """Relative accuracy floor of Gram-SVD singular values: ``O(sqrt(eps))``."""
        return float(np.sqrt(self.eps))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


SINGLE = Precision.SINGLE
DOUBLE = Precision.DOUBLE


@dataclass(frozen=True)
class PrecisionInfo:
    """Resolved precision attributes, convenient for passing around."""

    precision: Precision
    dtype: np.dtype
    eps: float
    word_bytes: int


def resolve_precision(precision) -> Precision:
    """Coerce strings, dtypes, or :class:`Precision` values to a :class:`Precision`.

    Accepts ``"single"``/``"double"``, ``"float32"``/``"float64"``,
    ``np.float32``/``np.float64`` (types or dtypes), and Precision members.

    Raises
    ------
    ConfigurationError
        If the value does not name a supported precision.
    """
    if isinstance(precision, Precision):
        return precision
    if isinstance(precision, str):
        name = precision.lower()
        if name in ("single", "float32", "f32", "fp32"):
            return Precision.SINGLE
        if name in ("double", "float64", "f64", "fp64"):
            return Precision.DOUBLE
        raise ConfigurationError(f"unknown precision name: {precision!r}")
    try:
        dt = np.dtype(precision)
    except TypeError as exc:  # not dtype-like at all
        raise ConfigurationError(f"cannot interpret {precision!r} as a precision") from exc
    if dt == np.float32:
        return Precision.SINGLE
    if dt == np.float64:
        return Precision.DOUBLE
    raise ConfigurationError(f"unsupported dtype for working precision: {dt}")
