"""Data movement between tensor layouts (paper Sec. 3.2).

Two operations live here: seeding a block distribution from data held
only at the root, and the per-mode *unfolding redistribution* at the
heart of the parallel kernels — converting the block layout into a
column distribution of the mode-``n`` unfolding over the mode fiber,
so each fiber rank holds full-height columns ``Y_(n)[:, c0:c1]``.
"""

from __future__ import annotations

import numpy as np

from ..obs.tracer import trace_span
from ..tensor.dense import DenseTensor
from .distribution import block_range
from .dtensor import DistributedTensor, GridComms

__all__ = ["distribute_from_root", "redistribute_unfolding_to_columns"]

# Reserved tag band for distribution traffic, clear of user tags and of
# the checkpoint layer's buddy exchanges (988_000).
_DIST_TAG = 987_000


def distribute_from_root(
    comms: GridComms, full, root: int = 0
) -> DistributedTensor:
    """Scatter a full tensor held only on ``root`` into the block layout.

    ``full`` (ndarray or :class:`DenseTensor`) is consulted only on the
    root rank; every other rank may pass ``None``.  The root peels off
    each rank's block and sends it point-to-point, keeping its own
    slice locally.  Collective over ``comms.comm``.
    """
    comm = comms.comm
    grid = comms.grid
    if comm.rank == root:
        data = full.data if isinstance(full, DenseTensor) else np.asarray(full)
        meta = (tuple(data.shape), data.dtype.str)
    else:
        meta = None
    shape, dtype_str = comm.bcast(meta, root=root)
    if len(shape) != grid.ndim:
        raise ValueError(f"{len(shape)}-mode tensor on a {grid.ndim}-mode grid")

    if comm.rank == root:
        own = None
        for r in range(comm.size):
            slices = tuple(
                slice(*block_range(s, p, c))
                for s, p, c in zip(shape, grid.dims, grid.coords_of(r))
            )
            block = np.ascontiguousarray(data[slices])
            if r == root:
                own = block
            else:
                block.flags.writeable = False
                comm.send(block, r, tag=_DIST_TAG, copy=False)
        local = np.asfortranarray(own)
    else:
        local = np.asfortranarray(comm.recv(root, tag=_DIST_TAG))
        if local.dtype.str != dtype_str:  # pragma: no cover - defensive
            local = local.astype(np.dtype(dtype_str))
    return DistributedTensor(comms, DenseTensor(local), shape)


def redistribute_unfolding_to_columns(dt: DistributedTensor, n: int) -> np.ndarray:
    """Columns of the global mode-``n`` unfolding owned by this rank.

    Within the mode-``n`` fiber, each rank trades the column-split
    pieces of its local unfolding for the row blocks of its column
    range — one pairwise all-to-all of ``P_n - 1`` messages per rank.
    The returned slab has all ``I_n`` global rows and this fiber rank's
    contiguous share of the columns.  When ``P_n == 1`` the local
    unfolding already is the slab and no messages are exchanged.
    Staged pieces are frozen and moved, not copied.
    """
    grid = dt.grid
    p_n = grid.dims[n]
    M = dt.local.unfold(n)
    if p_n == 1:
        return M
    with trace_span("redistribute", mode=n, rows=M.shape[0], cols=M.shape[1]):
        fiber = dt.comms.fiber(n)
        me = fiber.rank
        cols_local = M.shape[1]
        pieces = []
        for q in range(p_n):
            c0, c1 = block_range(cols_local, p_n, q)
            piece = np.ascontiguousarray(M[:, c0:c1])
            piece.flags.writeable = False
            pieces.append(piece)
        received = fiber.alltoall(pieces, copy=False)
        # Fiber rank p holds the mode-n row block block_range(I_n, P_n, p)
        # of the global unfolding; stack in rank order to recover all rows.
        c0, c1 = block_range(cols_local, p_n, me)
        if c1 == c0:
            return np.zeros((dt.global_shape[n], 0), dtype=dt.dtype)
        return np.concatenate(received, axis=0)
