"""Parallel mode-``n`` SVD kernels (paper Sec. 3.3, Alg. 5).

Two pipelines, mirroring the sequential drivers:

* :func:`par_tensor_qr_svd` — the paper's numerically accurate path:
  local LQ of the redistributed unfolding slab, butterfly TSQR
  reduction of the transposed triangles, then an SVD of the reduced
  ``I_n x I_n`` triangle (replicated LAPACK, root-plus-broadcast, or
  parallel Jacobi).
* :func:`par_tensor_gram_svd` — the TuckerMPI baseline: replicated
  Gram matrix followed by an eigendecomposition.

Both return ``(U, sigma)`` bitwise identical on every rank.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError
from ..instrument import FlopCounter, PHASE_EVD, PHASE_LQ, PHASE_SVD
from ..linalg.svd import left_svd_of_triangle, svd_from_gram
from ..linalg.tensor_lq import tensor_lq
from ..linalg.qr import gelq
from ..obs.tracer import trace_span
from .dtensor import DistributedTensor
from .gram import par_tensor_gram
from .jacobi import par_jacobi_left_svd
from .redistribute import redistribute_unfolding_to_columns

__all__ = ["par_tensor_qr_svd", "par_tensor_gram_svd"]

_STRATEGIES = ("replicated", "root_bcast")


def _check_strategy(strategy: str) -> None:
    if strategy not in _STRATEGIES:
        raise DistributionError(
            f"unknown SVD strategy {strategy!r}; expected one of {_STRATEGIES}"
        )


def _replicated_solve(comm, strategy, solve):
    """Run ``solve`` redundantly everywhere or once at root + bcast.

    Both strategies yield bitwise-identical results on every rank
    because the input triangle is already replicated.
    """
    if strategy == "root_bcast":
        pair = solve() if comm.rank == 0 else None
        return comm.bcast(pair, root=0)
    return solve()


def par_tensor_qr_svd(
    dt: DistributedTensor,
    n: int,
    *,
    backend: str = "lapack",
    triangle_solver: str = "lapack",
    strategy: str = "replicated",
    counter: FlopCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Left singular vectors and values of the mode-``n`` unfolding via LQ.

    The paper's stable kernel: each rank LQ-factors its column slab of
    the unfolding, the ``L^T`` triangles are reduced with butterfly
    TSQR, and the final triangle's SVD supplies ``(U, sigma)``.
    ``backend`` selects the local LQ driver, ``triangle_solver`` picks
    ``"lapack"`` (gesvd) or ``"jacobi"`` (parallel one-sided Jacobi)
    for the reduced triangle, and ``strategy`` chooses ``"replicated"``
    (every rank solves redundantly) or ``"root_bcast"`` (rank 0 solves
    and broadcasts).  Collective; results are bitwise replicated.
    """
    from .tsqr import butterfly_tsqr_reduce

    _check_strategy(strategy)
    if triangle_solver not in ("lapack", "jacobi"):
        raise DistributionError(
            f"unknown triangle solver {triangle_solver!r}; "
            "expected 'lapack' or 'jacobi'"
        )
    comm = dt.comm
    rows = dt.global_shape[n]
    dtype = dt.dtype

    with trace_span("lq", phase=PHASE_LQ, mode=n, rows=rows), \
            comm.phase(PHASE_LQ, n):
        tmp = FlopCounter()
        if dt.grid.dims[n] == 1:
            L = tensor_lq(dt.local, n, backend=backend, counter=tmp)
        else:
            slab = redistribute_unfolding_to_columns(dt, n)
            if slab.shape[1] == 0:
                L = np.zeros((rows, 0), dtype=dtype)
            else:
                L = gelq(slab, backend=backend, counter=tmp, mode=n)
        comm.account_flops(tmp.total, dtype)
        if counter is not None:
            counter.merge(tmp)
        # Square upper triangle R = L^T, zero-padded when the local slab
        # had fewer columns than rows (degenerate small blocks).
        R = np.zeros((rows, rows), dtype=dtype)
        R[: L.shape[1], :] = L.T
        R = butterfly_tsqr_reduce(comm, R, counter=counter, mode=n)

    with trace_span("svd", phase=PHASE_SVD, mode=n, rows=rows), \
            comm.phase(PHASE_SVD, n):
        L_final = np.ascontiguousarray(R.T)
        if triangle_solver == "jacobi":
            return par_jacobi_left_svd(comm, L_final, counter=counter, mode=n)
        tmp = FlopCounter()
        U, sigma = _replicated_solve(
            comm,
            strategy,
            lambda: left_svd_of_triangle(L_final, counter=tmp, mode=n),
        )
        comm.account_flops(tmp.total, dtype)
        if counter is not None:
            counter.merge(tmp)
        return U, sigma


def par_tensor_gram_svd(
    dt: DistributedTensor,
    n: int,
    *,
    strategy: str = "replicated",
    counter: FlopCounter | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Left singular pairs of the mode-``n`` unfolding via the Gram matrix.

    The baseline kernel: replicated ``G = Y_(n) Y_(n)^T`` from
    :func:`par_tensor_gram`, then an eigendecomposition (redundant or
    root-plus-broadcast per ``strategy``).  Fast but squares the
    condition number — singular values below ``sqrt(eps) ||X||`` are
    lost, which is the paper's core accuracy argument.
    """
    _check_strategy(strategy)
    comm = dt.comm
    G = par_tensor_gram(dt, n, counter=counter)
    with trace_span("evd", phase=PHASE_EVD, mode=n, rows=G.shape[0]), \
            comm.phase(PHASE_EVD, n):
        tmp = FlopCounter()
        U, sigma = _replicated_solve(
            comm, strategy, lambda: svd_from_gram(G, counter=tmp, mode=n)
        )
        comm.account_flops(tmp.total, dt.dtype)
        if counter is not None:
            counter.merge(tmp)
        return U, sigma
