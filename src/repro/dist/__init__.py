"""Distributed-memory tensor layer: grids, block layouts, parallel kernels.

This package implements the data-distribution side of the paper: an
N-dimensional processor grid (Sec. 3.1), block-distributed dense
tensors, the unfolding redistribution that feeds mode-wise kernels
(Sec. 3.2), the butterfly TSQR reduction used by the numerically
accurate parallel QR-SVD (Sec. 3.3), the parallel Gram pipeline it is
compared against, one-sided Jacobi as an alternative triangle SVD, and
the truncating TTM that shrinks the tensor between modes (Sec. 3.4).
All kernels run on the simulated-MPI :mod:`repro.mpi` runtime and keep
their results bitwise replicated across ranks.
"""

from __future__ import annotations

from .distribution import block_range
from .dtensor import DistributedTensor, GridComms
from .gram import par_tensor_gram
from .grid import ProcessorGrid
from .jacobi import par_jacobi_left_svd
from .redistribute import distribute_from_root, redistribute_unfolding_to_columns
from .svd import par_tensor_gram_svd, par_tensor_qr_svd
from .tsqr import butterfly_tsqr_reduce
from .ttm import par_ttm_truncate

__all__ = [
    "ProcessorGrid",
    "GridComms",
    "DistributedTensor",
    "block_range",
    "distribute_from_root",
    "redistribute_unfolding_to_columns",
    "butterfly_tsqr_reduce",
    "par_tensor_gram",
    "par_tensor_gram_svd",
    "par_tensor_qr_svd",
    "par_jacobi_left_svd",
    "par_ttm_truncate",
]
