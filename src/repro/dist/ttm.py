"""Distributed truncating TTM (paper Sec. 3.4).

After a mode's factor ``U_n`` is known, the tensor shrinks:
``Y <- Y x_n U_n^T``.  Each rank multiplies its local block by its row
slice of ``U_n``, producing a partial result for the *full* truncated
mode extent; the mode fiber then reduce-scatters the partials so every
rank ends up with its block of the shrunk tensor — back in the standard
block distribution, ready for the next mode.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError
from ..instrument import FlopCounter, PHASE_TTM
from ..obs.tracer import trace_span
from ..tensor.dense import DenseTensor
from ..tensor.ttm import ttm, ttm_flops
from .distribution import block_range
from .dtensor import DistributedTensor

__all__ = ["par_ttm_truncate"]


def par_ttm_truncate(
    dt: DistributedTensor,
    U: np.ndarray,
    n: int,
    *,
    counter: FlopCounter | None = None,
) -> DistributedTensor:
    """Apply ``U^T`` along mode ``n``, returning the shrunk distribution.

    ``U`` is the replicated ``I_n x R_n`` factor; the result has global
    mode-``n`` extent ``R_n`` and the same block layout rule on the
    same grid.  Local partials are combined with a fiber
    reduce-scatter (skipped when ``P_n == 1``); staged pieces are
    frozen and moved rather than copied.  Collective.
    """
    U = np.asarray(U)
    if U.ndim != 2 or U.shape[0] != dt.global_shape[n]:
        raise DistributionError(
            f"factor must have {dt.global_shape[n]} rows for mode {n}, "
            f"got {U.shape}"
        )
    comm = dt.comm
    grid = dt.grid
    p_n = grid.dims[n]
    r_out = U.shape[1]
    new_shape = list(dt.global_shape)
    new_shape[n] = r_out
    with trace_span("ttm", phase=PHASE_TTM, mode=n, out_dim=r_out), \
            comm.phase(PHASE_TTM, n):
        r0, r1 = block_range(U.shape[0], p_n, dt.coords[n])
        partial = ttm(dt.local, U[r0:r1, :], n, transpose=True)
        comm.account_flops(ttm_flops(dt.local.shape, n, r_out), dt.dtype)
        if counter is not None:
            counter.add(
                ttm_flops(dt.local.shape, n, r_out), phase=PHASE_TTM, mode=n
            )
        if p_n == 1:
            return DistributedTensor(dt.comms, partial, tuple(new_shape))
        fiber = dt.comms.fiber(n)
        pieces = []
        for q in range(p_n):
            q0, q1 = block_range(r_out, p_n, q)
            idx = [slice(None)] * dt.ndim
            idx[n] = slice(q0, q1)
            piece = np.ascontiguousarray(partial.data[tuple(idx)])
            piece.flags.writeable = False
            pieces.append(piece)
        block = fiber.reduce_scatter(pieces)
        local = DenseTensor(np.asfortranarray(block))
        return DistributedTensor(dt.comms, local, tuple(new_shape))
