"""Logical N-dimensional processor grids (paper Sec. 3.1).

A :class:`ProcessorGrid` is pure arithmetic — it knows how ``P`` ranks
are arranged as a ``P_0 x ... x P_{N-1}`` grid and how linear ranks map
to grid coordinates, but holds no communicator.  Pairing a grid with a
world communicator happens in :class:`repro.dist.GridComms`.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..errors import DistributionError

__all__ = ["ProcessorGrid"]


class ProcessorGrid:
    """A ``P_0 x ... x P_{N-1}`` arrangement of ``P`` processes.

    Linearization is mode-0 fastest (column-major, matching the
    tensor's Fortran-order unfoldings and :class:`repro.mpi.CartComm`):
    rank ``r`` has coordinate ``r % P_0`` in mode 0, then ``(r // P_0)
    % P_1`` in mode 1, and so on.
    """

    def __init__(self, dims: Sequence[int]):
        dims = tuple(int(d) for d in dims)
        if not dims:
            raise DistributionError("processor grid needs at least one mode")
        if any(d < 1 for d in dims):
            raise DistributionError(f"grid dimensions must be positive, got {dims}")
        self._dims = dims

    # ------------------------------------------------------------------
    @classmethod
    def for_size(cls, size: int, ndim: int) -> "ProcessorGrid":
        """Balanced ``ndim``-mode grid for ``size`` processes.

        Greedily assigns the prime factors of ``size`` (largest first)
        to the currently smallest grid mode, yielding dimensions as
        close to ``size ** (1/ndim)`` as the factorization allows.
        Used by the fault-tolerant drivers to re-grid an arbitrary
        number of surviving ranks after a shrink.
        """
        if size < 1:
            raise DistributionError(f"grid size must be positive, got {size}")
        if ndim < 1:
            raise DistributionError(f"grid needs at least one mode, got {ndim}")
        dims = [1] * ndim
        for f in sorted(_prime_factors(size), reverse=True):
            i = min(range(ndim), key=lambda k: dims[k])
            dims[i] *= f
        return cls(tuple(sorted(dims, reverse=True)))

    # ------------------------------------------------------------------
    @property
    def dims(self) -> tuple[int, ...]:
        """Grid extents ``(P_0, ..., P_{N-1})``."""
        return self._dims

    @property
    def ndim(self) -> int:
        """Number of grid modes (tensor order it distributes)."""
        return len(self._dims)

    @property
    def size(self) -> int:
        """Total number of processes ``P = prod(dims)``."""
        return math.prod(self._dims)

    # ------------------------------------------------------------------
    def coords_of(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of linear ``rank`` (mode 0 varies fastest)."""
        if not 0 <= rank < self.size:
            raise DistributionError(
                f"rank {rank} out of range for size-{self.size} grid"
            )
        coords = []
        for d in self._dims:
            coords.append(rank % d)
            rank //= d
        return tuple(coords)

    def rank_of(self, coords: Sequence[int]) -> int:
        """Linear rank of grid ``coords`` (inverse of :meth:`coords_of`)."""
        coords = tuple(coords)
        if len(coords) != self.ndim:
            raise DistributionError(
                f"expected {self.ndim} coordinates, got {len(coords)}"
            )
        rank = 0
        stride = 1
        for c, d in zip(coords, self._dims):
            if not 0 <= c < d:
                raise DistributionError(f"coordinate {c} out of range for extent {d}")
            rank += c * stride
            stride *= d
        return rank

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        return isinstance(other, ProcessorGrid) and other._dims == self._dims

    def __hash__(self) -> int:
        return hash(self._dims)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProcessorGrid({'x'.join(map(str, self._dims))})"


def _prime_factors(n: int) -> list[int]:
    factors = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            factors.append(d)
            n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors
