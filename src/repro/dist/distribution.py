"""Block distribution arithmetic shared by every distributed kernel.

The rule matches the runtime's collective block partitioning (and MPI's
conventional uneven block distribution): the first ``length % nprocs``
processes get one extra element, so block sizes differ by at most one.
"""

from __future__ import annotations

__all__ = ["block_range"]


def block_range(length: int, nprocs: int, proc: int) -> tuple[int, int]:
    """Half-open index range ``[start, stop)`` owned by ``proc``.

    ``length`` elements are distributed over ``nprocs`` processes in
    contiguous blocks whose sizes differ by at most one; the first
    ``length % nprocs`` processes receive the larger blocks.  This is
    the same rule :class:`repro.mpi.Communicator` uses internally for
    reduce-scatter/allgather blocks, so tensor layouts and collective
    payloads stay aligned.
    """
    base, extra = divmod(length, nprocs)
    start = proc * base + min(proc, extra)
    stop = start + base + (1 if proc < extra else 0)
    return start, stop
