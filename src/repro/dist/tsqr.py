"""Butterfly TSQR reduction of per-rank triangles (paper Sec. 3.3).

Each rank starts from the ``R`` factor of its local columns; pairwise
``tpqrt``-style reductions combine triangles until every rank holds the
``R`` factor of the full matrix.  The butterfly exchange pattern gives
all ranks the final triangle in ``log2 P`` rounds with no broadcast,
and the fixed stacking order (lower-ranked partner on top) makes the
result *bitwise identical* on every rank — the property the drivers
rely on to keep factor matrices replicated without extra collectives.
"""

from __future__ import annotations

import numpy as np

from ..errors import DistributionError
from ..instrument import FlopCounter
from ..linalg.tpqrt import tpqrt_flops, tpqrt_reduce_triangles
from ..mpi.communicator import Communicator

__all__ = ["butterfly_tsqr_reduce"]

# Reserved tag band: one tag per butterfly round plus one for folding
# the non-power-of-two excess ranks in and out.
_TSQR_TAG = 986_000


def butterfly_tsqr_reduce(
    comm: Communicator,
    R: np.ndarray,
    *,
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> np.ndarray:
    """Reduce per-rank ``k x k`` upper triangles to the global ``R``.

    For ``P`` a power of two this is exactly ``log2 P`` sendrecv rounds
    per rank; otherwise the ``P - m`` excess ranks (``m`` the largest
    power of two ``<= P``) first fold their triangles into partners,
    sit out the butterfly, and receive the final triangle back.  The
    reduction order is deterministic, so all ranks return bitwise
    identical arrays.  Flops are charged to ``counter`` and to the
    communicator's logical clock when a cost model is active.
    """
    R = np.ascontiguousarray(np.triu(R))
    if R.ndim != 2 or R.shape[0] != R.shape[1]:
        raise DistributionError(
            f"butterfly reduction needs square triangles, got {R.shape}"
        )
    p = comm.size
    if p == 1:
        return R
    k = R.shape[0]
    me = comm.rank
    m = 1 << (p.bit_length() - 1)  # largest power of two <= p
    excess = p - m

    def _combine(mine: np.ndarray, other: np.ndarray, low_rank: int) -> np.ndarray:
        # Deterministic stacking: the lower-ranked contributor's triangle
        # goes on top, so both sides of an exchange compute the same
        # reduction bit-for-bit.
        top, bottom = (mine, other) if low_rank == me else (other, mine)
        out = tpqrt_reduce_triangles(top, bottom, counter=counter, mode=mode)
        comm.account_flops(tpqrt_flops(k, k, k), out.dtype)
        return out

    if me >= m:
        # Excess rank: fold in, wait for the reduced result.
        comm.send(R, me - m, tag=_TSQR_TAG)
        return comm.recv(me - m, tag=_TSQR_TAG + 99)

    if me < excess:
        folded = comm.recv(me + m, tag=_TSQR_TAG)
        R = _combine(R, folded, me)

    rounds = m.bit_length() - 1  # log2 m
    for r in range(rounds):
        partner = me ^ (1 << r)
        other = comm.sendrecv(R, partner, tag=_TSQR_TAG + 1 + r)
        R = _combine(R, other, min(me, partner))

    if me < excess:
        comm.send(R, me + m, tag=_TSQR_TAG + 99)
    return R
