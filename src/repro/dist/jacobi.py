"""Brent-Luk parallel one-sided Jacobi SVD (paper Sec. 5 future work).

The sequential bottleneck the paper flags — every rank redundantly
computing the SVD of the reduced triangle — is addressed by splitting
each Jacobi round's disjoint column pairs across ranks.  A round-robin
tournament schedule (Brent & Luk) covers all ``n (n-1) / 2`` pairs in
``n - 1`` rounds of disjoint pairs; ranks rotate their assigned pairs
and allgather the updated columns, keeping the working matrix bitwise
replicated so the final factors need no extra synchronization.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, ShapeError
from ..instrument import FlopCounter, PHASE_SVD
from ..linalg.jacobi import jacobi_orthogonalize_pairs
from ..mpi.communicator import Communicator

__all__ = ["par_jacobi_left_svd"]


def _round_robin_rounds(n: int) -> list[list[tuple[int, int]]]:
    """Tournament schedule: ``n - 1`` rounds of disjoint pairs covering all."""
    cols = list(range(n))
    if n % 2:
        cols.append(-1)  # bye slot for odd column counts
    m = len(cols)
    rounds = []
    arr = cols[:]
    for _ in range(m - 1):
        pairs = []
        for i in range(m // 2):
            a, b = arr[i], arr[m - 1 - i]
            if a != -1 and b != -1:
                pairs.append((min(a, b), max(a, b)))
        rounds.append(sorted(pairs))
        arr = [arr[0], arr[m - 1]] + arr[1:m - 1]
    return rounds


def par_jacobi_left_svd(
    comm: Communicator,
    A: np.ndarray,
    *,
    max_sweeps: int = 30,
    tol: float | None = None,
    counter: FlopCounter | None = None,
    mode: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Replicated ``(U, sigma)`` of ``A`` via parallel one-sided Jacobi.

    ``A`` must be the same matrix on every rank of ``comm`` (the
    drivers pass the butterfly-reduced triangle, which is bitwise
    replicated).  Each tournament round's pairs are dealt round-robin
    to ranks; every rank rotates its share in place and the rotated
    columns are allgathered so the working matrix stays bitwise
    identical everywhere.  Terminates when a full sweep applies zero
    rotations across all ranks combined.

    Raises
    ------
    ConvergenceError
        If ``max_sweeps`` sweeps do not reach column orthogonality.
    """
    A = np.asarray(A)
    if A.ndim != 2:
        raise ShapeError("expected a matrix")
    W = np.array(A, order="F", copy=True)
    m, n = W.shape
    frob = float(np.linalg.norm(W.astype(np.float64, copy=False)))
    zero_sq = (float(np.finfo(W.dtype).eps) * frob) ** 2
    schedule = _round_robin_rounds(n)
    p = comm.size
    me = comm.rank
    total_rot = 0
    for _sweep in range(max_sweeps):
        sweep_rot = 0
        for rnd in schedule:
            mine = [pair for i, pair in enumerate(rnd) if i % p == me]
            rot = jacobi_orthogonalize_pairs(
                W, pairs=mine, tol=tol, zero_sq=zero_sq
            )
            cols = tuple(c for pair in mine for c in pair)
            block = np.ascontiguousarray(W[:, list(cols)]) if cols else None
            # Pairs within a round are disjoint, so writes never overlap
            # and every rank ends the round with a bitwise-identical W
            # (each rank's own columns are overwritten by its own
            # gathered entry, which is the same data).
            for src_cols, src_block, src_rot in comm.allgather(
                (cols, block, rot)
            ):
                if src_cols:
                    W[:, list(src_cols)] = src_block
                sweep_rot += src_rot
        total_rot += sweep_rot
        if sweep_rot == 0:
            break
    else:
        raise ConvergenceError(
            f"parallel one-sided Jacobi did not converge in {max_sweeps} sweeps"
        )
    sigma = np.linalg.norm(W.astype(np.float64, copy=False), axis=0)
    order = np.argsort(sigma, kind="stable")[::-1]
    sigma = sigma[order]
    W = W[:, order]
    U = np.zeros_like(W)
    nz = sigma > 0
    U[:, nz] = W[:, nz] / sigma[nz].astype(W.dtype)
    if counter is not None:
        # Same accounting as the sequential kernel: ~6m flops per
        # rotation plus the pair dot products of each sweep.
        counter.add(
            int(6 * m * total_rot + 4 * m * n * n), phase=PHASE_SVD, mode=mode
        )
    return U, sigma.astype(A.dtype)
