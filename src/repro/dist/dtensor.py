"""Block-distributed dense tensors over a processor grid (Sec. 3.1).

``X`` of global shape ``(I_0, ..., I_{N-1})`` on a ``P_0 x ... x
P_{N-1}`` grid gives the rank at coordinates ``(p_0, ..., p_{N-1})``
the block ``X[range(I_0,P_0,p_0), ...]`` — contiguous slabs whose
extents differ by at most one along each mode (:func:`block_range`).
:class:`GridComms` bundles the world communicator with the Cartesian
topology and caches the per-mode fiber communicators the kernels need.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import DistributionError
from ..mpi.cart import CartComm
from ..mpi.communicator import Communicator
from ..tensor.dense import DenseTensor
from .distribution import block_range
from .grid import ProcessorGrid

__all__ = ["GridComms", "DistributedTensor"]


class GridComms:
    """A world communicator paired with a processor-grid topology.

    Wraps :class:`repro.mpi.CartComm` and eagerly builds the mode
    fibers: ``fiber(n)`` is the communicator connecting the ``P_n``
    ranks that differ only in grid coordinate ``n`` — the group that
    cooperates on mode-``n`` unfoldings.  Construction is collective
    over ``comm`` (it performs one split per grid mode).
    """

    def __init__(self, comm: Communicator, grid: ProcessorGrid):
        if grid.size != comm.size:
            raise DistributionError(
                f"grid {grid.dims} needs {grid.size} ranks, "
                f"communicator has {comm.size}"
            )
        self._comm = comm
        self._grid = grid
        self._cart = CartComm(comm, grid.dims)
        # Collective and deterministic: every rank builds every fiber
        # here, so later (possibly data-dependent) fiber uses need no
        # coordination.
        self._fibers = tuple(
            self._cart.fiber(n).comm for n in range(grid.ndim)
        )

    # ------------------------------------------------------------------
    @property
    def comm(self) -> Communicator:
        """The world communicator spanning the whole grid."""
        return self._comm

    @property
    def grid(self) -> ProcessorGrid:
        """The logical processor grid this rank belongs to."""
        return self._grid

    @property
    def cart(self) -> CartComm:
        """The underlying Cartesian topology communicator."""
        return self._cart

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's grid coordinates (mode 0 varies fastest)."""
        return self._grid.coords_of(self._comm.rank)

    def fiber(self, n: int) -> Communicator:
        """Mode-``n`` fiber communicator through this rank.

        Its rank equals this process's grid coordinate ``n`` and its
        size is ``P_n``; ranks in a fiber hold the blocks that tile a
        full mode-``n`` slab of the global tensor.
        """
        if not 0 <= n < self._grid.ndim:
            raise DistributionError(
                f"mode {n} out of range for {self._grid.ndim}-mode grid"
            )
        return self._fibers[n]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GridComms(grid={self._grid!r}, rank={self._comm.rank})"


class _DetachedGridComms:
    """Stand-in for :class:`GridComms` after a process-boundary crossing.

    A live communicator graph cannot be pickled (the ``procs``
    transport ships rank return values back to the master process), so
    a pickled :class:`DistributedTensor` detaches: the grid layout,
    this rank's coordinates, and the local block survive, while
    anything that would communicate raises :class:`DistributionError`
    instead of hanging or corrupting state.
    """

    def __init__(self, dims: Sequence[int], rank: int):
        self._grid = ProcessorGrid(tuple(dims))
        self._rank = int(rank)

    @property
    def grid(self) -> ProcessorGrid:
        return self._grid

    @property
    def coords(self) -> tuple[int, ...]:
        return self._grid.coords_of(self._rank)

    def _no_world(self):
        raise DistributionError(
            "this DistributedTensor was detached from its SPMD world when "
            "it crossed a process boundary (e.g. returned from "
            "run_spmd(backend='procs')); layout metadata and the local "
            "block remain usable, but collective operations need a live "
            "communicator — run them inside the rank program instead"
        )

    @property
    def comm(self):
        self._no_world()

    @property
    def cart(self):
        self._no_world()

    def fiber(self, n: int):
        self._no_world()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"_DetachedGridComms(grid={self._grid!r}, rank={self._rank})"


class DistributedTensor:
    """A dense tensor block-distributed over a processor grid.

    Each rank stores one contiguous block (a :class:`DenseTensor`) of
    the global array; the mapping from grid coordinates to index ranges
    is :func:`repro.dist.block_range` per mode.  All methods that
    communicate are collective over the world communicator.
    """

    def __init__(self, comms: GridComms, local, global_shape: Sequence[int]):
        global_shape = tuple(int(s) for s in global_shape)
        if len(global_shape) != comms.grid.ndim:
            raise DistributionError(
                f"{len(global_shape)}-mode tensor on a "
                f"{comms.grid.ndim}-mode grid"
            )
        if not isinstance(local, DenseTensor):
            local = DenseTensor(np.asarray(local))
        expected = tuple(
            block_range(s, p, c)[1] - block_range(s, p, c)[0]
            for s, p, c in zip(global_shape, comms.grid.dims,
                               comms.grid.coords_of(comms.comm.rank))
        )
        if local.shape != expected:
            raise DistributionError(
                f"rank {comms.comm.rank} expected local block {expected} "
                f"for global {global_shape}, got {local.shape}"
            )
        self._comms = comms
        self._local = local
        self._global_shape = global_shape

    # ------------------------------------------------------------------
    @classmethod
    def from_full(cls, comms: GridComms, full) -> "DistributedTensor":
        """Distribute a replicated full tensor: each rank slices its block.

        ``full`` must be the same array on every rank (no communication
        happens — each rank just keeps its own slice).  Use
        :func:`repro.dist.distribute_from_root` when only the root
        holds the data.
        """
        data = full.data if isinstance(full, DenseTensor) else np.asarray(full)
        grid = comms.grid
        if data.ndim != grid.ndim:
            raise DistributionError(
                f"{data.ndim}-mode tensor on a {grid.ndim}-mode grid"
            )
        coords = grid.coords_of(comms.comm.rank)
        slices = tuple(
            slice(*block_range(s, p, c))
            for s, p, c in zip(data.shape, grid.dims, coords)
        )
        block = np.asfortranarray(data[slices])
        return cls(comms, DenseTensor(block), data.shape)

    # ------------------------------------------------------------------
    @property
    def comms(self) -> GridComms:
        """The grid/communicator bundle this tensor lives on."""
        return self._comms

    @property
    def comm(self) -> Communicator:
        """The world communicator (all grid ranks)."""
        return self._comms.comm

    @property
    def grid(self) -> ProcessorGrid:
        """The processor grid describing the distribution."""
        return self._comms.grid

    @property
    def coords(self) -> tuple[int, ...]:
        """This rank's grid coordinates."""
        return self._comms.coords

    @property
    def local(self) -> DenseTensor:
        """This rank's local block as a :class:`DenseTensor`."""
        return self._local

    @property
    def ndim(self) -> int:
        """Number of tensor modes."""
        return len(self._global_shape)

    @property
    def dtype(self) -> np.dtype:
        """Element dtype of the local block (identical on all ranks)."""
        return self._local.dtype

    @property
    def global_shape(self) -> tuple[int, ...]:
        """Shape of the full (undistributed) tensor."""
        return self._global_shape

    @property
    def global_size(self) -> int:
        """Total number of elements of the full tensor."""
        out = 1
        for s in self._global_shape:
            out *= s
        return out

    # ------------------------------------------------------------------
    def local_slices(self) -> tuple[slice, ...]:
        """Global index slices covered by this rank's block, per mode."""
        return tuple(
            slice(*block_range(s, p, c))
            for s, p, c in zip(self._global_shape, self.grid.dims, self.coords)
        )

    def astype(self, precision) -> "DistributedTensor":
        """Copy in another precision (dtype, or name ``"single"``/``"double"``)."""
        if isinstance(precision, str):
            precision = {"single": np.float32, "double": np.float64}.get(
                precision, precision
            )
        return DistributedTensor(
            self._comms, self._local.astype(precision), self._global_shape
        )

    def norm_squared(self) -> float:
        """Global squared Frobenius norm, identical on every rank.

        Local blocks accumulate in float64 and a deterministic
        allreduce combines them, so the result is bitwise replicated.
        """
        flat = self._local.flat_view().astype(np.float64, copy=False)
        local = np.array([float(np.dot(flat, flat))])
        local.flags.writeable = False
        return float(self.comm.allreduce(local)[0])

    def norm(self) -> float:
        """Global Frobenius norm (square root of :meth:`norm_squared`)."""
        return float(np.sqrt(self.norm_squared()))

    def gather(self) -> DenseTensor:
        """Reassemble the full tensor on every rank (allgather of blocks).

        Intended for tests, small cores, and checkpoint recovery — the
        result is the complete global array, so it defeats the memory
        scaling the distribution exists for.
        """
        payload = (self.local_slices(), np.ascontiguousarray(self._local.data))
        pieces = self.comm.allgather(payload)
        full = np.zeros(self._global_shape, dtype=self.dtype, order="F")
        for slices, block in pieces:
            full[tuple(slices)] = block
        return DenseTensor(full)

    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        """Detach for pickling: keep layout + local block, drop the world."""
        if isinstance(self._comms, _DetachedGridComms):
            rank = self._comms._rank
        else:
            rank = self._comms.comm.rank
        return {
            "dims": self.grid.dims,
            "rank": rank,
            "local": np.asarray(self._local.data),
            "global_shape": self._global_shape,
        }

    def __setstate__(self, state: dict) -> None:
        self._comms = _DetachedGridComms(state["dims"], state["rank"])
        self._local = DenseTensor(state["local"])
        self._global_shape = tuple(state["global_shape"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DistributedTensor(global={self._global_shape}, "
            f"local={self._local.shape}, grid={self.grid.dims})"
        )
