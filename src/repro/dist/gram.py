"""Parallel Gram-matrix pipeline (the TuckerMPI baseline, Sec. 2.3).

The mode-``n`` Gram matrix ``G = Y_(n) Y_(n)^T`` is assembled by
letting each rank syrk its share of the unfolding's columns and
summing the partial products with one deterministic allreduce, so the
replicated ``G`` is bitwise identical everywhere.  When the mode fiber
is trivial (``P_n == 1``) the blockwise local kernel runs directly on
the block — no redistribution, no staging copies.
"""

from __future__ import annotations

import numpy as np

from ..instrument import FlopCounter, PHASE_GRAM
from ..linalg.gram import gram_matrix, tensor_gram
from ..obs.tracer import trace_span
from .dtensor import DistributedTensor
from .redistribute import redistribute_unfolding_to_columns

__all__ = ["par_tensor_gram"]


def par_tensor_gram(
    dt: DistributedTensor, n: int, *, counter: FlopCounter | None = None
) -> np.ndarray:
    """Replicated mode-``n`` Gram matrix of a distributed tensor.

    Redistributes the unfolding into fiber-local column slabs (skipped
    when ``P_n == 1``), computes the local partial Gram, and allreduces
    the ``I_n x I_n`` partials.  The partial is frozen before the
    allreduce so the collective moves rather than copies it.  Collective
    over the world communicator; the result is bitwise identical on all
    ranks.
    """
    comm = dt.comm
    grid = dt.grid
    with trace_span("gram", phase=PHASE_GRAM, mode=n,
                    rows=dt.global_shape[n]), comm.phase(PHASE_GRAM, n):
        tmp = FlopCounter()
        if grid.dims[n] == 1:
            G_local = tensor_gram(dt.local, n, counter=tmp)
        else:
            slab = redistribute_unfolding_to_columns(dt, n)
            G_local = gram_matrix(slab, counter=tmp, mode=n)
        comm.account_flops(tmp.total, dt.dtype)
        if counter is not None:
            counter.merge(tmp)
        G_local = np.ascontiguousarray(G_local)
        G_local.flags.writeable = False
        return comm.allreduce(G_local)
