"""Per-rank abstract interpretation of SPMD functions.

The core of the whole-program verifier: each communicator-taking
function is symbolically executed once **per abstract rank** against a
small concrete world (``world_size=2`` by default).  With the rank a
known constant, ``comm.rank``-dependent branches constant-fold into
decidable control flow, so the execution of rank 0 and rank 1 genuinely
diverge exactly where the program's communication diverges — the
MUST-style insight that makes cross-rank matching checkable at lint
time.

Each run yields a :class:`Trace` — the ordered sequence of abstract
communication events (collectives with their op/root signature,
point-to-point sends and receives with constant-folded dest/source and
tag) plus a **completeness** bit.  The trace is complete only when the
interpreter never had to guess about communication: a loop with an
unknown trip count that performs communication, an opaque call that
receives a communicator, an unmodeled communicator method, or a blown
call-depth/recursion limit all poison completeness.  The matcher in
:mod:`repro.sanitize.verify` only reports cross-rank findings
(collective mismatches, deadlocks, unmatched point-to-point) from
complete traces — incompleteness silences the cross-rank rules rather
than producing guesses.

Abstract values are deliberately few: constants (folded through
arithmetic, comparisons, and short-circuit logic), communicators,
carrier objects (an entry parameter whose ``.comm`` the body reads —
the ``sthosvd_parallel(dt, ...)`` shape), and :class:`Buffer` — an
alias-tracked opaque object.  Every opaque call returns a *fresh*
buffer, so ``view = payload`` aliases and ``send(view, copy=False)``
marks the one shared buffer moved; any later attribute access,
subscript, or opaque-call use of it — in the caller, three frames up —
is a ``use-after-move`` finding.  Ownership findings are local facts
and are reported even from incomplete traces.

Decisions the interpreter cannot make are resolved *uniformly*: an
undecidable branch takes the then-branch on every rank, so abstraction
alone can never manufacture cross-rank divergence.
"""

from __future__ import annotations

import ast
import itertools
from dataclasses import dataclass, field

from .callgraph import FunctionInfo, Project
from .diagnostics import ERROR, CallSite, Diagnostic

__all__ = [
    "Buffer",
    "CommEvent",
    "Trace",
    "RankInterp",
    "run_rank",
]

# Communicator methods modeled as primitives.
_COLLECTIVE_OPS = frozenset({
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "reduce_scatter",
})
_SUBCOMM_OPS = frozenset({"split", "dup", "shrink"})
# Communicator methods that perform no communication: instrumentation
# and introspection helpers, safe to treat as inert.
_BENIGN_OPS = frozenset({
    "phase", "account_flops", "context", "tuning", "revoke",
})
_P2P_OPS = frozenset({"send", "isend", "recv", "irecv", "sendrecv"})
# (positional index, keyword) of the interesting arguments.
_ROOT_ARG = {"bcast": 1, "reduce": 1, "gather": 1, "scatter": 1}
_DEST_ARG = {"send": 1, "isend": 1, "sendrecv": 1}
_TAG_ARG = {"send": 2, "isend": 2, "sendrecv": 2, "recv": 1, "irecv": 1}
_SRC_ARG = {"recv": 0, "irecv": 0}

_MAX_UNROLL = 64
_MAX_DEPTH = 16

_buffer_ids = itertools.count(1)


# ----------------------------------------------------------------------
# Abstract values
# ----------------------------------------------------------------------
class Unknown:
    """Top: a value the interpreter knows nothing about."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<unknown>"


UNKNOWN = Unknown()


@dataclass(frozen=True)
class Const:
    value: object


@dataclass
class Buffer:
    """An alias-tracked opaque object (array, list, result, ...)."""

    label: str = "<buffer>"
    moved_at: CallSite | None = None
    moved_op: str = ""
    bid: int = field(default_factory=lambda: next(_buffer_ids))


@dataclass
class CommVal:
    """A communicator with a concrete rank/size binding."""

    rank: int
    size: int
    opaque: bool = False  # a split/dup product: events unmodelable


@dataclass
class CarrierVal:
    """An object whose ``.comm`` attribute is the communicator."""

    comm: CommVal
    attrs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class FuncRef:
    info: FunctionInfo


@dataclass(frozen=True)
class Prim:
    """A communicator method bound and ready to call."""

    comm: CommVal
    op: str  # method name, or "?" for an unmodeled comm attribute


# ----------------------------------------------------------------------
# Events and traces
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CommEvent:
    """One abstract communication action of one rank.

    ``kind`` is ``collective`` / ``send`` / ``recv``.  For collectives
    ``op`` is the method name and ``root`` its constant-folded root (or
    ``None`` when rootless/undecidable).  For point-to-point, ``peer``
    and ``tag`` are constant-folded ints or ``None`` when undecidable.
    """

    kind: str
    op: str
    site: CallSite
    root: object = None
    peer: object = None
    tag: object = None
    moved: bool = False

    def signature(self):
        return (self.op, self.root)


@dataclass
class Trace:
    rank: int
    events: list = field(default_factory=list)
    complete: bool = True
    notes: list = field(default_factory=list)

    def poison(self, reason: str) -> None:
        if self.complete:
            self.complete = False
        if reason not in self.notes:
            self.notes.append(reason)


# Control-flow signals.
class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _FuncExit(Exception):
    """An (abstract) raise: unwinds the current function."""


def _fresh_buffer(label: str = "<buffer>") -> Buffer:
    return Buffer(label=label)


# ----------------------------------------------------------------------
# Interpreter
# ----------------------------------------------------------------------
class RankInterp:
    """Symbolic executor for one abstract rank of one entry function."""

    def __init__(self, project: Project, rank: int, world_size: int) -> None:
        self.project = project
        self.rank = rank
        self.world = world_size
        self.trace = Trace(rank=rank)
        self.findings: list[Diagnostic] = []
        self._reported: set[tuple] = set()
        self.call_stack: list[str] = []

    # -- entry ----------------------------------------------------------
    def run(self, entry: FunctionInfo) -> Trace:
        env: dict[str, object] = {}
        comm = CommVal(rank=self.rank, size=self.world)
        for p in entry.params:
            if p in entry.comm_params:
                env[p] = comm
            elif p in entry.comm_carriers:
                env[p] = CarrierVal(comm=comm)
            else:
                env[p] = self._default_value(entry, p)
        self._exec_function(entry, env)
        return self.trace

    def _default_value(self, info: FunctionInfo, param: str):
        node = info.defaults.get(param)
        if node is not None:
            try:
                return Const(ast.literal_eval(node))
            except (ValueError, SyntaxError):
                return _fresh_buffer(param)
        return _fresh_buffer(param)

    # -- function execution ---------------------------------------------
    def _exec_function(self, info: FunctionInfo, env: dict):
        if any(isinstance(n, (ast.Yield, ast.YieldFrom))
               for n in ast.walk(info.node)):
            self.trace.poison(
                f"generator {info.qualname} treated as opaque")
            return _fresh_buffer(info.name)
        self.call_stack.append(info.qualname)
        prev = getattr(self, "_info", None)
        self._info = info
        try:
            self._exec_block(info.node.body, env)
            return Const(None)
        except _Return as ret:
            return ret.value
        except _FuncExit:
            raise
        finally:
            self._info = prev
            self.call_stack.pop()

    def _site(self, node: ast.AST) -> CallSite:
        info = getattr(self, "_info", None)
        return CallSite(
            file=info.file if info else "<unknown>",
            line=getattr(node, "lineno", 0),
            function=info.name if info else "?",
        )

    # -- statements ------------------------------------------------------
    def _exec_block(self, stmts, env) -> None:
        for stmt in stmts:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt, env) -> None:
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env)
        elif isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env)
            for tgt in stmt.targets:
                self._bind(tgt, value, env)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._bind(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            # In-place update: a *use* of the current binding.
            cur = self._eval_target_load(stmt.target, env)
            self._check_use(cur, self._site(stmt), "updated in place")
            rhs = self._eval(stmt.value, env)
            if isinstance(cur, Const) and isinstance(rhs, Const):
                folded = self._fold_binop(stmt.op, cur, rhs)
                self._bind(stmt.target, folded, env)
            else:
                self._bind(stmt.target, cur if isinstance(cur, Buffer)
                           else UNKNOWN, env)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, env)
        elif isinstance(stmt, ast.For) or isinstance(stmt, ast.AsyncFor):
            self._exec_for(stmt, env)
        elif isinstance(stmt, ast.While):
            self._exec_while(stmt, env)
        elif isinstance(stmt, ast.Return):
            value = (self._eval(stmt.value, env)
                     if stmt.value is not None else Const(None))
            raise _Return(value)
        elif isinstance(stmt, ast.Break):
            raise _Break()
        elif isinstance(stmt, ast.Continue):
            raise _Continue()
        elif isinstance(stmt, ast.Raise):
            raise _FuncExit()
        elif isinstance(stmt, ast.Try):
            # Handlers are skipped: the no-exception path is the one the
            # cross-rank protocol is written for.
            try:
                self._exec_block(stmt.body, env)
                self._exec_block(stmt.orelse, env)
            finally:
                self._exec_block(stmt.finalbody, env)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                ctx = self._eval(item.context_expr, env)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, ctx, env)
            self._exec_block(stmt.body, env)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info = self.project.functions.get(
                f"{self._info.module}.{stmt.name}") if self._info else None
            env[stmt.name] = FuncRef(info) if info else UNKNOWN
        elif isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                if isinstance(tgt, ast.Name):
                    env.pop(tgt.id, None)
        elif isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom,
                               ast.Global, ast.Nonlocal, ast.Assert,
                               ast.ClassDef)):
            pass
        else:
            # Unmodeled statement (match, ...): skip, stay sound by
            # noting nothing — it executes uniformly on every rank.
            pass

    def _exec_if(self, stmt, env) -> None:
        cond = self._truthy(self._eval(stmt.test, env))
        if cond is True:
            self._exec_block(stmt.body, env)
        elif cond is False:
            self._exec_block(stmt.orelse, env)
        else:
            # Undecidable: every rank takes the then-branch uniformly,
            # so abstraction never fabricates divergence.
            self._exec_block(stmt.body, env)

    def _exec_for(self, stmt, env) -> None:
        items = self._iterable_items(stmt.iter, env)
        if items is None:
            before = len(self.trace.events)
            self._bind(stmt.target, UNKNOWN, env)
            try:
                self._exec_block(stmt.body, env)
            except _Break:
                pass
            except _Continue:
                pass
            if len(self.trace.events) != before:
                self.trace.poison(
                    f"loop with unknown trip count performs communication "
                    f"({self._site(stmt)})")
            self._exec_block(stmt.orelse, env)
            return
        broke = False
        for item in items:
            self._bind(stmt.target, item, env)
            try:
                self._exec_block(stmt.body, env)
            except _Break:
                broke = True
                break
            except _Continue:
                continue
        if not broke:
            self._exec_block(stmt.orelse, env)

    def _exec_while(self, stmt, env) -> None:
        for _ in range(_MAX_UNROLL):
            cond = self._truthy(self._eval(stmt.test, env))
            if cond is False:
                self._exec_block(stmt.orelse, env)
                return
            before = len(self.trace.events)
            try:
                self._exec_block(stmt.body, env)
            except _Break:
                return
            except _Continue:
                pass
            if cond is None:
                # Undecidable condition: one uniform iteration.
                if len(self.trace.events) != before:
                    self.trace.poison(
                        f"while-loop with undecidable condition performs "
                        f"communication ({self._site(stmt)})")
                return
        self.trace.poison(
            f"while-loop exceeded {_MAX_UNROLL} unrolled iterations "
            f"({self._site(stmt)})")

    def _iterable_items(self, node: ast.expr, env):
        """Concrete iteration items, or None when the trip is unknown."""
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            fname = node.func.id
            if fname == "range" and not node.keywords:
                args = [self._eval(a, env) for a in node.args]
                if all(isinstance(a, Const) and isinstance(a.value, int)
                       for a in args):
                    r = range(*[a.value for a in args])
                    if len(r) <= _MAX_UNROLL:
                        return [Const(i) for i in r]
                return None
            if fname == "enumerate" and len(node.args) == 1:
                inner = self._iterable_items(node.args[0], env)
                if inner is not None:
                    return [_pair(Const(i), item)
                            for i, item in enumerate(inner)]
                return None
        value = self._eval(node, env)
        if isinstance(value, Const) and isinstance(
                value.value, (list, tuple, range)):
            seq = list(value.value)
            if len(seq) <= _MAX_UNROLL:
                return [Const(v) for v in seq]
        if isinstance(value, tuple):
            return list(value)
        return None

    # -- binding ---------------------------------------------------------
    def _bind(self, target, value, env) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elts = target.elts
            parts = None
            if isinstance(value, tuple) and len(value) == len(elts):
                parts = list(value)
            elif (isinstance(value, Const)
                    and isinstance(value.value, (list, tuple))
                    and len(value.value) == len(elts)):
                parts = [Const(v) for v in value.value]
            for i, elt in enumerate(elts):
                if isinstance(elt, ast.Starred):
                    self._bind(elt.value, UNKNOWN, env)
                else:
                    self._bind(elt, parts[i] if parts else UNKNOWN, env)
        elif isinstance(target, ast.Attribute):
            base = self._eval(target.value, env)
            if isinstance(base, CarrierVal):
                base.attrs[target.attr] = value
            elif isinstance(base, Buffer):
                self._check_use(base, self._site(target), "written through")
        elif isinstance(target, ast.Subscript):
            base = self._eval(target.value, env)
            self._eval(target.slice, env)
            if isinstance(base, Buffer):
                self._check_use(base, self._site(target), "written into")

    def _eval_target_load(self, target, env):
        """Current value of an AugAssign target, as a load."""
        if isinstance(target, ast.Name):
            return env.get(target.id, UNKNOWN)
        return self._eval(target, env)

    # -- expressions ------------------------------------------------------
    def _eval(self, node, env):
        if node is None:
            return Const(None)
        method = getattr(
            self, f"_eval_{type(node).__name__.lower()}", None)
        if method is not None:
            return method(node, env)
        # Unmodeled expression: evaluate children for use-checks.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child, env)
        return UNKNOWN

    def _eval_constant(self, node, env):
        return Const(node.value)

    def _eval_name(self, node, env):
        if node.id in env:
            return env[node.id]
        info = self._info
        if info is not None:
            # Same-module function, imported function, module constant.
            fn = self.project.functions.get(f"{info.module}.{node.id}")
            if fn is not None:
                return FuncRef(fn)
            target = self.project.imports.get(info.module, {}).get(node.id)
            if target is not None:
                for cand in self.project.by_name.get(
                        target.split(".")[-1], ()):
                    if target.endswith(f"{cand.module}.{cand.name}"):
                        return FuncRef(cand)
            consts = self.project.module_consts.get(info.module, {})
            if node.id in consts:
                return Const(consts[node.id])
        if node.id in ("True", "False", "None"):
            return Const({"True": True, "False": False, "None": None}
                         [node.id])
        return UNKNOWN

    def _eval_attribute(self, node, env):
        base = self._eval(node.value, env)
        attr = node.attr
        if isinstance(base, CommVal):
            if attr in ("rank", "world_rank"):
                return Const(base.rank)
            if attr == "size":
                return Const(base.size)
            if attr in (_COLLECTIVE_OPS | _P2P_OPS | _SUBCOMM_OPS
                        | _BENIGN_OPS):
                return Prim(base, attr)
            return Prim(base, "?")
        if isinstance(base, CarrierVal):
            if attr == "comm":
                return base.comm
            if attr not in base.attrs:
                base.attrs[attr] = _fresh_buffer(attr)
            return base.attrs[attr]
        if isinstance(base, Buffer):
            self._check_use(base, self._site(node), f"read (.{attr})")
            return UNKNOWN
        return UNKNOWN

    def _eval_subscript(self, node, env):
        base = self._eval(node.value, env)
        idx = self._eval(node.slice, env)
        if isinstance(base, Buffer):
            self._check_use(base, self._site(node), "indexed")
            return UNKNOWN
        if (isinstance(base, Const) and isinstance(idx, Const)):
            try:
                return Const(base.value[idx.value])
            except Exception:
                return UNKNOWN
        if isinstance(base, tuple) and isinstance(idx, Const):
            try:
                return base[idx.value]
            except Exception:
                return UNKNOWN
        return UNKNOWN

    def _eval_tuple(self, node, env):
        values = tuple(self._eval(e, env) for e in node.elts)
        if all(isinstance(v, Const) for v in values):
            return Const(tuple(v.value for v in values))
        return values

    def _eval_list(self, node, env):
        return self._eval_tuple(node, env)

    def _eval_starred(self, node, env):
        return self._eval(node.value, env)

    def _eval_slice(self, node, env):
        for part in (node.lower, node.upper, node.step):
            if part is not None:
                self._eval(part, env)
        return UNKNOWN

    def _eval_dict(self, node, env):
        for k, v in zip(node.keys, node.values):
            if k is not None:
                self._eval(k, env)
            self._eval(v, env)
        return _fresh_buffer("<dict>")

    def _eval_set(self, node, env):
        for e in node.elts:
            self._eval(e, env)
        return _fresh_buffer("<set>")

    def _eval_joinedstr(self, node, env):
        for v in node.values:
            self._eval(v, env)
        return UNKNOWN

    def _eval_formattedvalue(self, node, env):
        return self._eval(node.value, env)

    def _eval_lambda(self, node, env):
        return UNKNOWN

    def _eval_await(self, node, env):
        return self._eval(node.value, env)

    def _eval_namedexpr(self, node, env):
        value = self._eval(node.value, env)
        self._bind(node.target, value, env)
        return value

    def _eval_unaryop(self, node, env):
        val = self._eval(node.operand, env)
        if isinstance(val, Const):
            try:
                if isinstance(node.op, ast.USub):
                    return Const(-val.value)
                if isinstance(node.op, ast.UAdd):
                    return Const(+val.value)
                if isinstance(node.op, ast.Not):
                    return Const(not val.value)
                if isinstance(node.op, ast.Invert):
                    return Const(~val.value)
            except Exception:
                return UNKNOWN
        if isinstance(node.op, ast.Not):
            t = self._truthy(val)
            if t is not None:
                return Const(not t)
        return UNKNOWN

    _BINOPS = {
        ast.Add: lambda a, b: a + b,
        ast.Sub: lambda a, b: a - b,
        ast.Mult: lambda a, b: a * b,
        ast.Div: lambda a, b: a / b,
        ast.FloorDiv: lambda a, b: a // b,
        ast.Mod: lambda a, b: a % b,
        ast.Pow: lambda a, b: a ** b,
        ast.LShift: lambda a, b: a << b,
        ast.RShift: lambda a, b: a >> b,
        ast.BitOr: lambda a, b: a | b,
        ast.BitAnd: lambda a, b: a & b,
        ast.BitXor: lambda a, b: a ^ b,
    }

    def _fold_binop(self, op, left: Const, right: Const):
        fn = self._BINOPS.get(type(op))
        if fn is None:
            return UNKNOWN
        try:
            return Const(fn(left.value, right.value))
        except Exception:
            return UNKNOWN

    def _eval_binop(self, node, env):
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if isinstance(left, Const) and isinstance(right, Const):
            return self._fold_binop(node.op, left, right)
        return UNKNOWN

    _CMPOPS = {
        ast.Eq: lambda a, b: a == b,
        ast.NotEq: lambda a, b: a != b,
        ast.Lt: lambda a, b: a < b,
        ast.LtE: lambda a, b: a <= b,
        ast.Gt: lambda a, b: a > b,
        ast.GtE: lambda a, b: a >= b,
        ast.In: lambda a, b: a in b,
        ast.NotIn: lambda a, b: a not in b,
    }

    def _eval_compare(self, node, env):
        left = self._eval(node.left, env)
        result = True
        for op, comparator in zip(node.ops, node.comparators):
            right = self._eval(comparator, env)
            verdict = self._compare_one(op, left, right)
            if verdict is None:
                result = None
            elif verdict is False:
                return Const(False)
            left = right
        return Const(True) if result is True else UNKNOWN

    def _compare_one(self, op, left, right):
        if isinstance(op, (ast.Is, ast.IsNot)):
            if isinstance(left, Const) and isinstance(right, Const):
                same = left.value is right.value
                return same if isinstance(op, ast.Is) else not same
            # A buffer/communicator is definitely not None.
            if (isinstance(right, Const) and right.value is None
                    and isinstance(left, (Buffer, CommVal, CarrierVal))):
                return isinstance(op, ast.IsNot)
            if (isinstance(left, Const) and left.value is None
                    and isinstance(right, (Buffer, CommVal, CarrierVal))):
                return isinstance(op, ast.IsNot)
            return None
        if isinstance(left, Const) and isinstance(right, Const):
            fn = self._CMPOPS.get(type(op))
            if fn is None:
                return None
            try:
                return bool(fn(left.value, right.value))
            except Exception:
                return None
        return None

    def _eval_boolop(self, node, env):
        is_and = isinstance(node.op, ast.And)
        last = None
        for value in node.values:
            val = self._eval(value, env)
            last = val
            t = self._truthy(val)
            if t is None:
                # Whether the remaining operands evaluate is unknown;
                # skipping them uniformly on every rank stays sound.
                return UNKNOWN
            if is_and and t is False:
                return val
            if not is_and and t is True:
                return val
        return last if last is not None else Const(is_and)

    def _eval_ifexp(self, node, env):
        cond = self._truthy(self._eval(node.test, env))
        if cond is True:
            return self._eval(node.body, env)
        if cond is False:
            return self._eval(node.orelse, env)
        self._eval(node.body, env)
        return UNKNOWN

    def _eval_listcomp(self, node, env):
        return self._eval_comprehension(node, node.elt, env)

    def _eval_setcomp(self, node, env):
        return self._eval_comprehension(node, node.elt, env)

    def _eval_generatorexp(self, node, env):
        # Eagerly evaluated: the dominant use is an immediately-consumed
        # sum(...)/list(...); a stored lazy generator is mis-modeled,
        # which at worst poisons completeness via its comm events.
        return self._eval_comprehension(node, node.elt, env)

    def _eval_dictcomp(self, node, env):
        return self._eval_comprehension(node, node.value, env)

    def _eval_comprehension(self, node, elt, env):
        results = []

        def rec(gens, scope):
            if not gens:
                if isinstance(node, ast.DictComp):
                    self._eval(node.key, scope)
                results.append(self._eval(elt, scope))
                return
            gen = gens[0]
            items = self._iterable_items(gen.iter, scope)
            if items is None:
                before = len(self.trace.events)
                inner = dict(scope)
                self._bind(gen.target, UNKNOWN, inner)
                for cond in gen.ifs:
                    self._eval(cond, inner)
                rec(gens[1:], inner)
                if len(self.trace.events) != before:
                    self.trace.poison(
                        f"comprehension over unknown iterable performs "
                        f"communication ({self._site(node)})")
                return
            for item in items:
                inner = dict(scope)
                self._bind(gen.target, item, inner)
                take = True
                for cond in gen.ifs:
                    t = self._truthy(self._eval(cond, inner))
                    if t is False:
                        take = False
                        break
                if take:
                    rec(gens[1:], inner)

        rec(list(node.generators), dict(env))
        if results and all(isinstance(r, Const) for r in results):
            return Const([r.value for r in results])
        return _fresh_buffer("<comprehension>")

    # -- calls ------------------------------------------------------------
    _PURE_BUILTINS = {
        "len": len, "int": int, "float": float, "str": str, "bool": bool,
        "abs": abs, "min": min, "max": max, "sum": sum, "sorted": sorted,
        "tuple": tuple, "list": list, "round": round, "divmod": divmod,
    }

    def _eval_call(self, node, env):
        # Project-resolved callee first (handles self.method and
        # imported names without evaluating the func expression).
        callee = None
        if self._info is not None:
            callee = self.project.resolve_call(node, self._info)
        if callee is not None:
            return self._call_known(node, callee, env)

        func = self._eval(node.func, env)
        if isinstance(func, Prim):
            return self._call_prim(node, func, env)
        if isinstance(func, FuncRef) and func.info is not None:
            return self._call_known(node, func.info, env)

        # Pure builtins fold when every argument is constant.
        if (isinstance(node.func, ast.Name)
                and node.func.id in self._PURE_BUILTINS
                and not node.keywords):
            args = [self._eval(a, env) for a in node.args]
            if all(isinstance(a, Const) for a in args):
                try:
                    return Const(self._PURE_BUILTINS[node.func.id](
                        *[a.value for a in args]))
                except Exception:
                    return UNKNOWN
            self._check_call_args(node, args, [], env, evaluated=True)
            return _fresh_buffer(ast.unparse(node.func))

        return self._call_opaque(node, env)

    def _call_prim(self, node, prim: Prim, env):
        comm = prim.comm
        op = prim.op
        site = self._site(node)
        args = [self._eval(a, env) for a in node.args
                if not isinstance(a, ast.Starred)]
        kwargs = {kw.arg: self._eval(kw.value, env)
                  for kw in node.keywords if kw.arg is not None}
        for val in list(args) + list(kwargs.values()):
            if isinstance(val, Buffer) and val.moved_at is not None:
                self._check_use(val, site, f"passed to {op}()")

        if comm.opaque:
            self.trace.poison(
                f"communication on a split/dup subcommunicator is not "
                f"modeled ({site})")
            return _fresh_buffer(op)
        if op == "?":
            self.trace.poison(
                f"unmodeled communicator method ({site})")
            return _fresh_buffer("comm-result")
        if op in _BENIGN_OPS:
            return UNKNOWN

        def grab(pos_map, keyword):
            if keyword in kwargs:
                return kwargs[keyword]
            pos = pos_map.get(op)
            if pos is not None and len(args) > pos:
                return args[pos]
            return None

        if op in _COLLECTIVE_OPS:
            root_val = grab(_ROOT_ARG, "root")
            root = (root_val.value if isinstance(root_val, Const) else
                    None if root_val is None else "?")
            if root == "?":
                self.trace.poison(
                    f"collective {op}() with undecidable root ({site})")
            self.trace.events.append(CommEvent(
                kind="collective", op=op, site=site, root=root))
            if op == "barrier":
                return Const(None)
            return _fresh_buffer(f"{op}-result")

        if op in _SUBCOMM_OPS:
            self.trace.events.append(CommEvent(
                kind="collective", op=op, site=site))
            return CommVal(rank=comm.rank, size=comm.size, opaque=True)

        # Point-to-point.
        def int_or_none(val, what):
            if isinstance(val, Const) and isinstance(val.value, int):
                return val.value
            self.trace.poison(
                f"{op}() with undecidable {what} ({site})")
            return None

        if op in ("send", "isend", "sendrecv"):
            payload = args[0] if args else kwargs.get("obj")
            peer_kw = "partner" if op == "sendrecv" else "dest"
            dest = int_or_none(grab(_DEST_ARG, peer_kw), peer_kw)
            tag = grab(_TAG_ARG, "tag")
            tag = tag.value if (isinstance(tag, Const)
                                and isinstance(tag.value, int)) else (
                0 if tag is None else None)
            if tag is None:
                self.trace.poison(f"{op}() with undecidable tag ({site})")
            moved = False
            copy = kwargs.get("copy")
            if isinstance(copy, Const) and copy.value is False:
                moved = True
                if isinstance(payload, Buffer):
                    if payload.moved_at is None:
                        payload.moved_at = site
                        payload.moved_op = op
            self.trace.events.append(CommEvent(
                kind="send", op=op, site=site, peer=dest, tag=tag,
                moved=moved))
        if op in ("recv", "irecv", "sendrecv"):
            if op == "sendrecv":
                source = int_or_none(grab(_DEST_ARG, "partner"), "partner")
            else:
                source = int_or_none(grab(_SRC_ARG, "source"), "source")
            tag = grab(_TAG_ARG, "tag")
            tag = tag.value if (isinstance(tag, Const)
                                and isinstance(tag.value, int)) else (
                0 if tag is None else None)
            if tag is None:
                self.trace.poison(f"{op}() with undecidable tag ({site})")
            self.trace.events.append(CommEvent(
                kind="recv", op=op, site=site, peer=source, tag=tag))
        return _fresh_buffer(f"{op}-result")

    def _call_known(self, node, callee: FunctionInfo, env):
        if callee.qualname in self.call_stack:
            return self._call_opaque(node, env, note="recursive call")
        if len(self.call_stack) >= _MAX_DEPTH:
            self.trace.poison(
                f"call depth limit at {self._site(node)}")
            return self._call_opaque(node, env, note=None)
        if any(isinstance(a, ast.Starred) for a in node.args) or any(
                kw.arg is None for kw in node.keywords):
            # *args/**kwargs at the call site: bindings undecidable.
            return self._call_opaque(
                node, env, note="star-args call to project function")

        args = [self._eval(a, env) for a in node.args]
        kwargs = {kw.arg: self._eval(kw.value, env) for kw in node.keywords}

        params = list(callee.params)
        callee_env: dict[str, object] = {}
        pos_params = params
        if (isinstance(node.func, ast.Attribute) and params
                and params[0] == "self"
                and self._info is not None):
            # Bound-method call: the receiver is ``self``.
            recv = self._eval(node.func.value, env)
            callee_env["self"] = recv
            pos_params = params[1:]
        for name, val in zip(pos_params, args):
            callee_env[name] = val
        for name, val in kwargs.items():
            if name in params:
                callee_env[name] = val
        for name in params:
            if name not in callee_env:
                callee_env[name] = self._default_value(callee, name)
        try:
            return self._exec_function(callee, callee_env)
        except _FuncExit:
            raise

    def _call_opaque(self, node, env, note: str | None = None):
        args = [self._eval(a.value if isinstance(a, ast.Starred) else a, env)
                for a in node.args]
        kwargs = [self._eval(kw.value, env) for kw in node.keywords]
        self._check_call_args(node, args, kwargs, env, evaluated=True)
        if note:
            has_comm = any(
                isinstance(v, (CommVal, CarrierVal))
                for v in args + kwargs)
            if has_comm:
                self.trace.poison(
                    f"{note} with a communicator argument "
                    f"({self._site(node)})")
        return _fresh_buffer("<call-result>")

    def _check_call_args(self, node, args, kwargs, env, evaluated) -> None:
        site = self._site(node)
        label = None
        try:
            label = ast.unparse(node.func)
        except Exception:
            label = "<call>"
        for val in list(args) + list(kwargs):
            if isinstance(val, Buffer) and val.moved_at is not None:
                self._check_use(val, site, f"passed to {label}()")
            if isinstance(val, (CommVal, CarrierVal)):
                self.trace.poison(
                    f"opaque call {label}() receives a communicator "
                    f"({site})")

    # -- helpers ----------------------------------------------------------
    def _truthy(self, val):
        if isinstance(val, Const):
            try:
                return bool(val.value)
            except Exception:
                return None
        return None

    def _check_use(self, val, site: CallSite, how: str) -> None:
        if not isinstance(val, Buffer) or val.moved_at is None:
            return
        key = (val.bid, site.file, site.line)
        if key in self._reported:
            return
        self._reported.add(key)
        moved = val.moved_at
        self.findings.append(Diagnostic(
            kind="use-after-move",
            message=(
                f"buffer is {how} after being moved by "
                f"{val.moved_op}(..., copy=False) at {moved} "
                f"(in {moved.function}); the receiver owns it now — "
                f"copy before reuse or send with copy=True"),
            severity=ERROR,
            file=site.file,
            line=site.line,
            rank=self.rank,
            extra={"moved_at": str(moved), "function": site.function},
        ))


def _pair(a, b):
    if isinstance(a, Const) and isinstance(b, Const):
        return Const((a.value, b.value))
    return (a, b)


def run_rank(project: Project, entry: FunctionInfo, rank: int,
             world_size: int) -> tuple[Trace, list[Diagnostic]]:
    """Execute one entry function as one abstract rank."""
    interp = RankInterp(project, rank, world_size)
    try:
        interp.run(entry)
    except _FuncExit:
        pass
    except RecursionError:
        interp.trace.poison("python recursion limit during interpretation")
    return interp.trace, interp.findings
