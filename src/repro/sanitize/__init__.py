"""Static analysis and runtime correctness checking for SPMD programs.

Two prongs, sharing the :class:`Diagnostic` vocabulary:

* **Runtime sanitizer** (:class:`Sanitizer`, activated via
  ``run_spmd(program, P, sanitize=True)``) — collective-matching
  verification, wait-for-graph deadlock detection, zero-copy
  move-semantics enforcement, and finalize-time message-leak reporting
  for live runs.  The failure modes that normally manifest as silent
  hangs or corrupted factor matrices become deterministic,
  rank-attributed exceptions carrying ``file:line`` call sites.
* **AST lint** (:func:`lint_paths` / the ``repro lint`` CLI) — a static
  per-function pass over SPMD source flagging collectives inside
  rank-conditional branches, buffers referenced after a ``copy=False``
  move, mismatched point-to-point tag literals, and raw
  ``np.linalg.svd``/``eigh`` calls that bypass the instrumented
  :mod:`repro.linalg` kernels.
* **Whole-program verifier** (:func:`verify_paths` / the
  ``repro verify`` CLI) — the interprocedural tier: an abstract
  interpreter that symbolically executes every communicator-taking
  driver once per rank and cross-matches the resulting communication
  traces, catching rank-divergent collectives hidden behind helper
  calls, moved buffers reused across function boundaries,
  constant-propagated tag mismatches, and receive cycles — MUST-style
  deadlock detection at lint time.  It also emits a per-driver
  comm-graph artifact (DOT + JSON).

See ``docs/sanitizer.md`` for the full diagnostic catalogue and
overhead measurements, and ``docs/static-analysis.md`` for the
verifier's analysis model and soundness limits.
"""

from .diagnostics import (
    ERROR,
    WARNING,
    CallSite,
    Diagnostic,
    Suppressions,
    capture_call_site,
    format_diagnostics,
)
from .lint import DEFAULT_RULES, lint_file, lint_paths, lint_source
from .sanitizer import Sanitizer
from .verify import (
    EntryReport,
    VerifyResult,
    comm_graph_dot,
    comm_graph_json,
    default_verify_roots,
    match_traces,
    verify_paths,
    verify_project,
    write_comm_graph,
)

__all__ = [
    "ERROR",
    "WARNING",
    "CallSite",
    "Diagnostic",
    "Suppressions",
    "capture_call_site",
    "format_diagnostics",
    "Sanitizer",
    "DEFAULT_RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
    "EntryReport",
    "VerifyResult",
    "comm_graph_dot",
    "comm_graph_json",
    "default_verify_roots",
    "match_traces",
    "verify_paths",
    "verify_project",
    "write_comm_graph",
]
