"""Static analysis and runtime correctness checking for SPMD programs.

Two prongs, sharing the :class:`Diagnostic` vocabulary:

* **Runtime sanitizer** (:class:`Sanitizer`, activated via
  ``run_spmd(program, P, sanitize=True)``) — collective-matching
  verification, wait-for-graph deadlock detection, zero-copy
  move-semantics enforcement, and finalize-time message-leak reporting
  for live runs.  The failure modes that normally manifest as silent
  hangs or corrupted factor matrices become deterministic,
  rank-attributed exceptions carrying ``file:line`` call sites.
* **AST lint** (:func:`lint_paths` / the ``repro lint`` CLI) — a static
  pass over SPMD source flagging collectives inside rank-conditional
  branches, buffers referenced after a ``copy=False`` move, mismatched
  point-to-point tag literals, and raw ``np.linalg.svd``/``eigh`` calls
  that bypass the instrumented :mod:`repro.linalg` kernels.

See ``docs/sanitizer.md`` for the full diagnostic catalogue and
overhead measurements.
"""

from .diagnostics import (
    ERROR,
    WARNING,
    CallSite,
    Diagnostic,
    capture_call_site,
    format_diagnostics,
)
from .lint import DEFAULT_RULES, lint_file, lint_paths, lint_source
from .sanitizer import Sanitizer

__all__ = [
    "ERROR",
    "WARNING",
    "CallSite",
    "Diagnostic",
    "capture_call_site",
    "format_diagnostics",
    "Sanitizer",
    "DEFAULT_RULES",
    "lint_file",
    "lint_paths",
    "lint_source",
]
