"""Shared diagnostic vocabulary for the SPMD sanitizer and the AST lint.

Both prongs of :mod:`repro.sanitize` — the runtime :class:`Sanitizer`
and the :mod:`repro.sanitize.lint` AST pass — report findings as
:class:`Diagnostic` records: a machine-checkable kind, a severity, an
optional rank, and a ``file:line`` call site.  Tests assert on these
fields directly instead of pattern-matching exception text, and the CLI
renders them one per line in the classic compiler format::

    examples/foo.py:42: error[rank-divergent-collective] rank-conditional
        call to bcast() ...

Call-site capture (:func:`capture_call_site`) walks the Python stack
outward past the runtime's own frames (``repro/mpi``, ``repro/sanitize``)
so a violation inside a nested collective algorithm is attributed to the
user (or :mod:`repro.dist`) code that invoked it, not to the runtime
internals.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass, field

__all__ = [
    "ERROR",
    "WARNING",
    "CallSite",
    "Diagnostic",
    "Suppressions",
    "capture_call_site",
    "format_diagnostics",
]

ERROR = "error"
WARNING = "warning"

# Stack frames whose filename contains one of these fragments belong to
# the runtime itself and are skipped when attributing a call site.
_INTERNAL_PATH_FRAGMENTS = (
    os.path.join("repro", "mpi") + os.sep,
    os.path.join("repro", "sanitize") + os.sep,
    os.path.join("repro", "obs") + os.sep,
)


@dataclass(frozen=True)
class CallSite:
    """A resolved source location: file, line, enclosing function."""

    file: str
    line: int
    function: str = "?"

    def __str__(self) -> str:
        return f"{self.file}:{self.line}"


@dataclass(frozen=True)
class Diagnostic:
    """One sanitizer or lint finding.

    ``kind`` is a stable machine-readable identifier (e.g.
    ``collective-mismatch``, ``use-after-move``, ``deadlock``,
    ``message-leak``, ``rank-failed``, ``rank-divergent-collective``,
    ``tag-mismatch``, ``raw-lapack``).  ``rank`` is the world rank the
    finding is attributed to, or ``None`` for static (lint) findings.
    """

    kind: str
    message: str
    severity: str = ERROR
    file: str | None = None
    line: int | None = None
    rank: int | None = None
    extra: dict = field(default_factory=dict)

    @property
    def location(self) -> str:
        """``file:line`` (or ``<unknown>`` when uncaptured)."""
        if self.file is None:
            return "<unknown>"
        return f"{self.file}:{self.line}"

    def __str__(self) -> str:
        where = self.location
        who = f" rank {self.rank}" if self.rank is not None else ""
        return f"{where}: {self.severity}[{self.kind}]{who}: {self.message}"


def capture_call_site(skip_internal: bool = True) -> CallSite | None:
    """The innermost stack frame outside the runtime's own modules.

    Returns ``None`` only when every frame is internal (e.g. unit tests
    poking runtime privates directly with ``skip_internal=True``).
    """
    frame = sys._getframe(1)
    fallback: CallSite | None = None
    while frame is not None:
        filename = frame.f_code.co_filename
        site = CallSite(filename, frame.f_lineno, frame.f_code.co_name)
        if fallback is None:
            fallback = site
        if not skip_internal:
            return site
        if not any(frag in filename for frag in _INTERNAL_PATH_FRAGMENTS):
            return site
        frame = frame.f_back
    return fallback


_SKIP_RE = re.compile(r"#\s*repro-lint:\s*skip\b")
_ALLOW_RE = re.compile(r"#\s*repro-lint:\s*allow\(([a-z0-9_,\- ]+)\)")


class Suppressions:
    """Per-line ``# repro-lint:`` pragmas of one source file.

    Shared by both static tiers (:mod:`repro.sanitize.lint` and
    :mod:`repro.sanitize.verify`): ``# repro-lint: skip`` silences every
    rule on its line, ``# repro-lint: allow(<kind>[, <kind>...])`` one
    or more specific kinds.  A finding is checked against its whole
    statement extent, so a pragma anywhere on a multi-line statement —
    the opening line or the closing-paren line — applies to findings
    reported at any line of that statement.
    """

    def __init__(self, source: str) -> None:
        self._skip: set[int] = set()
        self._allow: dict[int, set[str]] = {}
        for lineno, line in enumerate(source.splitlines(), start=1):
            if _SKIP_RE.search(line):
                self._skip.add(lineno)
            m = _ALLOW_RE.search(line)
            if m:
                kinds = {k.strip() for k in m.group(1).split(",")}
                self._allow.setdefault(lineno, set()).update(kinds)

    def suppressed(self, kind: str, line: int,
                   end_line: int | None = None) -> bool:
        """True when a pragma covers ``kind`` anywhere in [line, end_line]."""
        hi = end_line if end_line is not None and end_line >= line else line
        for ln in range(line, hi + 1):
            if ln in self._skip or kind in self._allow.get(ln, ()):
                return True
        return False


def format_diagnostics(diagnostics, *, header: str | None = None) -> str:
    """Render diagnostics one per line, with an optional summary header."""
    lines = []
    if header:
        lines.append(header)
    lines.extend(str(d) for d in diagnostics)
    return "\n".join(lines)
