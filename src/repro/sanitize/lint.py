"""``repro lint`` — an AST pass for rank-divergent and unsafe SPMD code.

The static prong of :mod:`repro.sanitize`: a custom :mod:`ast` visitor
over Python sources (by default ``src/repro`` and ``examples/``) that
flags the SPMD bug patterns the runtime sanitizer catches dynamically,
*before* the code ever runs:

``rank-divergent-collective``
    A collective call (``bcast``, ``allreduce``, ``barrier``, ...)
    inside a branch whose condition depends on the rank
    (``if comm.rank == 0: comm.bcast(...)``).  Collectives must be
    entered by every rank; a rank-conditional one hangs the others.

``use-after-move``
    A buffer passed to ``send(..., copy=False)`` (or another
    move-capable operation) and then referenced later in the same
    scope.  The move relinquishes ownership — the later use either
    raises (frozen buffer) or races the receiver.

``tag-mismatch``
    Literal point-to-point tags within one function whose send set and
    receive set disagree (``send(x, 1, tag=7)`` against
    ``recv(0, tag=8)``) — the classic silent-hang typo.

``raw-lapack``
    A direct ``np.linalg.svd`` / ``np.linalg.eigh`` (or
    ``scipy.linalg.*``) call outside :mod:`repro.linalg`, bypassing the
    instrumented, numerically-hardened kernels the paper's accuracy
    claims rest on.

Findings are :class:`~repro.sanitize.Diagnostic` records (shared with
the runtime sanitizer), rendered ``file:line: severity[kind] message``.

Suppression: append ``# repro-lint: skip`` to a line to silence every
rule there, or ``# repro-lint: allow(<kind>)`` for one rule — the
escape hatch for intentional exceptions such as the raw-LAPACK timing
loops in :mod:`repro.perf.calibrate`.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Sequence

from .diagnostics import ERROR, WARNING, Diagnostic, Suppressions

__all__ = [
    "DEFAULT_RULES",
    "lint_source",
    "lint_file",
    "lint_paths",
    "default_lint_roots",
]

DEFAULT_RULES = (
    "rank-divergent-collective",
    "use-after-move",
    "tag-mismatch",
    "raw-lapack",
)

# Names that read as "this process's rank" in a branch condition.
_RANK_NAMES = frozenset({"rank", "world_rank", "my_rank"})

# MPI-style collective method names.  Every rank of a communicator must
# call these, so they may not sit inside rank-conditional branches.
_COLLECTIVES = frozenset({
    "barrier", "bcast", "reduce", "allreduce", "gather", "allgather",
    "scatter", "alltoall", "reduce_scatter", "split", "dup",
})

# Method names whose ``copy=False`` form moves (relinquishes) the buffer.
_MOVE_CAPABLE = frozenset({
    "send", "isend", "sendrecv", "alltoall", "reduce_scatter",
})

# Receiver-chain roots that make a ``.reduce``/``.split``-style call
# clearly *not* a communicator operation (np.add.reduce, "a,b".split).
_NON_COMM_ROOTS = frozenset({
    "np", "numpy", "scipy", "math", "functools", "operator", "itertools",
    "os", "re", "str", "string",
})

# Position of the ``tag`` argument in each point-to-point call
# (0-indexed, counting from the first argument after ``self``).
_TAG_POSITIONS = {"send": 2, "isend": 2, "sendrecv": 2, "recv": 1, "irecv": 1}
_TAG_SENDERS = frozenset({"send", "isend", "sendrecv"})
_TAG_RECEIVERS = frozenset({"recv", "irecv", "sendrecv"})

def _root_name(node: ast.expr) -> str | None:
    """Leftmost identifier of a Name/Attribute chain (``np.linalg`` -> np)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _terminal_name(node: ast.expr) -> str | None:
    """Rightmost identifier of a Name/Attribute chain (``comm.rank`` -> rank)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_collective_call(call: ast.Call) -> str | None:
    """The collective's name when ``call`` is a communicator collective."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    name = func.attr
    if name not in _COLLECTIVES:
        return None
    if _root_name(func.value) in _NON_COMM_ROOTS:
        return None
    if name == "split":
        # ``.split`` is overwhelmingly str.split; require communicator
        # evidence: a color/key keyword or a comm-ish receiver name.
        kwargs = {k.arg for k in call.keywords}
        receiver = (_terminal_name(func.value) or "").lower()
        if not ({"color", "key"} & kwargs) and "comm" not in receiver:
            return None
    return name


def _mentions_rank(node: ast.expr) -> bool:
    """True when a condition references a rank-named variable/attribute."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and sub.id in _RANK_NAMES:
            return True
        if isinstance(sub, ast.Attribute) and sub.attr in _RANK_NAMES:
            return True
    return False


def _dotted_path(node: ast.expr) -> str | None:
    """``state.buf`` -> "state.buf" for pure Name/Attribute chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _Scope:
    """One lexical scope (module body or a single function, nested
    functions excluded) with the name-usage index the flow rules need."""

    def __init__(self, node: ast.AST, name: str) -> None:
        self.node = node
        self.name = name
        self.statements: list[ast.stmt] = list(getattr(node, "body", []))
        # name -> [(line, col)] of loads / stores, in source order.
        self.loads: dict[str, list[tuple[int, int]]] = {}
        self.stores: dict[str, list[tuple[int, int]]] = {}
        self.calls: list[ast.Call] = []
        self.loops: list[ast.stmt] = []

    def index(self) -> None:
        # ``x += 1`` mutates the bound object in place: a *read* of the
        # (possibly moved) buffer, not a rebinding — record its target
        # as a load even though the AST marks it Store.
        aug_targets: set[int] = set()
        for sub in self._walk_scope():
            if isinstance(sub, ast.AugAssign) and isinstance(
                sub.target, (ast.Name, ast.Attribute)
            ):
                aug_targets.add(id(sub.target))
            elif isinstance(sub, ast.Name):
                where = (sub.lineno, sub.col_offset)
                if isinstance(sub.ctx, ast.Load) or id(sub) in aug_targets:
                    self.loads.setdefault(sub.id, []).append(where)
                else:
                    self.stores.setdefault(sub.id, []).append(where)
            elif isinstance(sub, ast.Attribute):
                # Buffers reached through attribute chains (self.buf,
                # state.buf) participate in the move-flow rules under
                # their dotted path, alongside plain names.
                dotted = _dotted_path(sub)
                if dotted is not None:
                    where = (sub.lineno, sub.col_offset)
                    if isinstance(sub.ctx, ast.Load) or id(sub) in aug_targets:
                        self.loads.setdefault(dotted, []).append(where)
                    else:
                        self.stores.setdefault(dotted, []).append(where)
            elif isinstance(sub, ast.Call):
                self.calls.append(sub)
            elif isinstance(sub, (ast.For, ast.AsyncFor, ast.While)):
                self.loops.append(sub)

    def _walk_scope(self) -> Iterable[ast.AST]:
        """Walk this scope's nodes, not descending into nested functions."""
        stack: list[ast.AST] = list(self.statements)
        while stack:
            node = stack.pop()
            yield node
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue  # nested scope: its body belongs to that scope
            stack.extend(ast.iter_child_nodes(node))

    def enclosing_loop(self, call: ast.Call) -> ast.stmt | None:
        """The innermost for/while loop containing ``call``, if any."""
        best: ast.stmt | None = None
        for loop in self.loops:
            if (loop.lineno <= call.lineno
                    and call.lineno <= (loop.end_lineno or loop.lineno)):
                if best is None or loop.lineno >= best.lineno:
                    best = loop
        return best


def _iter_scopes(tree: ast.Module) -> Iterable[_Scope]:
    yield _Scope(tree, "<module>")
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield _Scope(node, node.name)


def _call_arg(call: ast.Call, position: int, keyword: str) -> ast.expr | None:
    """Argument at ``position`` or passed as ``keyword=``, if present."""
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(call.args) > position:
        return call.args[position]
    return None


def _keyword_false(call: ast.Call, name: str) -> bool:
    for kw in call.keywords:
        if kw.arg == name and isinstance(kw.value, ast.Constant):
            return kw.value.value is False
    return False


# ----------------------------------------------------------------------
# Rules
# ----------------------------------------------------------------------
def _rule_rank_divergent(tree: ast.Module) -> list[tuple]:
    """Collectives under rank-conditional control flow."""
    findings = []

    def flag(call: ast.Call, coll: str, cond_line: int) -> None:
        findings.append((
            "rank-divergent-collective",
            call.lineno,
            call.end_lineno or call.lineno,
            f"collective {coll}() inside a rank-conditional "
            f"branch (condition at line {cond_line}); every "
            f"rank of the communicator must call it, or the "
            f"others hang",
        ))

    def flag_calls_in(nodes: Iterable[ast.AST], cond_line: int) -> None:
        for root in nodes:
            for sub in ast.walk(root):
                if isinstance(sub, ast.Call):
                    coll = _is_collective_call(sub)
                    if coll is not None:
                        flag(sub, coll, cond_line)

    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While)) and _mentions_rank(node.test):
            flag_calls_in(node.body, node.lineno)
            flag_calls_in(getattr(node, "orelse", []), node.lineno)
        elif isinstance(node, ast.IfExp) and _mentions_rank(node.test):
            flag_calls_in((node.body, node.orelse), node.lineno)
        elif isinstance(node, ast.BoolOp):
            # Short-circuit guards: ``comm.rank == 0 and comm.barrier()``
            # executes the collective on a rank-dependent subset exactly
            # like an if-branch would.
            for i, value in enumerate(node.values[1:], start=1):
                if any(_mentions_rank(v) for v in node.values[:i]):
                    flag_calls_in((value,), node.lineno)
    return findings


def _rule_use_after_move(scope: _Scope) -> list[tuple]:
    """Zero-copy-moved buffers referenced after the move."""
    findings = []
    for call in scope.calls:
        func = call.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _MOVE_CAPABLE or not _keyword_false(call, "copy"):
            continue
        buf = call.args[0] if call.args else None
        if isinstance(buf, ast.Name):
            name = buf.id
        elif isinstance(buf, ast.Attribute):
            name = _dotted_path(buf)
        else:
            name = None
        if name is None:
            continue
        call_pos = (buf.lineno, buf.col_offset)
        all_loads = scope.loads.get(name, [])
        loads = [p for p in all_loads if p != call_pos]
        stores = scope.stores.get(name, [])
        loop = scope.enclosing_loop(call)
        offending: list[tuple[int, int]] = []
        if loop is not None and not any(
            loop.lineno <= line <= (loop.end_lineno or loop.lineno)
            for line, _ in stores
        ):
            # Moved inside a loop and never rebound there: every
            # reference in the loop body — including the move's own
            # argument on the next iteration — reuses a relinquished
            # buffer.
            end = loop.end_lineno or loop.lineno
            offending = [
                p for p in all_loads if loop.lineno <= p[0] <= end
            ]
        if not offending:
            # Straight-line case: loads after the move, up to the next
            # rebinding of the name.
            after = [p for p in loads if p > (call.lineno, call.col_offset)]
            rebinds = [
                p for p in stores if p > (call.lineno, call.col_offset)
            ]
            horizon = min(rebinds) if rebinds else None
            offending = [
                p for p in after if horizon is None or p < horizon
            ]
        for line, _col in sorted(set(offending)):
            findings.append((
                "use-after-move",
                line,
                line,
                f"'{name}' is referenced after being moved by "
                f"{func.attr}(..., copy=False) at line {call.lineno}; the "
                f"receiver owns the buffer now — copy before reuse or "
                f"send with copy=True",
            ))
    return findings


def _rule_tag_mismatch(scope: _Scope) -> list[tuple]:
    """Literal p2p tags whose send and receive sets disagree."""
    sends: list[tuple[int, int, int]] = []  # (tag, line, end_line)
    recvs: list[tuple[int, int, int]] = []
    for call in scope.calls:
        func = call.func
        if not isinstance(func, ast.Attribute):
            continue
        name = func.attr
        if name not in _TAG_POSITIONS:
            continue
        tag_node = _call_arg(call, _TAG_POSITIONS[name], "tag")
        if not (isinstance(tag_node, ast.Constant)
                and isinstance(tag_node.value, int)
                and not isinstance(tag_node.value, bool)):
            continue
        tag = tag_node.value
        extent = (call.lineno, call.end_lineno or call.lineno)
        if name in _TAG_SENDERS:
            sends.append((tag, *extent))
        if name in _TAG_RECEIVERS:
            recvs.append((tag, *extent))
    if not sends or not recvs:
        return []
    send_tags = {t for t, _, _ in sends}
    recv_tags = {t for t, _, _ in recvs}
    findings = []
    for tag, line, end_line in sends:
        if tag not in recv_tags:
            findings.append((
                "tag-mismatch", line, end_line,
                f"send with literal tag {tag} has no matching recv tag in "
                f"this scope (recv tags: {sorted(recv_tags)}); mismatched "
                f"tags hang both sides",
            ))
    for tag, line, end_line in recvs:
        if tag not in send_tags:
            findings.append((
                "tag-mismatch", line, end_line,
                f"recv with literal tag {tag} has no matching send tag in "
                f"this scope (send tags: {sorted(send_tags)}); mismatched "
                f"tags hang both sides",
            ))
    return findings


def _rule_raw_lapack(tree: ast.Module) -> list[tuple]:
    """Direct LAPACK-driver calls that bypass repro.linalg."""
    findings = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in (
            "svd", "eigh",
        ):
            continue
        if _terminal_name(func.value) != "linalg":
            continue
        findings.append((
            "raw-lapack", node.lineno, node.end_lineno or node.lineno,
            f"raw {ast.unparse(func)}() call bypasses the instrumented "
            f"repro.linalg kernels (flop accounting, precision policy, "
            f"accuracy hardening); use repro.linalg instead",
        ))
    return findings


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def lint_source(
    source: str,
    filename: str = "<string>",
    rules: Sequence[str] = DEFAULT_RULES,
) -> list[Diagnostic]:
    """Lint one source string; returns sorted diagnostics."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [Diagnostic(
            kind="syntax-error", message=str(exc), severity=ERROR,
            file=filename, line=exc.lineno or 0,
        )]
    suppress = Suppressions(source)
    raw: list[tuple[str, int, int, str]] = []
    if "rank-divergent-collective" in rules:
        raw.extend(_rule_rank_divergent(tree))
    if "raw-lapack" in rules and not _is_linalg_module(filename):
        raw.extend(_rule_raw_lapack(tree))
    if "use-after-move" in rules or "tag-mismatch" in rules:
        for scope in _iter_scopes(tree):
            scope.index()
            if "use-after-move" in rules:
                raw.extend(_rule_use_after_move(scope))
            if "tag-mismatch" in rules:
                raw.extend(_rule_tag_mismatch(scope))
    out = [
        Diagnostic(kind=kind, message=msg, severity=ERROR,
                   file=filename, line=line)
        for kind, line, end_line, msg in raw
        if not suppress.suppressed(kind, line, end_line)
    ]
    out.sort(key=lambda d: (d.line or 0, d.kind))
    return out


def _is_linalg_module(filename: str) -> bool:
    """True for files inside repro/linalg — the instrumented kernels
    themselves, which are the one legitimate home of raw LAPACK calls."""
    norm = filename.replace(os.sep, "/")
    return "repro/linalg/" in norm


def lint_file(path: str, rules: Sequence[str] = DEFAULT_RULES) -> list[Diagnostic]:
    """Lint one file."""
    with open(path, encoding="utf-8") as f:
        source = f.read()
    return lint_source(source, filename=path, rules=rules)


def lint_paths(
    paths: Iterable[str],
    rules: Sequence[str] = DEFAULT_RULES,
) -> list[Diagnostic]:
    """Lint files and directory trees (``*.py``, recursively)."""
    findings: list[Diagnostic] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [
                    d for d in dirnames
                    if d not in ("__pycache__", ".git")
                ]
                for fn in sorted(filenames):
                    if fn.endswith(".py"):
                        findings.extend(
                            lint_file(os.path.join(dirpath, fn), rules)
                        )
        else:
            findings.extend(lint_file(path, rules))
    return findings


def default_lint_roots(cwd: str | None = None) -> list[str]:
    """The conventional lint targets: the repro package and examples/.

    Resolves the installed package location first (so ``repro lint``
    works from any directory), then adds ``examples/`` and ``src/``
    relative to the working directory when they exist.
    """
    roots: list[str] = []
    pkg_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    roots.append(pkg_dir)
    cwd = cwd or os.getcwd()
    for rel in ("examples",):
        cand = os.path.join(cwd, rel)
        if os.path.isdir(cand):
            roots.append(cand)
    return roots
