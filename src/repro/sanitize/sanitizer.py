"""Runtime correctness sanitizer for the simulated SPMD world.

Activated with ``run_spmd(program, P, sanitize=True)`` (or an explicit
:class:`Sanitizer` instance for tuning), this is the MUST/TSan-style
prong of :mod:`repro.sanitize`: it watches every communicator operation
of a live run and turns the classic silent SPMD failure modes into
deterministic, rank-attributed exceptions:

* **Collective matching** — every rank of a communicator must enter the
  same collective, in the same per-communicator order, with a consistent
  signature (root, reduction op, payload dtype/shape where the operation
  requires symmetry).  A divergent rank raises
  :class:`~repro.errors.CollectiveMismatchError` naming both call sites
  instead of hanging in a half-entered collective.
* **Deadlock detection** — blocking receives register edges in a
  wait-for graph; a cycle of blocked ranks whose awaited messages are
  not in flight raises :class:`~repro.errors.DeadlockError` on the rank
  that closed the cycle.  A watchdog additionally detects global stalls
  (every live rank blocked, nothing in flight) and dumps each rank's
  open span stack from the active :class:`repro.obs.Tracer`.
* **Move-semantics enforcement** — every ndarray relinquished by a
  zero-copy ``send(copy=False)`` (and every elided copy a receiver gets)
  is registered with its sending call site; a later mutation surfaces as
  :class:`~repro.errors.UseAfterMoveError` pointing at the move, not as
  a bare NumPy ``ValueError``.
* **Message-leak reporting** — at finalize, undrained mailbox entries
  (sent but never received: orphaned messages, mismatched tags) become
  ``message-leak`` diagnostics, raised as
  :class:`~repro.errors.MessageLeakError` in strict mode.

Every check is reached through a single ``context.sanitizer is None``
test in the communicator hot paths, so a run without ``sanitize=`` pays
one attribute read per operation.
"""

from __future__ import annotations

import threading
import time
import weakref
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..errors import (
    CollectiveMismatchError,
    DeadlockError,
    MessageLeakError,
    UseAfterMoveError,
)
from .diagnostics import (
    ERROR,
    WARNING,
    CallSite,
    Diagnostic,
    capture_call_site,
    format_diagnostics,
)

__all__ = ["Sanitizer"]


@dataclass
class _CollectiveEntry:
    """First-arriving rank's view of one collective slot (comm, seq)."""

    op: str
    signature: tuple
    rank: int
    site: CallSite | None
    arrivals: int = 1


@dataclass
class _WaitEdge:
    """One blocked receive: ``rank`` waits on ``target`` for (tag, comm)."""

    rank: int              # waiting world rank
    target: int            # awaited world rank
    source_comm_rank: int  # awaited rank within the communicator
    tag: int
    comm_id: int
    site: CallSite | None
    mailbox: Any           # the waiter's mailbox (for in-flight checks)


@dataclass
class _MoveRecord:
    """Provenance of one frozen (moved) ndarray."""

    rank: int                      # rank that relinquished / received it
    site: CallSite | None          # the zero-copy send's call site
    op: str                        # "send", "alltoall", ...
    direction: str                 # "sent" | "received"
    ref: Any = None                # weakref to the array (guards id reuse)
    dest: int | None = None        # destination rank for sent buffers
    source: int | None = None      # origin rank for received buffers


@dataclass
class MoveOrigin:
    """Sender-side provenance carried in a moved message's envelope."""

    rank: int
    site: CallSite | None
    op: str = "send"


class Sanitizer:
    """Correctness monitor for one SPMD world (see module docstring).

    Parameters
    ----------
    strict:
        Raise :class:`~repro.errors.MessageLeakError` at finalize when
        mailboxes are undrained (default).  With ``strict=False`` leaks
        are only recorded in :attr:`findings`.
    watchdog_interval:
        Seconds a blocked receive sleeps between progress checks; also
        the granularity of global-stall detection.
    """

    def __init__(self, *, strict: bool = True,
                 watchdog_interval: float = 0.25) -> None:
        self.strict = strict
        self.watchdog_interval = float(watchdog_interval)
        self.findings: list[Diagnostic] = []
        self._lock = threading.Lock()
        self._context = None  # set by attach()
        self._collectives: dict[tuple[int, int], _CollectiveEntry] = {}
        self._waits: dict[int, _WaitEdge] = {}
        self._moves: dict[int, _MoveRecord] = {}
        self._last_move: dict[int, _MoveRecord] = {}  # per-rank, fallback
        # Progress epoch for the global-stall watchdog: bumped by every
        # send and every completed wait.  A stall is declared only after
        # two observations, one watchdog interval apart, of the exact
        # same (blocked ranks, epoch) state — so a rank momentarily
        # between "message dequeued" and "wait unregistered" can never
        # trip a false positive.
        self._progress_seq = 0
        self._stall_obs: tuple | None = None

    # ------------------------------------------------------------------
    # World lifecycle
    # ------------------------------------------------------------------
    def attach(self, context) -> None:
        """Bind to the :class:`~repro.mpi.context.SpmdContext` of a run."""
        self._context = context

    def _record(self, diag: Diagnostic) -> None:
        with self._lock:
            self.findings.append(diag)

    def report(self) -> str:
        """All findings, one per line (empty string when clean)."""
        with self._lock:
            return format_diagnostics(list(self.findings))

    def absorb_findings(self, diagnostics) -> None:
        """Fold another ledger's findings in (process-backend shards)."""
        with self._lock:
            self.findings.extend(diagnostics)

    # ------------------------------------------------------------------
    # Prong 1a: collective matching
    # ------------------------------------------------------------------
    def check_collective(
        self,
        comm_id: int,
        seq: int,
        world_rank: int,
        op: str,
        signature: tuple,
        comm_size: int,
    ) -> None:
        """Verify this rank's collective call against the first arrival.

        The first rank to reach collective slot ``(comm_id, seq)``
        registers ``(op, signature)``; every later arrival must match
        both.  Entries are purged once all ``comm_size`` ranks arrived,
        so the ledger stays bounded.
        """
        key = (comm_id, seq)
        with self._lock:
            entry = self._collectives.get(key)
            if entry is not None and entry.op == op \
                    and entry.signature == signature:
                # Fast path — the common case for (P-1) of P arrivals —
                # needs no call-site capture (no stack walk).
                entry.arrivals += 1
                if entry.arrivals >= comm_size:
                    del self._collectives[key]
                return
        site = capture_call_site()
        with self._lock:
            entry = self._collectives.get(key)
            if entry is None:
                self._collectives[key] = _CollectiveEntry(
                    op=op, signature=signature, rank=world_rank, site=site
                )
                return
            if entry.op == op and entry.signature == signature:
                # Raced with the registrant between the two lock takes.
                entry.arrivals += 1
                if entry.arrivals >= comm_size:
                    del self._collectives[key]
                return
            first = entry
        # Mismatch: build both-sided diagnostics outside the lock.
        if first.op != op:
            what = (
                f"collective order mismatch on communicator {comm_id} "
                f"(call #{seq}): rank {first.rank} called {first.op}() at "
                f"{first.site}, rank {world_rank} called {op}()"
            )
        else:
            what = (
                f"collective signature mismatch in {op}() on communicator "
                f"{comm_id} (call #{seq}): rank {first.rank} passed "
                f"{_sig_str(first.signature)} at {first.site}, rank "
                f"{world_rank} passed {_sig_str(signature)}"
            )
        diags = [
            Diagnostic(
                kind="collective-mismatch", message=what, severity=ERROR,
                file=first.site.file if first.site else None,
                line=first.site.line if first.site else None,
                rank=first.rank,
                extra={"op": first.op, "seq": seq},
            ),
            Diagnostic(
                kind="collective-mismatch", message=what, severity=ERROR,
                file=site.file if site else None,
                line=site.line if site else None,
                rank=world_rank,
                extra={"op": op, "seq": seq},
            ),
        ]
        for d in diags:
            self._record(d)
        if self._context is not None:
            self._context.abort(what)
        raise CollectiveMismatchError(what, diagnostics=diags)

    # ------------------------------------------------------------------
    # Prong 1b: wait-for graph + deadlock watchdog
    # ------------------------------------------------------------------
    def begin_wait(
        self,
        world_rank: int,
        target_world: int,
        source_comm_rank: int,
        tag: int,
        comm_id: int,
        mailbox,
    ) -> None:
        """Register a blocked receive and check for a wait-for cycle."""
        edge = _WaitEdge(
            rank=world_rank, target=target_world,
            source_comm_rank=source_comm_rank, tag=tag, comm_id=comm_id,
            site=capture_call_site(), mailbox=mailbox,
        )
        with self._lock:
            self._waits[world_rank] = edge
            cycle = self._trace_cycle(world_rank)
        if cycle and self._cycle_is_starved(cycle):
            self._raise_deadlock(cycle, reason="wait-for cycle")

    def end_wait(self, world_rank: int) -> None:
        """Unregister the rank's blocked receive (message arrived/raised)."""
        with self._lock:
            self._waits.pop(world_rank, None)
            self._progress_seq += 1

    def _trace_cycle(self, start: int) -> list[_WaitEdge] | None:
        """Follow wait edges from ``start``; the cycle through it, if any.

        Caller holds ``self._lock``.
        """
        chain: list[_WaitEdge] = []
        seen: set[int] = set()
        cur = start
        while cur in self._waits and cur not in seen:
            seen.add(cur)
            edge = self._waits[cur]
            chain.append(edge)
            cur = edge.target
        if cur == start and chain:
            return chain
        return None

    @staticmethod
    def _cycle_is_starved(cycle: list[_WaitEdge]) -> bool:
        """True when no awaited message of the cycle is in flight.

        Every cycle member is blocked (it registered a wait after its
        sends completed — sends are buffered and return immediately), so
        if none of the awaited (source, tag) queues holds a message, no
        member can ever be satisfied: a genuine deadlock.
        """
        return all(
            not e.mailbox.has(e.source_comm_rank, e.tag) for e in cycle
        )

    def _raise_deadlock(self, edges: list[_WaitEdge], reason: str) -> None:
        lines = []
        diags = []
        for e in edges:
            desc = (
                f"rank {e.rank} blocked in recv(source={e.source_comm_rank}, "
                f"tag={e.tag}) on communicator {e.comm_id} awaiting rank "
                f"{e.target} at {e.site}"
            )
            lines.append("  " + desc)
            diags.append(Diagnostic(
                kind="deadlock", message=desc, severity=ERROR,
                file=e.site.file if e.site else None,
                line=e.site.line if e.site else None,
                rank=e.rank,
                extra={"awaiting": e.target, "tag": e.tag},
            ))
        stacks = self._span_stacks()
        if stacks:
            lines.append("  open span stacks at detection:")
            for rank, names in sorted(stacks.items()):
                lines.append(f"    rank {rank}: {' > '.join(names)}")
        msg = f"deadlock detected ({reason}):\n" + "\n".join(lines)
        for d in diags:
            self._record(d)
        if self._context is not None:
            # Feed the watchdog's findings to the postmortem bundle
            # before the abort wipes the world: the wait-for edges, the
            # awaited peers, and the span stacks at detection time.
            self._context.last_deadlock = {
                "reason": reason,
                "detected_unix": time.time(),
                "waits": [
                    {
                        "rank": e.rank,
                        "awaiting_rank": e.target,
                        "source_comm_rank": e.source_comm_rank,
                        "tag": e.tag,
                        "comm_id": e.comm_id,
                        "site": str(e.site) if e.site else None,
                    }
                    for e in edges
                ],
                "open_spans": {
                    str(r): list(names)
                    for r, names in sorted(stacks.items())
                },
            }
            self._context.abort(msg)
        raise DeadlockError(msg, diagnostics=diags)

    def _span_stacks(self) -> dict[int, list[str]]:
        """Each rank's open span names: active tracer, else flight recorder."""
        ctx = self._context
        tracer = getattr(ctx, "tracer", None) if ctx is not None else None
        if tracer is not None and getattr(tracer, "enabled", False):
            try:
                return tracer.open_spans()
            except Exception:  # pragma: no cover - diagnostics must not raise
                return {}
        recorder = getattr(ctx, "recorder", None) if ctx is not None else None
        if recorder is not None:
            try:
                stacks = recorder.open_spans()
                return {r: names for r, names in stacks.items() if names}
            except Exception:  # pragma: no cover - diagnostics must not raise
                return {}
        return {}

    def on_stall(self, world_rank: int) -> None:
        """Watchdog tick from a blocked receive: detect a global stall.

        Called each time a blocked receive wakes without a match.  When
        every live (not finalized, not failed) rank has been registered
        as blocked, with no send and no completed wait, across two
        observations one :attr:`watchdog_interval` apart — and none of
        the awaited messages is in flight — the world can make no
        further progress: report the full wait-for state (plus the open
        span stacks from the active tracer) instead of waiting out the
        receive timeout.
        """
        ctx = self._context
        if ctx is None:
            return
        with self._lock:
            waiting = frozenset(self._waits)
            progress = self._progress_seq
        live = {
            r for r in range(ctx.world_size)
            if ctx.rank_status(r) == "running"
        }
        if not live or not live.issubset(waiting):
            with self._lock:
                self._stall_obs = None
            return
        snapshot = (waiting, progress)
        now = time.monotonic()
        with self._lock:
            obs = self._stall_obs
            if obs is None or obs[0] != snapshot:
                self._stall_obs = (snapshot, now)
                return
            if now - obs[1] < self.watchdog_interval:
                return
            blocked = [self._waits[r] for r in sorted(live)
                       if r in self._waits]
        if any(e.mailbox.has(e.source_comm_rank, e.tag) for e in blocked):
            return
        self._raise_deadlock(blocked, reason="global stall, no progress")

    def describe_failed_partner(
        self,
        world_rank: int,
        target_world: int,
        source_comm_rank: int,
        tag: int,
        status: str,
        mailbox,
        expected: bool = False,
    ) -> Diagnostic:
        """Diagnostic for a receive whose partner finalized or died.

        Inspects the waiter's mailbox for undelivered messages from the
        same source under *different* tags — the signature of a tag
        mismatch — and says so explicitly.  ``expected`` marks deaths a
        :class:`~repro.faults.FaultPlan` injected on purpose: the
        observation is still recorded (the recovery path should be
        visible in reports) but at WARNING, since surviving it is the
        point of the experiment.
        """
        site = capture_call_site()
        pending = [
            t for (s, t), n in mailbox.pending().items()
            if s == source_comm_rank and n > 0 and t != tag
        ]
        kind = "rank-failed"
        msg = (
            f"rank {world_rank} blocked in recv(source={source_comm_rank}, "
            f"tag={tag}) but rank {target_world} already {status}"
        )
        if pending:
            kind = "tag-mismatch"
            msg += (
                f"; undelivered message(s) from it with tag(s) "
                f"{sorted(pending)} are pending — mismatched send/recv tags?"
            )
        severity = ERROR
        if expected and kind == "rank-failed":
            severity = WARNING
            msg += " (injected fault — expected under the active FaultPlan)"
        diag = Diagnostic(
            kind=kind, message=msg, severity=severity,
            file=site.file if site else None,
            line=site.line if site else None,
            rank=world_rank,
            extra={"partner": target_world, "tag": tag,
                   "pending_tags": sorted(pending)},
        )
        self._record(diag)
        return diag

    # ------------------------------------------------------------------
    # Prong 1c: move-semantics enforcement
    # ------------------------------------------------------------------
    def note_send(self, world_rank: int) -> MoveOrigin:
        """Record provenance of a copied send (for leak attribution)."""
        with self._lock:
            self._progress_seq += 1
        return MoveOrigin(rank=world_rank, site=capture_call_site())

    def note_move(self, payload: Any, world_rank: int, op: str,
                  dest: int | None = None) -> MoveOrigin:
        """Register every ndarray in a payload relinquished by a move."""
        site = capture_call_site()
        origin = MoveOrigin(rank=world_rank, site=site, op=op)
        self._register_arrays(payload, _MoveRecord(
            rank=world_rank, site=site, op=op, direction="sent", dest=dest,
        ))
        with self._lock:
            self._progress_seq += 1
        return origin

    def note_received_move(self, payload: Any, world_rank: int,
                           origin: MoveOrigin | None) -> None:
        """Register a receiver's read-only elided copy with its provenance."""
        site = origin.site if origin is not None else None
        src = origin.rank if origin is not None else None
        op = origin.op if origin is not None else "send"
        self._register_arrays(payload, _MoveRecord(
            rank=world_rank, site=site, op=op, direction="received",
            source=src,
        ))

    def _register_arrays(self, payload: Any, proto: _MoveRecord) -> None:
        if isinstance(payload, np.ndarray):
            if payload.flags.writeable:
                return
            rec = _MoveRecord(
                rank=proto.rank, site=proto.site, op=proto.op,
                direction=proto.direction, dest=proto.dest,
                source=proto.source,
            )
            try:
                rec.ref = weakref.ref(payload)
            except TypeError:  # plain ndarrays are weakref-able; views too
                rec.ref = None
            with self._lock:
                self._moves[id(payload)] = rec
                self._last_move[proto.rank] = rec
        elif isinstance(payload, (list, tuple)):
            for x in payload:
                self._register_arrays(x, proto)

    def _lookup_move(self, arr: np.ndarray) -> _MoveRecord | None:
        """The move record for ``arr`` (or the base it is a view of)."""
        with self._lock:
            for candidate in (arr, arr.base):
                if candidate is None:
                    continue
                rec = self._moves.get(id(candidate))
                if rec is not None:
                    target = rec.ref() if rec.ref is not None else None
                    if target is None or target is candidate:
                        return rec
        return None

    def explain_readonly_write(self, exc: BaseException,
                               world_rank: int) -> UseAfterMoveError | None:
        """Translate NumPy's read-only ``ValueError`` into a move violation.

        Called by the launcher when a rank dies with a ``ValueError``:
        if the message is NumPy's read-only complaint and the frame that
        raised holds a frozen array we registered, the result is a
        :class:`UseAfterMoveError` carrying the original *move* site —
        the place the buffer was relinquished, which is what the user
        must fix.  Returns ``None`` when the error is unrelated.
        """
        if not isinstance(exc, ValueError):
            return None
        text = str(exc)
        if "read-only" not in text and "WRITEABLE" not in text:
            return None
        record: _MoveRecord | None = None
        tb = exc.__traceback__
        frame = None
        while tb is not None:
            frame = tb.tb_frame
            tb = tb.tb_next
        if frame is not None:
            for value in list(frame.f_locals.values()):
                if isinstance(value, np.ndarray) and not value.flags.writeable:
                    record = self._lookup_move(value)
                    if record is not None:
                        break
        if record is None:
            with self._lock:
                record = self._last_move.get(world_rank)
        if record is None:
            return None
        if record.direction == "received":
            what = (
                f"rank {world_rank} wrote into a read-only zero-copy payload "
                f"received from rank {record.source} (moved by "
                f"{record.op}(copy=False) at {record.site}); copy it before "
                f"mutating, or send with copy=True"
            )
        else:
            what = (
                f"rank {world_rank} mutated a buffer after relinquishing it "
                f"via {record.op}(copy=False) at {record.site}"
                + (f" (moved to rank {record.dest})"
                   if record.dest is not None else "")
                + "; the receiver owns it now — reuse requires copy=True"
            )
        diag = Diagnostic(
            kind="use-after-move", message=what, severity=ERROR,
            file=record.site.file if record.site else None,
            line=record.site.line if record.site else None,
            rank=world_rank,
        )
        self._record(diag)
        return UseAfterMoveError(what, diagnostics=[diag])

    # ------------------------------------------------------------------
    # Prong 1d: finalize-time leak report
    # ------------------------------------------------------------------
    def finalize_world(self, context) -> list[Diagnostic]:
        """Scan mailboxes for undelivered messages after all ranks returned.

        Each (destination, source, tag) with pending envelopes yields one
        ``message-leak`` diagnostic attributed to the sender (with the
        sending call site when the message was sent under sanitizing).
        Raises :class:`MessageLeakError` in strict mode — unless any
        rank died during the run: a crashed rank legitimately strands
        in-flight messages (and survivors' recovery may leave exchanges
        with the dead rank half-done), so leaks are then reported as
        warnings instead of errors.
        """
        failed = context.failed_ranks() if hasattr(context, "failed_ranks") else []
        severity = WARNING if failed else ERROR
        leaks: list[Diagnostic] = []
        for (comm_id, dest_world), box in context.mailboxes():
            for (source, tag), envs in box.pending_envelopes().items():
                if not envs:
                    continue
                first = envs[0]
                origin = getattr(first, "origin", None)
                site = origin.site if origin is not None else None
                sender = origin.rank if origin is not None else None
                nbytes = sum(e.nbytes for e in envs)
                msg = (
                    f"{len(envs)} undelivered message(s) "
                    f"(source comm-rank {source}, tag {tag}, {nbytes} bytes) "
                    f"left in rank {dest_world}'s mailbox on communicator "
                    f"{comm_id} at finalize"
                )
                if site is not None:
                    msg += f"; first sent at {site}"
                if failed:
                    msg += (
                        f" (rank(s) {failed} died — expected residue of "
                        f"a failed/recovered run)"
                    )
                leaks.append(Diagnostic(
                    kind="message-leak", message=msg, severity=severity,
                    file=site.file if site else None,
                    line=site.line if site else None,
                    rank=sender,
                    extra={"dest": dest_world, "tag": tag,
                           "count": len(envs), "nbytes": nbytes},
                ))
        for d in leaks:
            self._record(d)
        if leaks and self.strict and not failed:
            raise MessageLeakError(
                format_diagnostics(
                    leaks,
                    header=f"{len(leaks)} message leak(s) at finalize:",
                ),
                diagnostics=leaks,
            )
        return leaks


def _sig_str(signature: tuple) -> str:
    """Human-readable rendering of a collective signature tuple."""
    if not signature:
        return "()"
    return "(" + ", ".join(f"{k}={v!r}" for k, v in signature) + ")"
