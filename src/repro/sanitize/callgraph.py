"""Whole-program call graph and rank-sensitivity taint for the verifier.

The interprocedural half of :mod:`repro.sanitize.verify` needs three
things the per-function lint never computes:

* a **project table** of every function and method parsed from the
  analysis roots, keyed by qualified name, with each function's
  communicator-shaped parameters classified (a parameter named ``comm``
  or annotated ``Communicator`` *is* a communicator; a parameter whose
  ``.comm`` attribute the body reads *carries* one — the
  ``sthosvd_parallel(dt, ...)`` shape);
* a **call graph** over those functions, resolving direct names,
  ``from module import f`` aliases, ``module.f`` attribute calls, and
  ``self.method`` calls against the enclosing class;
* a **rank-sensitivity taint** fixpoint: a function is rank-tainted
  when it reads ``comm.rank``/``comm.size`` (a *source*), receives a
  tainted argument, or calls a function whose return value is tainted —
  taint flows through assignments, call arguments, and returns until
  the per-function summaries stop changing.

The symbolic executor (:mod:`repro.sanitize.absint`) consumes the
project table to inline known callees; the ``repro verify`` CLI dumps
the reachable subgraph per analyzed driver as the DOT/JSON comm-graph
artifact.  Runtime packages (``repro/mpi``, ``repro/sanitize``,
``repro/obs``) are library code from the verifier's point of view and
are excluded from the table — their communicator methods are modeled
as primitives, never interpreted.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "FunctionInfo",
    "CallEdge",
    "Project",
    "load_project",
]

# Packages that implement the runtime itself: modeled as primitives,
# never parsed into the project table (matching the call-site capture
# skip list in diagnostics.py).
_LIBRARY_FRAGMENTS = (
    os.path.join("repro", "mpi") + os.sep,
    os.path.join("repro", "sanitize") + os.sep,
    os.path.join("repro", "obs") + os.sep,
)

_COMM_PARAM_NAMES = frozenset({"comm", "communicator", "world"})
_COMM_ANNOTATIONS = frozenset({"Communicator", "Comm"})
_RANK_ATTRS = frozenset({"rank", "size", "world_rank"})


@dataclass
class FunctionInfo:
    """One parsed function or method."""

    qualname: str  # "module.sub.func" or "module.sub.Class.func"
    name: str
    module: str
    file: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    params: tuple[str, ...]
    defaults: dict[str, ast.expr]
    cls: str | None = None  # enclosing class name, if a method
    comm_params: frozenset[str] = frozenset()
    comm_carriers: frozenset[str] = frozenset()
    reads_rank: bool = False
    # Taint summaries (filled by Project.propagate_taint).
    tainted_params: set[str] = field(default_factory=set)
    returns_tainted: bool = False
    rank_sensitive: bool = False

    @property
    def line(self) -> int:
        return self.node.lineno

    def takes_comm(self) -> bool:
        return bool(self.comm_params or self.comm_carriers)


@dataclass(frozen=True)
class CallEdge:
    caller: str  # qualnames
    callee: str
    file: str
    line: int


def _is_library_file(path: str) -> bool:
    return any(frag in path for frag in _LIBRARY_FRAGMENTS)


def _module_name(path: str) -> str:
    """A stable dotted module key derived from the file path."""
    norm = path.replace(os.sep, "/")
    for marker in ("/src/", "/tests/", "/examples/"):
        idx = norm.rfind(marker)
        if idx >= 0:
            norm = norm[idx + len(marker):]
            break
    else:
        norm = os.path.basename(norm)
    if norm.endswith(".py"):
        norm = norm[:-3]
    return norm.replace("/", ".")


def _annotation_name(node: ast.expr | None) -> str | None:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split(".")[-1].strip("\"' ")
    while isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _classify_params(node: ast.AST) -> tuple[frozenset, frozenset, bool]:
    """(comm params, comm-carrier params, reads comm.rank/.size)."""
    args = node.args
    all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
    comm_params = set()
    for a in all_args:
        if (a.arg in _COMM_PARAM_NAMES
                or _annotation_name(a.annotation) in _COMM_ANNOTATIONS):
            comm_params.add(a.arg)
    names = {a.arg for a in all_args}
    carriers = set()
    reads_rank = False
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Attribute):
            continue
        if sub.attr in _RANK_ATTRS:
            reads_rank = True
        base = sub.value
        if (sub.attr == "comm" and isinstance(base, ast.Name)
                and base.id in names and base.id not in comm_params):
            carriers.add(base.id)
        # ``self.comm`` inside a method marks ``self`` as a carrier too.
        if (sub.attr == "comm" and isinstance(base, ast.Name)
                and base.id == "self" and "self" in names):
            carriers.add("self")
    return frozenset(comm_params), frozenset(carriers), reads_rank


class Project:
    """The parsed whole program: functions, imports, calls, taint."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        # module -> {local name -> fully-dotted target ("pkg.mod" or
        # "pkg.mod.func")} from import statements.
        self.imports: dict[str, dict[str, str]] = {}
        # module -> {name -> literal value} for top-level constants
        # (PING = 7); the executor constant-propagates these through
        # helper calls, closing the tag-through-helper gap.
        self.module_consts: dict[str, dict[str, object]] = {}
        self.edges: list[CallEdge] = []
        self.parse_errors: list[tuple[str, str]] = []

    # -- construction --------------------------------------------------
    def add_file(self, path: str) -> None:
        try:
            with open(path, encoding="utf-8") as f:
                source = f.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError) as exc:
            self.parse_errors.append((path, str(exc)))
            return
        module = _module_name(path)
        aliases = self.imports.setdefault(module, {})
        consts = self.module_consts.setdefault(module, {})
        for stmt in tree.body:
            if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)):
                try:
                    consts[stmt.targets[0].id] = ast.literal_eval(stmt.value)
                except (ValueError, SyntaxError):
                    pass
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for al in node.names:
                    aliases[al.asname or al.name.split(".")[0]] = al.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for al in node.names:
                    target = f"{node.module}.{al.name}"
                    aliases[al.asname or al.name] = target

        def visit(body: Iterable[ast.stmt], prefix: str, cls: str | None):
            for stmt in body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    qual = f"{prefix}.{stmt.name}"
                    args = stmt.args
                    all_args = (list(args.posonlyargs) + list(args.args)
                                + list(args.kwonlyargs))
                    params = tuple(a.arg for a in all_args)
                    pos = list(args.posonlyargs) + list(args.args)
                    defaults = {}
                    for a, d in zip(reversed(pos), reversed(args.defaults)):
                        defaults[a.arg] = d
                    for a, d in zip(args.kwonlyargs, args.kw_defaults):
                        if d is not None:
                            defaults[a.arg] = d
                    comm_params, carriers, reads_rank = _classify_params(stmt)
                    info = FunctionInfo(
                        qualname=qual, name=stmt.name, module=module,
                        file=path, node=stmt, params=params,
                        defaults=defaults, cls=cls,
                        comm_params=comm_params, comm_carriers=carriers,
                        reads_rank=reads_rank,
                    )
                    self.functions[qual] = info
                    self.by_name.setdefault(stmt.name, []).append(info)
                elif isinstance(stmt, ast.ClassDef):
                    visit(stmt.body, f"{prefix}.{stmt.name}", stmt.name)

        visit(tree.body, module, None)

    # -- call resolution ----------------------------------------------
    def resolve_call(self, call: ast.Call,
                     caller: FunctionInfo) -> FunctionInfo | None:
        """The project function a call statically resolves to, if any."""
        func = call.func
        module = caller.module
        aliases = self.imports.get(module, {})
        if isinstance(func, ast.Name):
            # Same-module function first, then an imported name, then a
            # project-unique function of that name.
            info = self.functions.get(f"{module}.{func.id}")
            if info is not None:
                return info
            target = aliases.get(func.id)
            if target is not None:
                tail = target.split(".")[-1]
                cands = [f for f in self.by_name.get(tail, ())
                         if target.endswith(f"{f.module}.{f.name}")
                         or f.module.endswith(
                             ".".join(target.split(".")[:-1]) or target)]
                if len(cands) == 1:
                    return cands[0]
                cands = self.by_name.get(tail, [])
                if len(cands) == 1:
                    return cands[0]
            cands = self.by_name.get(func.id, [])
            if len(cands) == 1:
                return cands[0]
            return None
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and caller.cls is not None:
                    return self.functions.get(
                        f"{caller.module}.{caller.cls}.{func.attr}")
                target = aliases.get(base.id)
                if target is not None:
                    # module alias: mod.f() or pkg.Class constructor
                    for cand in self.by_name.get(func.attr, ()):
                        if cand.module == target or cand.module.endswith(
                                "." + target.split(".")[-1]):
                            return cand
                    info = self.functions.get(f"{target}.{func.attr}")
                    if info is not None:
                        return info
        return None

    def build_edges(self) -> None:
        self.edges = []
        for info in self.functions.values():
            for sub in ast.walk(info.node):
                if isinstance(sub, ast.Call):
                    callee = self.resolve_call(sub, info)
                    if callee is not None:
                        self.edges.append(CallEdge(
                            caller=info.qualname, callee=callee.qualname,
                            file=info.file, line=sub.lineno))

    # -- rank-sensitivity taint ----------------------------------------
    def propagate_taint(self, max_rounds: int = 32) -> None:
        """Fixpoint over per-function taint summaries.

        Sources are ``comm.rank`` / ``comm.size`` reads.  Taint flows
        through local assignments, into callee parameters at call
        sites, and back out of tainted returns.
        """
        for info in self.functions.values():
            info.tainted_params = set()
            info.returns_tainted = False
            info.rank_sensitive = info.reads_rank
        for _ in range(max_rounds):
            changed = False
            for info in self.functions.values():
                if self._taint_one(info):
                    changed = True
            if not changed:
                break

    def _taint_one(self, info: FunctionInfo) -> bool:
        tainted: set[str] = set(info.tainted_params)
        changed = False

        def expr_tainted(node: ast.expr) -> bool:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Attribute) and sub.attr in _RANK_ATTRS:
                    return True
                if isinstance(sub, ast.Name) and sub.id in tainted:
                    return True
                if isinstance(sub, ast.Call):
                    callee = self.resolve_call(sub, info)
                    if callee is not None and callee.returns_tainted:
                        return True
            return False

        # A few sweeps so taint introduced late in the body reaches
        # earlier-scanned uses within the same round.
        for _ in range(3):
            grew = False
            for sub in ast.walk(info.node):
                if isinstance(sub, ast.Assign) and expr_tainted(sub.value):
                    for tgt in sub.targets:
                        for n in ast.walk(tgt):
                            if isinstance(n, ast.Name) and n.id not in tainted:
                                tainted.add(n.id)
                                grew = True
                elif isinstance(sub, ast.AugAssign) and expr_tainted(sub.value):
                    if (isinstance(sub.target, ast.Name)
                            and sub.target.id not in tainted):
                        tainted.add(sub.target.id)
                        grew = True
            if not grew:
                break

        returns_tainted = info.returns_tainted
        for sub in ast.walk(info.node):
            if isinstance(sub, ast.Return) and sub.value is not None:
                if expr_tainted(sub.value):
                    returns_tainted = True
            elif isinstance(sub, ast.Call):
                callee = self.resolve_call(sub, info)
                if callee is None:
                    continue
                for pos, arg in enumerate(sub.args):
                    if pos < len(callee.params) and expr_tainted(arg):
                        if callee.params[pos] not in callee.tainted_params:
                            callee.tainted_params.add(callee.params[pos])
                            changed = True
                for kw in sub.keywords:
                    if (kw.arg is not None and kw.arg in callee.params
                            and expr_tainted(kw.value)
                            and kw.arg not in callee.tainted_params):
                        callee.tainted_params.add(kw.arg)
                        changed = True

        rank_sensitive = info.reads_rank or bool(tainted) or returns_tainted
        if (tainted != info.tainted_params
                or returns_tainted != info.returns_tainted
                or rank_sensitive != info.rank_sensitive):
            info.tainted_params = tainted
            info.returns_tainted = returns_tainted
            info.rank_sensitive = rank_sensitive
            changed = True
        return changed

    # -- queries --------------------------------------------------------
    def reachable_from(self, qualname: str) -> set[str]:
        """Call-graph closure from one function (inclusive)."""
        out_edges: dict[str, list[str]] = {}
        for e in self.edges:
            out_edges.setdefault(e.caller, []).append(e.callee)
        seen = {qualname}
        frontier = [qualname]
        while frontier:
            cur = frontier.pop()
            for nxt in out_edges.get(cur, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen


def load_project(paths: Iterable[str]) -> Project:
    """Parse files and directory trees into a linked Project."""
    project = Project()
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames
                               if d not in ("__pycache__", ".git")]
                for fn in sorted(filenames):
                    full = os.path.join(dirpath, fn)
                    if fn.endswith(".py") and not _is_library_file(full):
                        project.add_file(full)
        elif not _is_library_file(path):
            project.add_file(path)
    project.build_edges()
    project.propagate_taint()
    return project
